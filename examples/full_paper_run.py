#!/usr/bin/env python
"""Regenerate every paper figure/table into ``results/`` as text files.

This is the one-shot "reproduce the paper" driver: it runs each
experiment at the configured scale (environment variables
``REPRO_MESH_WIDTH`` / ``REPRO_SCALE``; 32 / 1.0 = the paper's full
1024-core configuration) and renders tables plus ASCII charts into
``results/figNN.txt``.

Run:  python examples/full_paper_run.py [results_dir]
"""

import sys
import time
from pathlib import Path

from repro.experiments import (
    fig03,
    fig04_05_06,
    fig07_08_09,
    fig10_11,
    fig12_13,
    fig14_15_16,
    fig17_table5,
)
from repro.experiments.common import (
    default_mesh_width,
    default_scale,
    format_table,
)
from repro.experiments.report import bar_chart, curve_chart, stacked_bar_chart


def write(outdir: Path, name: str, text: str) -> None:
    path = outdir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"  wrote {path}")


def main() -> None:
    outdir = Path(sys.argv[1] if len(sys.argv) > 1 else "results")
    outdir.mkdir(exist_ok=True)
    print(
        f"Regenerating all figures at mesh width {default_mesh_width()}, "
        f"trace scale {default_scale()} (set REPRO_MESH_WIDTH/REPRO_SCALE "
        "to change; REPRO_JOBS bounds runner workers)\n"
    )

    t0 = time.time()
    print("Figure 3 ...")
    curves = fig03.run(mesh_width=min(32, default_mesh_width() * 2))
    series = {
        name: [(p["load"], p["latency"]) for p in pts]
        for name, pts in curves.items()
    }
    write(outdir, "fig03", curve_chart(
        series, title="Figure 3: latency vs offered load", y_cap=400.0,
    ) + "\n\nbest scheme per load: " + str(fig03.best_scheme_per_load(curves)))

    print("Figures 4-6 ...")
    rows4 = fig04_05_06.run_fig4()
    write(outdir, "fig04", format_table(
        rows4, ["app", "atac+", "emesh-bcast", "emesh-pure",
                "emesh-bcast_norm", "emesh-pure_norm"],
    ) + "\n\n" + bar_chart(
        {r["app"]: r["emesh-pure_norm"] for r in rows4},
        title="EMesh-Pure runtime relative to ATAC+",
    ))
    rows5 = fig04_05_06.run_fig5()
    write(outdir, "fig05", format_table(
        rows5, ["app", "unicast_pct", "broadcast_pct"],
    ) + "\n\n" + bar_chart(
        {r["app"]: r["broadcast_pct"] for r in rows5},
        title="broadcast % of receiver traffic", fmt="{:.1f}",
    ))
    rows6 = fig04_05_06.run_fig6()
    write(outdir, "fig06", format_table(rows6, ["app", "offered_load"])
          + "\n\n" + bar_chart(
              {r["app"]: r["offered_load"] for r in rows6},
              title="offered load (flits/cycle/core)", fmt="{:.4f}",
          ))

    print("Figures 7-9 ...")
    fig7 = fig07_08_09.run_fig7()
    components = [k for k in next(iter(fig7.values()))]
    write(outdir, "fig07", stacked_bar_chart(
        fig7, components,
        title="Figure 7: energy by component (normalized to ATAC+(Ideal))",
    ))
    rows8 = fig07_08_09.run_fig8()
    write(outdir, "fig08", format_table(rows8, list(rows8[0].keys()))
          + "\n\n" + bar_chart(
              {k: v for k, v in rows8[-1].items() if k != "app"},
              title="average normalized EDP",
          ))
    rows9 = fig07_08_09.run_fig9()
    write(outdir, "fig09", format_table(rows9, list(rows9[0].keys()))
          + f"\n\ncrossover: {fig07_08_09.crossover_loss(rows9[-1])} dB/cm")

    print("Figures 10-11 ...")
    out10 = fig10_11.run_fig10()
    text10 = []
    for arch, comp in out10.items():
        text10.append(f"{arch}:")
        text10.append(bar_chart(
            {k: v for k, v in comp.items()
             if k not in ("total", "cache_fraction")},
            fmt="{:.1f}",
        ))
        text10.append(f"total={comp['total']:.1f} mm^2, "
                      f"cache fraction={comp['cache_fraction']:.2f}\n")
    write(outdir, "fig10", "\n".join(text10))
    rows11 = fig10_11.run_fig11()
    write(outdir, "fig11", format_table(rows11, list(rows11[0].keys()))
          + "\n\nphotonic area (mm^2): "
          + str({k: round(v, 1) for k, v in
                 fig10_11.photonic_area_by_width().items()}))

    print("Figures 12-13 ...")
    rows12 = fig12_13.run_fig12()
    write(outdir, "fig12", format_table(rows12, ["app", "starnet_norm"]))
    rows13 = fig12_13.run_fig13()
    write(outdir, "fig13", format_table(rows13, list(rows13[0].keys()))
          + f"\n\nbest scheme: {fig12_13.best_threshold(rows13)}")

    print("Figures 14-16 ...")
    rows14 = fig14_15_16.run_fig14()
    write(outdir, "fig14", format_table(rows14, list(rows14[0].keys())))
    rows15 = fig14_15_16.run_fig15()
    write(outdir, "fig15", format_table(rows15, list(rows15[0].keys())))
    rows16 = fig14_15_16.run_fig16()
    write(outdir, "fig16", format_table(rows16, list(rows16[0].keys())))

    print("Figure 17 + Table V ...")
    rows17 = fig17_table5.run_fig17()
    fmt17 = [
        {k: (f"{v:.3e}" if isinstance(v, float) and k.endswith("_j") else v)
         for k, v in r.items()}
        for r in rows17
    ]
    write(outdir, "fig17", format_table(fmt17, list(fmt17[0].keys())))
    rows5v = fig17_table5.run_table5()
    write(outdir, "table5", format_table(rows5v, list(rows5v[0].keys())))

    print(f"\ndone in {time.time() - t0:.0f}s -> {outdir}/")


if __name__ == "__main__":
    main()
