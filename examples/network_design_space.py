#!/usr/bin/env python
"""Network design-space exploration with synthetic traffic.

Answers the two design questions of the paper's Sections IV-C and V-D
for a chip you configure at the top of the file:

1. **Which unicast routing policy?**  Sweeps Cluster and
   Distance-rthres policies over offered load (the Figure 3 study) and
   reports the latency-optimal policy per load, plus the oblivious
   rthres that maximizes saturation throughput.
2. **Which flit width?**  Reports the photonic area cost of widening
   the ONet (the Figure 11 tradeoff).

Run:  python examples/network_design_space.py
"""

from repro.network.atac import AtacNetwork
from repro.network.routing import ClusterRouting, DistanceRouting, distance_all
from repro.network.topology import MeshTopology
from repro.tech.photonics import OnetGeometry
from repro.workloads.synthetic import SyntheticTraffic, run_load_point

MESH_WIDTH = 16          # cores per edge
LOADS = (0.02, 0.05, 0.08, 0.12, 0.18, 0.30)
CYCLES, WARMUP = 1500, 400


def sweep_routing(topology: MeshTopology) -> None:
    schemes = [ClusterRouting()] + [
        DistanceRouting(t) for t in (5, 10, 15, 20)
    ] + [distance_all(topology)]
    print(f"Latency (cycles) vs offered load on a {topology.n_cores}-core chip")
    print(f"{'load':>6s} " + " ".join(f"{s.name:>13s}" for s in schemes))
    best_at = {}
    for load in LOADS:
        row = [f"{load:>6.2f}"]
        latencies = {}
        for scheme in schemes:
            network = AtacNetwork(topology, routing=scheme)
            traffic = SyntheticTraffic(
                n_cores=topology.n_cores, load=load,
                broadcast_fraction=0.001, seed=11,
            )
            pt = run_load_point(network, traffic, cycles=CYCLES,
                                warmup_cycles=WARMUP)
            latencies[scheme.name] = pt.mean_latency
            row.append(f"{pt.mean_latency:>12.1f}{'*' if pt.saturated else ' '}")
        best_at[load] = min(latencies, key=latencies.get)
        print(" ".join(row))
    print("(* = past saturation)\n")
    print("latency-optimal policy per load:")
    for load, name in best_at.items():
        print(f"  load {load:.2f}: {name}")
    # the paper's recommendation: pick one oblivious mid-range rthres
    print(
        "\nRecommended oblivious policy: the mid-range rthres that wins "
        "at the highest pre-saturation load (the paper picks Distance-15)."
    )


def flit_width_area() -> None:
    print("\nPhotonic area vs ONet flit width (Figure 11's tradeoff):")
    for width in (16, 32, 64, 128, 256):
        area = OnetGeometry(data_width_bits=width).photonics_area_mm2()
        marker = "  <- paper's design point" if width == 64 else ""
        print(f"  {width:>4d} bits: {area:7.1f} mm^2{marker}")


def main() -> None:
    topology = MeshTopology(width=MESH_WIDTH, cluster_width=4)
    sweep_routing(topology)
    flit_width_area()


if __name__ == "__main__":
    main()
