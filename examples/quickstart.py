#!/usr/bin/env python
"""Quickstart: simulate one application on two networks and compare.

Builds a 256-core chip (16x16 mesh, 16 clusters), runs the `barnes`
workload model on the hybrid optical ATAC+ network and on the
electrical EMesh-BCast baseline, and prints the runtime, traffic and
energy comparison -- a miniature of the paper's Figures 4, 7 and 8.

Run:  python examples/quickstart.py
"""

from repro.energy.accounting import EnergyModel
from repro.sim.config import SystemConfig
from repro.sim.system import ManycoreSystem
from repro.tech.scenarios import SCENARIO_ATACP
from repro.workloads.splash import APP_PROFILES, generate_traces


def simulate(network: str):
    # A 16x16 mesh with the paper's 4x4-core clusters; caches scale down
    # with the chip so the workload's miss behaviour stays representative.
    config = SystemConfig(network=network).scaled(mesh_width=16)
    # sanitize=False (the default) skips the runtime invariant checker;
    # pass sanitize=True -- or run with REPRO_SANITIZE=1 -- to assert
    # cross-layer coherence/network/energy invariants at ~2x cost.
    system = ManycoreSystem(config, sanitize=False)
    traces = generate_traces(
        APP_PROFILES["barnes"],
        system.topology,
        l2_lines=config.l2_sets * config.l2_ways,
        scale=0.5,
    )
    result = system.run(traces, app="barnes")
    energy = EnergyModel(config).evaluate(result, SCENARIO_ATACP)
    return result, energy


def main() -> None:
    print("Simulating barnes on ATAC+ and EMesh-BCast (256 cores)...\n")
    results = {net: simulate(net) for net in ("atac+", "emesh-bcast")}

    header = f"{'metric':32s} {'ATAC+':>14s} {'EMesh-BCast':>14s}"
    print(header)
    print("-" * len(header))
    (r_a, e_a) = results["atac+"]
    (r_m, e_m) = results["emesh-bcast"]
    rows = [
        ("completion time (cycles)", r_a.completion_cycles, r_m.completion_cycles),
        ("chip IPC (per core)", f"{r_a.ipc:.3f}", f"{r_m.ipc:.3f}"),
        ("offered load (flits/cyc/core)", f"{r_a.offered_load:.4f}",
         f"{r_m.offered_load:.4f}"),
        ("broadcast traffic at receiver", f"{r_a.receiver_broadcast_fraction:.1%}",
         f"{r_m.receiver_broadcast_fraction:.1%}"),
        ("network energy (uJ)", f"{e_a.network_energy_j*1e6:.2f}",
         f"{e_m.network_energy_j*1e6:.2f}"),
        ("cache energy (uJ)", f"{e_a.cache_energy_j*1e6:.2f}",
         f"{e_m.cache_energy_j*1e6:.2f}"),
        ("energy-delay product (nJ*s)", f"{e_a.edp()*1e9:.3f}",
         f"{e_m.edp()*1e9:.3f}"),
    ]
    for name, a, m in rows:
        print(f"{name:32s} {a!s:>14s} {m!s:>14s}")

    print(
        f"\nATAC+ finished {r_m.completion_cycles / r_a.completion_cycles:.2f}x "
        f"faster and delivered {e_m.edp() / e_a.edp():.2f}x better EDP."
    )
    print(
        "The ONet's adaptive SWMR links were busy "
        f"{r_a.onet_utilization:.1%} of the time "
        f"({r_a.unicasts_per_broadcast:.0f} unicasts per broadcast)."
    )


if __name__ == "__main__":
    main()
