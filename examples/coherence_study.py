#!/usr/bin/env python
"""Cache coherence study: ACKwise_k vs Dir_kB and the sharer sweep.

Reproduces, at example scale, the questions of the paper's Section V-F:

* how much do Dir_kB's whole-chip acknowledgement storms cost on each
  network?
* how sensitive is ACKwise to the number of hardware sharer pointers,
  in performance and in directory cost?

Run:  python examples/coherence_study.py
"""

from repro.coherence.directory import Protocol
from repro.energy.accounting import EnergyModel
from repro.sim.config import SystemConfig
from repro.sim.system import ManycoreSystem
from repro.tech.caches import directory_cache
from repro.workloads.splash import APP_PROFILES, generate_traces

APP = "barnes"  # broadcast-heavy: the protocols differ most here


def simulate(network: str, protocol: Protocol, k: int = 4):
    config = SystemConfig(
        network=network, protocol=protocol, hardware_sharers=k
    ).scaled(mesh_width=16)
    system = ManycoreSystem(config)
    traces = generate_traces(
        APP_PROFILES[APP], system.topology,
        l2_lines=config.l2_sets * config.l2_ways, scale=0.5,
    )
    result = system.run(traces, app=APP)
    return config, result


def protocol_comparison() -> None:
    print(f"ACKwise_4 vs Dir_4B on {APP} (cycles; acks per broadcast):\n")
    print(f"{'network':14s} {'protocol':10s} {'cycles':>8s} {'bcasts':>7s} "
          f"{'acks':>9s}")
    for net in ("atac+", "emesh-bcast"):
        for proto in (Protocol.ACKWISE, Protocol.DIRKB):
            cfg, res = simulate(net, proto)
            system_acks = res.dir_inv_broadcast
            print(
                f"{net:14s} {proto.value:10s} {res.completion_cycles:8d} "
                f"{res.dir_inv_broadcast:7d} "
                f"{'all cores' if proto is Protocol.DIRKB else 'sharers':>9s}"
            )
    print(
        "\n=> Dir_kB waits for an acknowledgement from every core on each "
        "broadcast invalidation; ACKwise only from the true sharers."
    )


def sharer_sweep() -> None:
    print("\nACKwise sharer sweep on ATAC+ (runtime ~flat, directory grows):\n")
    print(f"{'k':>6s} {'cycles':>8s} {'dir entry area (mm2/core)':>28s}")
    for k in (4, 8, 16, 32, 1024):
        cfg, res = simulate("atac+", Protocol.ACKWISE, k=k)
        dir_area = directory_cache(4096, k, n_cores=1024).area_mm2()
        print(f"{k:>6d} {res.completion_cycles:>8d} {dir_area:>28.3f}")
    print(
        "\n=> ACKwise_4 delivers full-map-like completion time at a small "
        "fraction of the directory area/energy (Figures 15-16)."
    )


def main() -> None:
    protocol_comparison()
    sharer_sweep()


if __name__ == "__main__":
    main()
