#!/usr/bin/env python
"""Which photonic device advances matter most?  (The paper's Section V-C.)

Runs one workload once, then re-evaluates its energy under the four
Table IV technology scenarios and a waveguide-loss sweep.  This is the
analysis behind the paper's headline guidance for device researchers:

* laser power gating and athermal rings are *critical* -- without them
  the laser / ring heating dominate network energy;
* ultra-low-loss waveguides are *less valuable* -- ATAC+ tolerates
  moderate losses once gating and athermal rings exist.

Run:  python examples/technology_roadmap.py
"""

from repro.energy.accounting import EnergyModel
from repro.sim.config import SystemConfig
from repro.sim.system import ManycoreSystem
from repro.tech.photonics import PhotonicParams
from repro.tech.scenarios import ALL_SCENARIOS, SCENARIO_ATACP
from repro.workloads.splash import APP_PROFILES, generate_traces


def main() -> None:
    config = SystemConfig(network="atac+").scaled(mesh_width=16)
    system = ManycoreSystem(config)
    traces = generate_traces(
        APP_PROFILES["dynamic_graph"], system.topology,
        l2_lines=config.l2_sets * config.l2_ways, scale=0.5,
    )
    print("Simulating dynamic_graph on ATAC+ (one run feeds every scenario)...")
    result = system.run(traces, app="dynamic_graph")

    model = EnergyModel(config)
    print("\nTable IV scenarios (network energy, uJ):")
    print(f"{'scenario':20s} {'laser':>8s} {'ring':>8s} {'other':>8s} "
          f"{'electrical':>10s} {'total net':>10s}")
    for scenario in ALL_SCENARIOS:
        b = model.evaluate(result, scenario)
        electrical = b["enet_dynamic"] + b["enet_ndd"] + b["hub"] + b["receive_net"]
        print(
            f"{scenario.name:20s} {b['laser']*1e6:8.2f} "
            f"{b['ring_tuning']*1e6:8.2f} {b['modulator_receiver']*1e6:8.2f} "
            f"{electrical*1e6:10.2f} {b.network_energy_j*1e6:10.2f}"
        )
    print(
        "\n=> Without power gating (Cons) the laser dominates; without "
        "athermal rings (RingTuned/Cons) ring heating dominates.\n"
        "=> Idealizing every optical device (Ideal) barely moves the "
        "total: gating + athermal rings capture nearly all the benefit."
    )

    print("\nWaveguide-loss sweep with gating + athermal rings (ATAC+):")
    base = model.evaluate(result, SCENARIO_ATACP).network_energy_j
    for loss in (0.2, 0.5, 1.0, 2.0, 3.0, 4.0):
        lossy = EnergyModel(
            config, photonics=PhotonicParams(waveguide_loss_db_per_cm=loss)
        ).evaluate(result, SCENARIO_ATACP)
        print(
            f"  {loss:4.1f} dB/cm: network energy {lossy.network_energy_j*1e6:8.2f} uJ "
            f"({lossy.network_energy_j / base:5.2f}x baseline)"
        )
    print(
        "\n=> Energy stays nearly flat through moderate losses: low-loss "
        "waveguide research pays off far less than gating/athermal rings."
    )


if __name__ == "__main__":
    main()
