"""Figure 17: chip energy with the first-order core model."""

from repro.experiments.fig17_table5 import run_fig17


def test_fig17_core_power(benchmark, run_once):
    rows = run_once(benchmark, run_fig17)
    print()
    for r in rows:
        print(
            f"  {r['app']:18s} {r['network']:12s} ndd={r['ndd_frac']:.2f} "
            f"core_ndd={r['core_ndd_j']:.3e} core_dd={r['core_dd_j']:.3e} "
            f"cache={r['cache_j']:.3e} net={r['network_j']:.3e}"
        )

    def pick(app, net, ndd):
        [row] = [
            r for r in rows
            if r["app"] == app and r["network"] == net and r["ndd_frac"] == ndd
        ]
        return row

    apps = sorted({r["app"] for r in rows})
    for app in apps:
        a10 = pick(app, "ATAC+", 0.10)
        m10 = pick(app, "EMesh-BCast", 0.10)
        a40 = pick(app, "ATAC+", 0.40)
        m40 = pick(app, "EMesh-BCast", 0.40)

        # Paper shape 1: "core NDD energy for EMesh-BCast is larger than
        # that of ATAC+ as a result of the performance difference".
        assert m10["core_ndd_j"] >= a10["core_ndd_j"] * 0.999, app

        # Paper shape 2: "Core data-dependent energies ... are roughly
        # identical between architectures".
        assert m10["core_dd_j"] / a10["core_dd_j"] < 1.02, app

        # Paper shape 3: at 40% NDD the core's share grows.
        assert (
            a40["core_ndd_j"] / a40["total_j"]
            > a10["core_ndd_j"] / a10["total_j"]
        ), app

        # Paper shape 4: "In all cases, the cache and network are
        # dwarfed by the core" (at the 40% NDD point).
        core40 = a40["core_ndd_j"] + a40["core_dd_j"]
        assert core40 > a40["cache_j"] + a40["network_j"], app
