"""Figure 12: replacing the BNet with the StarNet (energy ablation)."""

from repro.experiments.common import format_table
from repro.experiments.fig12_13 import run_fig12


def test_fig12_starnet(benchmark, run_once):
    rows = run_once(benchmark, run_fig12)
    print()
    print(format_table(rows, ["app", "starnet_norm"]))
    by_app = {r["app"]: r for r in rows if r["app"] != "average"}
    avg = rows[-1]["starnet_norm"]

    # Paper shape 1: "The overall energy consumption is reduced by an
    # average of 8%" -- we require a clear average reduction.
    assert avg < 0.99

    # Paper shape 2: every app benefits or is neutral (broadcasts are
    # rare enough that the 2x broadcast cost never dominates).
    for app, r in by_app.items():
        assert r["starnet_norm"] < 1.02, app

    # Paper shape 3: unicast-heavy apps (radix, ocean_contig) gain more
    # than the broadcast-heavy barnes.
    assert by_app["radix"]["starnet_norm"] < by_app["barnes"]["starnet_norm"]
    assert (
        by_app["ocean_contig"]["starnet_norm"]
        < by_app["barnes"]["starnet_norm"]
    )
