"""Table V: adaptive SWMR link utilization and unicasts per broadcast."""

from repro.experiments.common import format_table
from repro.experiments.fig17_table5 import run_table5


def test_table5_link_utilization(benchmark, run_once):
    rows = run_once(benchmark, run_table5)
    print()
    print(format_table(rows, list(rows[0].keys())))
    util = {r["app"]: r["link_utilization_pct"] for r in rows}
    upb = {r["app"]: r["unicasts_per_broadcast"] for r in rows}

    # Paper shape 1: "the link is idle 70%-90% of the time" -- links
    # spend the clear majority of the run dark, which is what makes
    # laser power gating so valuable (Fig 7).
    for app, u in util.items():
        assert u < 50.0, app

    # Paper shape 2: broadcast-heavy apps have the fewest unicasts
    # between broadcasts (dynamic_graph/barnes/fmm: 505/92/95 in the
    # paper) and the lu/ocean family the most (up to ~31k).
    for heavy in ("barnes", "fmm"):
        for light in ("ocean_contig", "ocean_non_contig", "lu_contig"):
            assert upb[heavy] < upb[light], (heavy, light)

    # Paper shape 3: lu_contig has the largest unicast-to-broadcast
    # ratio of all applications.
    finite = {a: v for a, v in upb.items() if v != float("inf")}
    assert upb["lu_contig"] == float("inf") or (
        upb["lu_contig"] == max(finite.values())
    )

    # Paper shape 4: the load-heavy apps utilize the link more than the
    # compute-dense tree codes.
    assert util["ocean_non_contig"] > util["barnes"]
    assert util["radix"] > util["fmm"]
