"""Figure 11: runtime sensitivity to network flit width."""

from repro.experiments.common import format_table
from repro.experiments.fig10_11 import photonic_area_by_width, run_fig11


def test_fig11_flit_width(benchmark, run_once):
    rows = run_once(benchmark, run_fig11)
    print()
    print(format_table(rows, list(rows[0].keys())))
    avg = rows[-1]
    assert avg["app"] == "average"

    # Paper shape 1: performance is poor at 16 bits and improves with
    # flit width ("the runtime improves by 50% from 16 bits to 64").
    assert avg["w16"] > 1.25
    assert avg["w16"] > avg["w32"] > avg["w64"]

    # Paper shape 2: diminishing returns past 64 bits ("by 10% from 64
    # bits to 256 bits").
    gain_16_to_64 = avg["w16"] - avg["w64"]
    gain_64_to_256 = avg["w64"] - avg["w256"]
    assert gain_64_to_256 < 0.5 * gain_16_to_64
    assert avg["w256"] <= avg["w64"]

    # Paper shape 3: the area cost that motivates choosing 64 bits --
    # photonics grow ~linearly to ~160 mm^2 at 256 bits.
    area = photonic_area_by_width()
    print("photonic area:", {k: round(v, 1) for k, v in area.items()})
    assert 3.0 < area[256] / area[64] < 4.5
    assert 120 < area[256] < 240
