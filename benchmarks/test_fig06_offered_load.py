"""Figure 6: offered network load (flits/cycle/core) per application."""

from repro.experiments.common import format_table
from repro.experiments.fig04_05_06 import run_fig6


def test_fig06_offered_load(benchmark, run_once):
    rows = run_once(benchmark, run_fig6)
    print()
    print(format_table(rows, ["app", "offered_load"]))
    load = {r["app"]: r["offered_load"] for r in rows}

    # Paper shape 1: ocean_non_contig offers the highest load.
    assert max(load, key=load.get) == "ocean_non_contig"

    # Paper shape 2: lu_contig is among the lightest.
    assert load["lu_contig"] in sorted(load.values())[:3]

    # Paper shape 3: the streaming/high-miss apps (radix, ocean_*)
    # out-load the compute-dense tree codes (barnes, fmm).
    for heavy in ("radix", "ocean_contig", "ocean_non_contig"):
        for light in ("barnes", "fmm"):
            assert load[heavy] > load[light], (heavy, light)

    # sanity: loads are small fractions of a flit/cycle/core.
    assert all(0.0 < v < 0.3 for v in load.values())
