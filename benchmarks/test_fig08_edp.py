"""Figure 8: normalized energy-delay product (the headline result)."""

from repro.experiments.common import format_table
from repro.experiments.fig07_08_09 import run_fig8


def test_fig08_edp(benchmark, run_once):
    rows = run_once(benchmark, run_fig8)
    print()
    print(format_table(rows, list(rows[0].keys())))
    avg = rows[-1]
    assert avg["app"] == "average"

    # Paper headline: EMesh-BCast ~1.8x and EMesh-Pure ~4.8x worse EDP
    # than ATAC+.  The shape requirement: both meshes are clearly worse
    # on average, EMesh-Pure much worse than EMesh-BCast.
    assert avg["EMesh-BCast"] > 1.05
    assert avg["EMesh-Pure"] > 1.8
    assert avg["EMesh-Pure"] > 1.5 * avg["EMesh-BCast"]

    # ATAC+ ~= ATAC+(Ideal) in EDP ("almost identical E-D product").
    assert avg["ATAC+"] < 1.05

    # Cons flavor pays heavily; RingTuned in between.
    assert avg["ATAC+"] < avg["ATAC+(RingTuned)"] < avg["ATAC+(Cons)"]

    # Per-app: the broadcast-heavy apps drive EMesh-Pure's worst cases.
    by_app = {r["app"]: r for r in rows[:-1]}
    worst = max(by_app, key=lambda a: by_app[a]["EMesh-Pure"])
    assert worst in ("dynamic_graph", "barnes", "fmm", "radix")
