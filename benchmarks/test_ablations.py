"""Ablation benches for the design choices DESIGN.md section 7 calls out."""

from repro.experiments.ablations import (
    adaptive_gap,
    run_adaptive_routing,
    run_analytic_accuracy,
    run_sequencing_cost,
)
from repro.experiments.common import format_table


def test_adaptive_vs_oblivious_routing(benchmark, run_once):
    rows = run_once(benchmark, run_adaptive_routing, mesh_width=16,
                    loads=(0.02, 0.08, 0.16))
    print()
    print(format_table(rows, list(rows[0].keys())))
    gap = adaptive_gap(rows)
    print(f"mean gap (best-fixed vs adaptive): {gap:+.1%}")

    # The adaptive controller must track the load: its final rthres
    # rises with offered load.
    finals = [r["adaptive_final_rthres"] for r in rows]
    assert finals[-1] >= finals[0]
    # It must stay within a factor of the best fixed policy at each
    # load (the paper's justification for going oblivious: the gap is
    # not catastrophic either way).
    for r in rows:
        fixed_best = min(v for k, v in r.items() if k.startswith("Distance-"))
        assert r["Adaptive"] < 3.0 * fixed_best


def test_sequencing_machinery_active(benchmark, run_once):
    rows = run_once(benchmark, run_sequencing_cost)
    print()
    print(format_table(rows, list(rows[0].keys())))
    # Under distance routing the reorder protection must actually fire
    # somewhere across the broadcast-heavy apps.
    total = sum(
        r["bcasts_buffered"] + r["unicasts_held_early"] for r in rows
    )
    assert total > 0
    # Stale-drop + late-process must together equal buffered broadcasts.
    for r in rows:
        assert r["bcasts_stale_dropped"] <= r["bcasts_buffered"]


def test_analytic_model_accuracy(benchmark, run_once):
    rows = run_once(benchmark, run_analytic_accuracy, mesh_width=16)
    print()
    print(format_table(rows, list(rows[0].keys())))
    # At the lightest load the simulation sits near the analytic
    # zero-load mean (within ~35%: queueing is small but nonzero).
    first = rows[0]
    assert abs(first["queueing_excess"]) < 0.35 * first["analytic_zero_load"]
    # Queueing excess grows monotonically with load.
    excesses = [r["queueing_excess"] for r in rows]
    assert excesses == sorted(excesses)
