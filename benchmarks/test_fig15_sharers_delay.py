"""Figure 15: completion time vs ACKwise hardware sharer count."""

from repro.experiments.common import format_table
from repro.experiments.fig14_15_16 import SHARER_SWEEP, run_fig15


def test_fig15_sharers_delay(benchmark, run_once):
    rows = run_once(benchmark, run_fig15)
    print()
    print(format_table(rows, list(rows[0].keys())))

    # Paper shape 1: "there is little runtime variation from 4 to 1024
    # sharers" -- bounded spread for every app.
    for r in rows:
        vals = [r[f"k{k}"] for k in SHARER_SWEEP]
        assert max(vals) - min(vals) < 0.35, r["app"]

    # Paper shape 2: "Runtime is also found to not increase or decrease
    # monotonically with the number of sharers" -- at least one app
    # must be non-monotonic across the sweep.
    def monotonic(vals):
        return vals == sorted(vals) or vals == sorted(vals, reverse=True)

    non_monotonic = sum(
        0 if monotonic([r[f"k{k}"] for k in SHARER_SWEEP]) else 1
        for r in rows
    )
    assert non_monotonic >= 1

    # Paper shape 3: ACKwise_4 performs like the full-map (k=1024)
    # within a few percent on average.
    avg_full = sum(r["k1024"] for r in rows) / len(rows)
    assert 0.8 < avg_full < 1.25
