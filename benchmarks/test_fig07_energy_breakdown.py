"""Figure 7: energy breakdown across the Table IV technology flavors."""

from repro.experiments.fig07_08_09 import run_fig7


def test_fig07_energy_breakdown(benchmark, run_once):
    fig7 = run_once(benchmark, run_fig7)
    print()
    for arch, comp in fig7.items():
        total = sum(comp.values())
        wedges = ", ".join(
            f"{k}={v:.3f}" for k, v in comp.items() if v > 1e-3
        )
        print(f"  {arch:18s} total={total:.3f}  {wedges}")

    total = {arch: sum(c.values()) for arch, c in fig7.items()}

    # Paper shape 1: "the Laser is a significant energy consumer should
    # power-gating be unavailable" -- the Cons laser dwarfs every other
    # network component and the power-gated laser.
    from repro.energy.accounting import NETWORK_KEYS

    cons = fig7["ATAC+(Cons)"]
    assert cons["laser"] == max(cons[k] for k in NETWORK_KEYS)
    assert cons["laser"] > 20 * fig7["ATAC+"]["laser"]

    # Paper shape 2: ring tuning burdens both tuned-ring flavors.
    assert fig7["ATAC+(RingTuned)"]["ring_tuning"] > 0.05
    assert cons["ring_tuning"] > 0.05
    assert fig7["ATAC+"]["ring_tuning"] == 0.0

    # Paper shape 3: "ATAC+ has about the same energy as ATAC+(Ideal)".
    assert total["ATAC+"] / total["ATAC+(Ideal)"] < 1.05

    # Paper shape 4: laser is a tiny fraction of gated ATAC+ (~2%).
    assert fig7["ATAC+"]["laser"] / total["ATAC+"] < 0.05

    # Paper shape 5: with gating + athermal rings, ATAC+ takes the
    # energy-efficient lead over EMesh-BCast.
    assert total["ATAC+"] < total["EMesh-BCast"]

    # Paper shape 6: cache energy dominates the efficient configs.
    cache_keys = ("l1i", "l1d", "l2", "directory")
    for arch in ("ATAC+", "ATAC+(Ideal)", "EMesh-BCast"):
        cache = sum(fig7[arch][k] for k in cache_keys)
        assert cache > 0.55 * total[arch], arch

    # Paper shape 7: flavor ordering Ideal <= ATAC+ < RingTuned < Cons.
    assert (
        total["ATAC+(Ideal)"] <= total["ATAC+"]
        < total["ATAC+(RingTuned)"] < total["ATAC+(Cons)"]
    )
