"""Figure 14: ACKwise_4 vs Dir_4B on ATAC+ and EMesh-BCast (EDP)."""

from repro.experiments.common import format_table
from repro.experiments.fig14_15_16 import run_fig14

BROADCAST_HEAVY = ("barnes", "fmm")


def test_fig14_protocols(benchmark, run_once):
    rows = run_once(benchmark, run_fig14)
    print()
    print(format_table(rows, list(rows[0].keys())))
    by_app = {r["app"]: r for r in rows}

    for app, r in by_app.items():
        # Paper shape 1: ATAC+/ACKwise4 is the reference and the best
        # (or tied-best) configuration for every app.
        others = [v for k, v in r.items() if k != "app"]
        assert min(others) >= 0.98, app

    # Paper shape 2: Dir_kB degrades broadcast-heavy apps ("the DirkB
    # protocol suffers performance degradation" for barnes/fmm/radix).
    for app in BROADCAST_HEAVY:
        r = by_app[app]
        assert r["ATAC+/Dir4B"] > r["ATAC+/ACKwise4"], app
        assert r["EMesh-BCast/Dir4B"] > r["EMesh-BCast/ACKwise4"], app

    # Paper shape 3: "The performance degradation is felt to a greater
    # extent on the EMesh-BCast network" -- on average over the
    # broadcast-heavy apps.
    atac_penalty = sum(
        by_app[a]["ATAC+/Dir4B"] / by_app[a]["ATAC+/ACKwise4"]
        for a in BROADCAST_HEAVY
    )
    mesh_penalty = sum(
        by_app[a]["EMesh-BCast/Dir4B"] / by_app[a]["EMesh-BCast/ACKwise4"]
        for a in BROADCAST_HEAVY
    )
    assert mesh_penalty > 0.9 * atac_penalty
