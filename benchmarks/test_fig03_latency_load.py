"""Figure 3: latency vs offered load across unicast routing schemes."""

from repro.experiments import fig03


def test_fig03_latency_vs_load(benchmark, run_once):
    curves = run_once(
        benchmark, fig03.run,
        mesh_width=32, loads=(0.02, 0.06, 0.10, 0.16, 0.24),
        cycles=1200, warmup_cycles=300,
    )
    print()
    loads = [p["load"] for p in next(iter(curves.values()))]
    print("load    " + "  ".join(f"{n:>13s}" for n in curves))
    for i, load in enumerate(loads):
        print(f"{load:<7.3f} " + "  ".join(
            f"{curves[n][i]['latency']:>13.1f}" for n in curves))

    best = fig03.best_scheme_per_load(curves)
    by_load = sorted(best)

    def rthres_of(name: str) -> int:
        if name == "Cluster":
            return 0
        if name == "Distance-All":
            return 999
        return int(name.split("-")[1])

    # Paper shape 1: at the lowest load a small rthres (Cluster or
    # Distance-5) is optimal -- the ONet's zero-load latency wins.
    assert rthres_of(best[by_load[0]]) <= 5
    # Paper shape 2: the optimal rthres grows with load.
    ordered = [rthres_of(best[l]) for l in by_load]
    assert ordered[-1] > ordered[0]
    assert all(b <= a + 10 for a, b in zip(ordered, ordered[1:])) or (
        sorted(ordered) == ordered
    )
    # Paper shape 3: Distance-All is never optimal.
    assert "Distance-All" not in best.values()
    # Paper shape 4: at the highest load, mid-range rthres (the
    # load-balancing regime, ~25 at full scale) beats both extremes.
    top = by_load[-1]
    hi = {n: curves[n][-1]["latency"] for n in curves}
    best_hi = best[top]
    assert hi[best_hi] < hi["Cluster"]
    assert hi[best_hi] < hi["Distance-All"]
