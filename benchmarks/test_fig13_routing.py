"""Figure 13: cluster-based vs distance-based unicast routing (EDP)."""

from repro.experiments.common import format_table
from repro.experiments.fig12_13 import best_threshold, run_fig13


def test_fig13_routing(benchmark, run_once):
    rows = run_once(benchmark, run_fig13)
    print()
    print(format_table(rows, list(rows[0].keys())))
    avg = rows[-1]
    assert avg["app"] == "average"
    best = best_threshold(rows)
    print("best scheme:", best)

    # Paper shape 1: some distance-based scheme beats Cluster on EDP
    # ("Distance-15 ... 10% reduction ... compared to Cluster").
    distance_vals = {k: v for k, v in avg.items() if k.startswith("Distance")}
    assert min(distance_vals.values()) < 1.0

    # Paper shape 2: the optimum is at a mid-range rthres, not at the
    # extremes of the sweep.
    thresholds = sorted(int(k.split("-")[1]) for k in distance_vals)
    best_t = int(best.split("-")[1]) if best != "Cluster" else 0
    assert best != "Cluster"
    assert thresholds[0] < best_t <= thresholds[-1]

    # Paper shape 3: the unicast-heavy apps (radix, ocean_contig) see a
    # clear EDP gain from distance routing (the paper reports they gain
    # the most; at reduced scale we require a substantial gain).
    by_app = {r["app"]: r for r in rows if r["app"] != "average"}
    assert by_app["radix"][best] < 0.97
    assert by_app["ocean_contig"][best] < 0.97
