"""Benchmark-suite configuration.

Every module regenerates one paper table/figure (see DESIGN.md section
5) through :mod:`repro.experiments` and asserts its qualitative shape.
Runs are cached in ``.repro_cache/`` so figures sharing simulations
(e.g. Figs 4-8 and Table V) simulate each (app, architecture) pair only
once per scale.

Scale knobs (environment):

* ``REPRO_MESH_WIDTH`` -- 16 (default, 256 cores, minutes) or 32 (the
  paper's 1024 cores, ~an hour cold).
* ``REPRO_SCALE``      -- per-core trace length multiplier (default 0.6).
"""

import pytest


def once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    Experiments are deterministic end-to-end simulations; repeating
    them only re-reads the run cache, so a single round is both honest
    and fast.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def run_once():
    return once
