"""Benchmark-suite configuration.

Every module regenerates one paper table/figure (see DESIGN.md section
5) through :mod:`repro.experiments` and asserts its qualitative shape.
Runs are content-addressed in ``.repro_cache/`` so figures sharing
simulations (e.g. Figs 4-8 and Table V) simulate each (app,
architecture) pair only once per scale.

Before the first test runs, the session fixture below unions the spec
lists of every *collected* figure module and fans the whole batch out
through the process-parallel :class:`~repro.experiments.runner.Runner`
-- a cold cache then costs one parallel sweep instead of a serial
figure-by-figure crawl, and each figure's own call is all store hits.

Scale knobs (environment):

* ``REPRO_MESH_WIDTH`` -- 16 (default, 256 cores, minutes) or 32 (the
  paper's 1024 cores, ~an hour cold).
* ``REPRO_SCALE``      -- per-core trace length multiplier (default 0.6).
* ``REPRO_JOBS``       -- runner worker processes (default: all cores).
* ``REPRO_PREWARM=0``  -- disable the parallel prewarm sweep.
"""

import os

import pytest

# The benchmark suite measures simulator performance, so the runtime
# invariant checker must stay off no matter what the surrounding shell
# exports: a leaked REPRO_SANITIZE=1 would both slow every run ~2x and
# bypass the run cache the prewarm sweep exists to fill.
os.environ.pop("REPRO_SANITIZE", None)


def _prewarm_spec_builders():
    """Module basename -> callable building that figure's RunSpec list.

    Mirrors each driver's default grid (apps x architecture variants);
    ``spec_for`` resolves mesh width and scale from the environment at
    call time, exactly as the drivers themselves do.
    """
    from repro.coherence.directory import Protocol
    from repro.experiments import fig04_05_06, fig10_11, fig14_15_16, fig17_table5
    from repro.experiments.common import spec_for as _spec_for
    from repro.experiments.fig07_08_09 import MESHES
    from repro.experiments.fig12_13 import FIG13_APPS
    from repro.workloads.splash import APP_ORDER

    def spec_for(app, **kw):
        # sanitize=False explicitly: the prewarm sweep feeds the perf
        # benchmarks, so a stray REPRO_SANITIZE=1 must neither slow the
        # sweep nor bypass the run cache it exists to fill.
        return _spec_for(app, sanitize=False, **kw)

    def grid(apps, networks, **kw):
        return [spec_for(a, network=n, **kw) for a in apps for n in networks]

    def atac_all():
        return grid(APP_ORDER, ("atac+",))

    def energy_grid():
        return grid(APP_ORDER, ("atac+",) + MESHES)

    return {
        "test_fig04_runtime": lambda: grid(APP_ORDER, fig04_05_06.NETWORKS),
        "test_fig05_traffic_mix": atac_all,
        "test_fig06_offered_load": atac_all,
        "test_fig07_energy_breakdown": energy_grid,
        "test_fig08_edp": energy_grid,
        "test_fig09_waveguide_loss": lambda: grid(
            APP_ORDER, ("atac+", "emesh-bcast")
        ),
        "test_fig11_flit_width": lambda: [
            spec_for(a, network="atac+", flit_bits=w)
            for a in fig10_11.FIG11_APPS for w in fig10_11.FLIT_WIDTHS
        ],
        "test_fig12_starnet": lambda: [
            spec_for(a, network="atac+", rthres=0, receive_net=rn)
            for a in APP_ORDER for rn in ("bnet", "starnet")
        ],
        "test_fig13_routing": lambda: [
            spec_for(a, network="atac+", rthres=t)
            for a in FIG13_APPS for t in (0, 5, 10, 15, 20, 25)
        ],
        "test_fig14_protocols": lambda: [
            spec_for(a, network=n, protocol=p)
            for a in fig14_15_16.FIG14_APPS
            for n in ("atac+", "emesh-bcast")
            for p in (Protocol.ACKWISE, Protocol.DIRKB)
        ],
        "test_fig15_sharers_delay": lambda: [
            spec_for(a, network="atac+", hardware_sharers=k)
            for a in fig14_15_16.FIG15_APPS for k in fig14_15_16.SHARER_SWEEP
        ],
        "test_fig16_sharers_energy": lambda: [
            spec_for(a, network="atac+", hardware_sharers=k)
            for a in fig14_15_16.FIG15_APPS for k in fig14_15_16.SHARER_SWEEP
        ],
        "test_fig17_core_power": lambda: grid(
            fig17_table5.FIG17_APPS, ("atac+", "emesh-bcast")
        ),
        "test_table5_link_utilization": atac_all,
        "test_ablations": lambda: grid(("barnes", "dynamic_graph"), ("atac+",)),
    }


@pytest.fixture(scope="session", autouse=True)
def prewarm_run_store(request):
    """Fan the collected figures' combined spec list out once, up front."""
    if os.environ.get("REPRO_PREWARM", "1") == "0":
        return
    from repro.experiments.runner import Runner

    builders = _prewarm_spec_builders()
    specs, seen = [], set()
    for item in request.session.items:
        name = getattr(item.module, "__name__", "").rsplit(".", 1)[-1]
        if name in builders and name not in seen:
            seen.add(name)
            specs.extend(builders[name]())
    if specs:
        Runner().run(specs)


def once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    Experiments are deterministic end-to-end simulations; repeating
    them only re-reads the run store, so a single round is both honest
    and fast.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def run_once():
    return once
