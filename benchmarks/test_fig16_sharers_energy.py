"""Figure 16: energy vs ACKwise hardware sharer count."""

from repro.experiments.common import format_table
from repro.experiments.fig14_15_16 import run_fig16


def test_fig16_sharers_energy(benchmark, run_once):
    rows = run_once(benchmark, run_fig16)
    print()
    print(format_table(rows, list(rows[0].keys())))
    by_k = {r["k"]: r for r in rows}

    # Paper shape 1: energy grows monotonically with k.
    totals = [r["total_norm"] for r in rows]
    assert totals == sorted(totals)

    # Paper shape 2: "There is a 2x increase in energy from 4 to 1024
    # sharers."  Our reduced-scale runs carry denser traffic (higher
    # dynamic/network share), which dilutes the directory's leakage
    # share of the total -- we require a substantial growth and record
    # the scale sensitivity in EXPERIMENTS.md.
    assert by_k[1024]["total_norm"] > 1.15

    # Paper shape 3: "The increase in energy is due to the directory
    # cache" -- the directory's share grows by more than the total.
    dir_growth = by_k[1024]["directory_norm"] / max(
        by_k[4]["directory_norm"], 1e-9
    )
    total_growth = by_k[1024]["total_norm"] / by_k[4]["total_norm"]
    assert dir_growth > total_growth

    # Paper shape 4: k=4 to k=32 stays cheap (the ACKwise sweet spot).
    assert by_k[32]["total_norm"] < 1.25
