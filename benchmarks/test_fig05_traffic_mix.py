"""Figure 5: unicast vs broadcast traffic measured at the receiver."""

from repro.experiments.common import format_table
from repro.experiments.fig04_05_06 import run_fig5

BROADCAST_HEAVY = ("dynamic_graph", "barnes", "fmm")
UNICAST_HEAVY = ("ocean_contig", "lu_contig", "ocean_non_contig")


def test_fig05_traffic_mix(benchmark, run_once):
    rows = run_once(benchmark, run_fig5)
    print()
    print(format_table(rows, ["app", "unicast_pct", "broadcast_pct"]))
    pct = {r["app"]: r["broadcast_pct"] for r in rows}

    # Paper shape 1: barnes and fmm are the most broadcast-dominated.
    top_two = sorted(pct, key=pct.get, reverse=True)[:2]
    assert set(top_two) == {"barnes", "fmm"}

    # Paper shape 2: every broadcast-heavy app out-broadcasts every
    # unicast-heavy app at the receiver.
    assert min(pct[a] for a in BROADCAST_HEAVY) > max(
        pct[a] for a in UNICAST_HEAVY
    )

    # Paper shape 3: lu_contig's traffic is almost purely unicast.
    assert pct["lu_contig"] < 5.0

    # sanity: percentages complement
    for r in rows:
        assert abs(r["unicast_pct"] + r["broadcast_pct"] - 100.0) < 0.2
