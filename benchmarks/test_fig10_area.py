"""Figure 10: chip area breakdown."""

from repro.experiments.fig10_11 import run_fig10


def test_fig10_area(benchmark, run_once):
    out = run_once(benchmark, run_fig10)
    print()
    for arch, comp in out.items():
        print(f"  {arch}: " + ", ".join(f"{k}={v:.1f}" for k, v in comp.items()))

    atac, mesh = out["ATAC+"], out["EMesh"]

    # Paper shape 1: "the caches dominate the total area (~90%)".
    assert atac["cache_fraction"] > 0.70
    assert mesh["cache_fraction"] > 0.80

    # Paper shape 2: photonics occupy ~40 mm^2 at 64-bit flit width.
    assert 25 < atac["photonics"] < 60

    # Paper shape 3: electrical networks/hubs are negligible.
    assert atac["enet"] < 0.1 * atac["total"]
    assert atac["hubs"] < 0.01 * atac["total"]

    # Paper shape 4: ATAC+'s area premium over the mesh is exactly the
    # optical machinery (small relative to the caches).
    premium = atac["total"] - mesh["total"]
    assert premium < 0.25 * mesh["total"]
