"""Figure 9: sensitivity to waveguide loss."""

from repro.experiments.common import format_table
from repro.experiments.fig07_08_09 import crossover_loss, run_fig9


def test_fig09_waveguide_loss(benchmark, run_once):
    rows = run_once(benchmark, run_fig9)
    print()
    print(format_table(rows, list(rows[0].keys())))
    avg = rows[-1]
    assert avg["app"] == "average"
    loss_keys = sorted(
        (k for k in avg if k.startswith("loss")), key=lambda k: float(k[4:])
    )

    # Paper shape 1: energy grows monotonically with waveguide loss.
    series = [avg[k] for k in loss_keys]
    assert series == sorted(series)

    # Paper shape 2: at the Table II baseline (0.2 dB/cm) ATAC+ beats
    # EMesh-BCast.
    assert avg["loss0.2"] < 1.0

    # Paper shape 3: "the ATAC+ network can tolerate a loss of up to
    # 2 dB before its energy consumption exceeds that of EMesh-BCast":
    # the crossover falls strictly inside the sweep, at or above 2.
    cross = crossover_loss(avg)
    assert cross is not None, "no crossover found in the sweep"
    assert 2.0 <= cross <= 4.0

    # Paper shape 4: by 4 dB the advantage is clearly gone.
    assert avg["loss4.0"] > 1.1
