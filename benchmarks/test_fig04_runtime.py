"""Figure 4: application runtime on ATAC+ vs the electrical baselines."""

from repro.experiments.common import format_table
from repro.experiments.fig04_05_06 import run_fig4

BROADCAST_HEAVY = ("dynamic_graph", "barnes", "fmm")


def test_fig04_runtime(benchmark, run_once):
    rows = run_once(benchmark, run_fig4)
    print()
    print(format_table(rows, ["app", "atac+", "emesh-bcast", "emesh-pure",
                              "emesh-bcast_norm", "emesh-pure_norm"]))
    by_app = {r["app"]: r for r in rows}

    # Paper shape 1: "In all cases, ATAC+ commands a sizable lead over
    # both EMesh-Pure and EMesh-BCast" (allowing ties at small scale).
    for r in rows:
        assert r["emesh-bcast_norm"] >= 0.99, r["app"]
        assert r["emesh-pure_norm"] >= 0.99, r["app"]

    # Paper shape 2: EMesh-Pure severely degrades broadcast-heavy apps.
    for app in BROADCAST_HEAVY:
        assert by_app[app]["emesh-pure_norm"] > 1.5, app

    # Paper shape 3: EMesh-Pure's penalty on broadcast-heavy apps far
    # exceeds its penalty on the most private app (lu_contig).
    worst_bcast = max(by_app[a]["emesh-pure_norm"] for a in BROADCAST_HEAVY)
    assert worst_bcast > 1.3 * by_app["lu_contig"]["emesh-pure_norm"]

    # Paper shape 4: EMesh-BCast improves on EMesh-Pure for broadcasts
    # but ATAC+ retains the lead.
    for app in BROADCAST_HEAVY:
        assert by_app[app]["emesh-bcast_norm"] < by_app[app]["emesh-pure_norm"]
