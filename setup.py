"""Legacy setup shim.

Allows ``pip install -e . --no-use-pep517 --no-build-isolation`` in
offline environments that lack the ``wheel`` package (PEP-517 editable
installs require building a wheel).  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
