"""The structured stderr logger (:mod:`repro.log`)."""

import pytest

from repro import log


@pytest.fixture(autouse=True)
def _reset_level():
    yield
    log.set_level(None)


def _emit(capsys):
    return capsys.readouterr().err


class TestLevels:
    def test_default_is_info(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        logger = log.get_logger("t")
        logger.debug("hidden")
        logger.info("shown")
        err = _emit(capsys)
        assert "hidden" not in err
        assert "shown" in err

    def test_env_level(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "warning")
        logger = log.get_logger("t")
        logger.info("hidden")
        logger.warning("shown")
        err = _emit(capsys)
        assert "hidden" not in err
        assert "shown" in err

    def test_silent(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "silent")
        logger = log.get_logger("t")
        logger.error("hidden")
        assert _emit(capsys) == ""

    def test_set_level_beats_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "error")
        log.set_level("debug")
        log.get_logger("t").debug("shown")
        assert "shown" in _emit(capsys)

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            log.set_level("chatty")


class TestVerbosityFlags:
    def test_quiet_wins(self, capsys):
        log.set_verbosity(verbose=2, quiet=True)
        logger = log.get_logger("t")
        logger.info("hidden")
        logger.warning("shown")
        err = _emit(capsys)
        assert "hidden" not in err
        assert "shown" in err

    def test_verbose_enables_debug(self, capsys):
        log.set_verbosity(verbose=1)
        log.get_logger("t").debug("shown")
        assert "shown" in _emit(capsys)

    def test_neither_defers_to_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "error")
        log.set_verbosity(verbose=0, quiet=False)
        log.get_logger("t").info("hidden")
        assert _emit(capsys) == ""


class TestFormat:
    def test_prefix_and_fields(self, capsys):
        log.set_level("info")
        log.get_logger("runner").info("3/8 barnes", elapsed_s=12.44449)
        err = _emit(capsys)
        assert err.startswith("[repro.runner] 3/8 barnes")
        assert "elapsed_s=12.44" in err

    def test_value_with_spaces_is_quoted(self, capsys):
        log.set_level("info")
        log.get_logger("t").info("msg", what="two words")
        assert "what='two words'" in _emit(capsys)

    def test_context_fields_merge(self, capsys):
        log.set_level("info")
        logger = log.get_logger("t")
        with log.context(seed=7):
            logger.info("inner")
        logger.info("outer")
        inner, outer = _emit(capsys).splitlines()
        assert "seed=7" in inner
        assert "seed" not in outer

    def test_get_logger_is_cached(self):
        assert log.get_logger("x") is log.get_logger("x")
