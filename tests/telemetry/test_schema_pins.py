"""Telemetry schema pins.

Two kinds of pin:

* **version pins** -- the on-disk window/trace schema versions and the
  exact field groups; adding a counter to ``NetworkStats`` or
  ``CacheCounters`` automatically joins the window schema (the groups
  are derived from the dataclasses), and this test makes that drift
  explicit so the schema version is bumped deliberately;
* **energy-coverage pins** -- every counter the energy layer prices
  (``ns.<field>`` / ``cc.<field>`` reads in ``energy/accounting.py``
  and ``network/registry.py``) must appear in the telemetry window
  schema, so per-window energy attribution can never silently miss a
  wedge of the chip budget.
"""

import re
from pathlib import Path

from repro.telemetry.trace import TRACE_KINDS, TRACE_SCHEMA_VERSION
from repro.telemetry.windows import (
    CACHE_FIELDS,
    CORE_FIELDS,
    DIR_FIELDS,
    ENERGY_FIELDS,
    MEM_FIELDS,
    NET_FIELDS,
    TELEMETRY_SCHEMA_VERSION,
    WINDOW_SCHEMA,
)

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


class TestVersionPins:
    def test_schema_versions(self):
        # Bump deliberately when the window record / trace event layout
        # changes; readers (`repro trace`/`repro top`, CI artifact
        # tooling) key off these exact integers.
        assert TELEMETRY_SCHEMA_VERSION == 1
        assert TRACE_SCHEMA_VERSION == 1

    def test_trace_kinds(self):
        assert TRACE_KINDS == (
            "pkt", "bcast", "txn_begin", "txn_end", "barrier", "laser",
        )

    def test_window_schema_groups(self):
        assert set(WINDOW_SCHEMA) == {
            "net", "caches", "directory", "memory", "cores", "energy",
        }
        assert WINDOW_SCHEMA["net"] == NET_FIELDS
        assert WINDOW_SCHEMA["caches"] == CACHE_FIELDS
        assert WINDOW_SCHEMA["directory"] == DIR_FIELDS
        assert WINDOW_SCHEMA["memory"] == MEM_FIELDS
        assert WINDOW_SCHEMA["cores"] == CORE_FIELDS
        assert WINDOW_SCHEMA["energy"] == ENERGY_FIELDS

    def test_net_fields_track_networkstats(self):
        from dataclasses import fields

        from repro.network.stats import NetworkStats

        assert NET_FIELDS == tuple(f.name for f in fields(NetworkStats))

    def test_cache_fields_track_cachecounters(self):
        from dataclasses import fields

        from repro.coherence.l2controller import CacheCounters

        assert CACHE_FIELDS == tuple(f.name for f in fields(CacheCounters))


def _attr_reads(source: str, receiver: str) -> set[str]:
    """Every ``<receiver>.<field>`` attribute read in ``source``."""
    return set(re.findall(rf"\b{receiver}\.(\w+)", source))


class TestEnergyCoverage:
    """Every energy-priced counter is visible in the window schema."""

    def test_network_counters_priced_by_energy_layer_are_windowed(self):
        source = (SRC / "energy" / "accounting.py").read_text()
        source += (SRC / "network" / "registry.py").read_text()
        priced = _attr_reads(source, "ns")
        assert priced, "expected ns.<field> reads in the energy layer"
        missing = priced - set(NET_FIELDS)
        assert not missing, (
            f"energy-priced NetworkStats counters missing from the "
            f"telemetry window schema: {sorted(missing)}"
        )

    def test_cache_counters_priced_by_energy_layer_are_windowed(self):
        source = (SRC / "energy" / "accounting.py").read_text()
        priced = _attr_reads(source, "cc")
        assert priced, "expected cc.<field> reads in the energy layer"
        missing = priced - set(CACHE_FIELDS)
        assert not missing, (
            f"energy-priced CacheCounters counters missing from the "
            f"telemetry window schema: {sorted(missing)}"
        )

    def test_result_level_counters_are_windowed(self):
        source = (SRC / "energy" / "accounting.py").read_text()
        dir_mem = {
            name for name in _attr_reads(source, "result")
            if name.startswith(("dir_", "mem_"))
        }
        assert dir_mem, "expected result.dir_*/mem_* reads in accounting"
        missing = dir_mem - set(DIR_FIELDS) - set(MEM_FIELDS)
        assert not missing, (
            f"energy-priced result counters missing from the telemetry "
            f"window schema: {sorted(missing)}"
        )
