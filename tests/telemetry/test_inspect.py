"""The ``repro trace`` / ``repro top`` verbs against real artifacts.

One telemetry-enabled ``RunSpec`` executes into a tmp telemetry root
(module-scoped); every test reads those artifacts back the way the CLI
does.
"""

import json

import pytest

from repro.experiments.common import spec_for
from repro.telemetry import telemetry_root
from repro.telemetry.inspect import (
    main,
    recorded_runs,
    resolve_run,
    top_main,
    trace_main,
)


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """(telemetry root, run dir) for one executed telemetry run."""
    import os

    root = tmp_path_factory.mktemp("telemetry")
    spec = spec_for("radix", network="atac+", mesh_width=8, scale=0.3,
                    telemetry=True)
    old = os.environ.get("REPRO_TELEMETRY_DIR")
    os.environ["REPRO_TELEMETRY_DIR"] = str(root)
    try:
        spec.execute()
    finally:
        if old is None:
            del os.environ["REPRO_TELEMETRY_DIR"]
        else:
            os.environ["REPRO_TELEMETRY_DIR"] = old
    run_dir = root / spec.content_hash()
    assert run_dir.is_dir()
    return root, run_dir


@pytest.fixture(autouse=True)
def _point_at_recorded_root(recorded, monkeypatch):
    monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(recorded[0]))


class TestArtifacts:
    def test_layout(self, recorded):
        _, run_dir = recorded
        assert (run_dir / "meta.json").is_file()
        assert (run_dir / "windows.jsonl").is_file()
        assert (run_dir / "trace.jsonl").is_file()

    def test_meta_contents(self, recorded):
        _, run_dir = recorded
        meta = json.loads((run_dir / "meta.json").read_text())
        assert meta["schema"] == 1
        assert meta["trace_schema"] == 1
        assert meta["app"] == "radix"
        assert meta["label"] == "radix@atac+/w8"
        assert meta["n_windows"] > 0
        assert meta["trace"]["recorded"] > 0

    def test_jsonl_headers_then_records(self, recorded):
        _, run_dir = recorded
        for name in ("windows.jsonl", "trace.jsonl"):
            lines = (run_dir / name).read_text().splitlines()
            header = json.loads(lines[0])
            assert "schema" in header, name
            assert len(lines) > 1, name


class TestResolve:
    def test_root_honours_env(self, recorded):
        assert telemetry_root() == recorded[0]

    def test_latest_and_exact_and_prefix_and_label(self, recorded):
        _, run_dir = recorded
        for token in ("latest", run_dir.name, run_dir.name[:8], "radix@"):
            resolved, meta = resolve_run(token)
            assert resolved == run_dir, token

    def test_unknown_token_raises(self, recorded):
        with pytest.raises(LookupError):
            resolve_run("no-such-run")

    def test_empty_root_raises(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path))
        with pytest.raises(LookupError):
            resolve_run("latest")

    def test_recorded_runs_lists_the_run(self, recorded):
        runs = recorded_runs()
        assert [d for d, _ in runs] == [recorded[1]]


class TestTraceVerb:
    def test_exports_perfetto_json(self, recorded, tmp_path, capsys):
        out = tmp_path / "out.perfetto.json"
        assert trace_main(["latest", "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        assert "perfetto" in capsys.readouterr().out

    def test_listing_without_run(self, recorded, capsys):
        assert trace_main([]) == 0
        assert recorded[1].name in capsys.readouterr().out

    def test_unknown_run_exits_2(self, recorded, capsys):
        assert trace_main(["no-such-run"]) == 2


class TestTopVerb:
    def test_renders_table_and_footer(self, recorded, capsys):
        assert top_main(["latest"]) == 0
        out = capsys.readouterr().out
        assert "flits/cyc/core" in out
        assert "repro trace" in out

    def test_rows_coalescing(self, recorded, capsys):
        assert top_main(["latest", "--rows", "3"]) == 0
        out = capsys.readouterr().out
        table_rows = [
            line for line in out.splitlines()
            if line and line[0].isdigit()
        ]
        assert 1 <= len(table_rows) <= 3

    def test_bad_rows_exits_2(self, recorded):
        assert top_main(["latest", "--rows", "0"]) == 2


class TestDispatch:
    def test_main_routes_verbs(self, recorded, capsys):
        assert main(["top"]) == 0
        assert main(["trace"]) == 0
        assert main(["nope"]) == 2
