"""The telemetry collector against the live simulator.

The expensive fixture runs one w8/scale0.3 application on **every**
registered network with telemetry attached (module-scoped: six
simulations total).  It backs three of this package's contracts:

* byte-identity -- telemetry must not perturb the simulation;
* counter completeness -- every ``NetworkStats`` field is exercised by
  at least one registered network, so the windowed schema never carries
  a counter no architecture can increment;
* Perfetto export -- every network's trace converts to loadable
  Chrome trace-event JSON.
"""

import json

import pytest

from repro.network.registry import REGISTRY
from repro.sim.system import ManycoreSystem
from repro.telemetry.collector import TelemetryCollector, TelemetryConfig
from repro.telemetry.trace import TraceBuffer, to_perfetto
from repro.telemetry.windows import NET_FIELDS
from repro.workloads.splash import APP_PROFILES, generate_traces

APP = "radix"
MESH_WIDTH = 8
SCALE = 0.3


def _run(network: str, **system_kwargs):
    from repro.experiments.common import spec_for

    config = spec_for(APP, network=network, mesh_width=MESH_WIDTH).config()
    system = ManycoreSystem(config, **system_kwargs)
    traces = generate_traces(
        APP_PROFILES[APP], system.topology,
        l2_lines=config.l2_sets * config.l2_ways, scale=SCALE, seed=42,
    )
    return system, system.run(traces, app=APP)


@pytest.fixture(scope="module")
def telemetry_runs():
    """network -> (system, result), telemetry attached, every network."""
    return {
        network: _run(network, telemetry=TelemetryConfig())
        for network in REGISTRY
    }


class TestByteIdentity:
    def test_result_identical_with_telemetry(self, telemetry_runs):
        _, plain = _run("atac+")
        _, instrumented = telemetry_runs["atac+"]
        assert plain.to_dict() == instrumented.to_dict()

    def test_result_identical_with_sanitizer_and_telemetry(self):
        _, plain = _run("emesh-bcast")
        _, both = _run("emesh-bcast", sanitize=True,
                       telemetry=TelemetryConfig())
        assert plain.to_dict() == both.to_dict()


class TestCounterCompleteness:
    def test_every_network_counter_incremented_somewhere(self, telemetry_runs):
        """Union over all registered networks covers all of NetworkStats."""
        never_hit = []
        for name in NET_FIELDS:
            if not any(
                getattr(system.network.stats, name) > 0
                for system, _ in telemetry_runs.values()
            ):
                never_hit.append(name)
        assert not never_hit, (
            f"NetworkStats fields no registered network increments at "
            f"w{MESH_WIDTH}/scale{SCALE}: {never_hit}"
        )

    def test_window_deltas_sum_to_run_totals(self, telemetry_runs):
        """Windows tile the run: per-counter deltas sum to the totals."""
        system, _ = telemetry_runs["atac+"]
        stats = system.network.stats
        for name in NET_FIELDS:
            summed = sum(
                w["net"][name] for w in system.telemetry.windows
            )
            assert summed == getattr(stats, name), name


class TestWindows:
    def test_windows_are_contiguous_from_zero(self, telemetry_runs):
        for network, (system, result) in telemetry_runs.items():
            windows = system.telemetry.windows
            assert windows, network
            assert windows[0]["t0"] == 0
            for prev, cur in zip(windows, windows[1:]):
                assert cur["t0"] == prev["t1"], network
            assert windows[-1]["t1"] >= result.completion_cycles, network

    def test_window_energy_nonnegative_and_sums_to_run(self, telemetry_runs):
        """Per-window energy is real attribution, not an approximation.

        Dynamic (per-event) energy is linear in the counters, so window
        sums match the full run exactly; static energy is linear in
        cycles, and window spans can overshoot ``completion_cycles`` by
        up to one window (the final heartbeat), hence the tolerance.
        """
        from repro.energy.accounting import EnergyModel

        system, result = telemetry_runs["atac+"]
        windows = system.telemetry.windows
        for w in windows:
            for key, value in w["energy"].items():
                assert value >= 0, (key, w["t0"])
        full = EnergyModel(system.config).evaluate(result)
        summed = sum(w["energy"]["total_j"] for w in windows)
        assert summed == pytest.approx(full.total_energy_j, rel=0.05)

    def test_final_partial_window_is_closed(self, telemetry_runs):
        system, result = telemetry_runs["atac+"]
        last = system.telemetry.windows[-1]
        # the run does not end on a window boundary in general; whatever
        # happened after the last heartbeat must still be recorded
        assert last["t1"] >= result.completion_cycles

    def test_queue_depth_sampled(self, telemetry_runs):
        system, _ = telemetry_runs["atac+"]
        depths = [w["queue_depth"] for w in system.telemetry.windows]
        assert any(d > 0 for d in depths)
        assert depths[-1] == 0  # the run is over at the final close

    def test_onet_busy_only_on_optical_networks(self, telemetry_runs):
        for network, (system, _) in telemetry_runs.items():
            has_links = getattr(system.network, "onet_links", None) is not None
            windows = system.telemetry.windows
            assert all(("onet_busy" in w) == has_links for w in windows), network


class TestTrace:
    def test_txn_begin_end_pair_up(self, telemetry_runs):
        system, _ = telemetry_runs["atac+"]
        begins = {}
        ends = {}
        for kind, ts, dur, name, ident, args in system.telemetry.trace.events():
            if kind == "txn_begin":
                begins[ident] = ts
            elif kind == "txn_end":
                ends[ident] = ts
        assert begins, "expected coherence transactions"
        # a clean run closes every miss transaction it opens (modulo
        # events rotated out of the ring, which this small run avoids)
        assert set(ends) == set(begins)
        assert all(ends[i] >= begins[i] for i in begins)

    def test_trace_ring_is_bounded(self):
        buf = TraceBuffer(4)
        for i in range(10):
            buf.record("pkt", i, 1, f"pkt {i}")
        assert buf.recorded == 10
        assert buf.dropped == 6
        events = buf.events()
        assert len(events) == 4
        assert [e[1] for e in events] == [6, 7, 8, 9]
        assert len(buf.tail(2)) == 2

    def test_perfetto_export_loads_for_every_network(self, telemetry_runs):
        for network, (system, _) in telemetry_runs.items():
            doc = to_perfetto(system.telemetry.trace.events(), label=network)
            # survives a JSON round-trip (what ui.perfetto.dev ingests)
            doc = json.loads(json.dumps(doc))
            events = doc["traceEvents"]
            assert events, network
            phases = {e["ph"] for e in events}
            assert "M" in phases and "X" in phases, network
            for e in events:
                if e["ph"] == "X":
                    assert e["dur"] >= 1, network
                if e["ph"] in ("b", "e"):
                    assert e["cat"] == "txn" and "id" in e, network

    def test_barrier_slices_recorded(self, telemetry_runs):
        system, result = telemetry_runs["atac+"]
        barriers = [
            e for e in system.telemetry.trace.events() if e[0] == "barrier"
        ]
        assert len(barriers) == result.barriers_completed


#: Core 0 reads line 64 and holds it across the barrier; core 1 then
#: writes it, forcing an invalidation (and thus a droppable INV_ACK).
_READ_THEN_REMOTE_WRITE = {
    0: [["m", 64, 0], ["b", 0]],
    1: [["b", 0], ["m", 64, 1]],
}


def _droppable_case():
    from ..sanitizer.cases import handcrafted

    return handcrafted(_READ_THEN_REMOTE_WRITE)


class TestViolationContext:
    def test_violation_carries_window_and_trace_tail(self):
        from repro.sanitizer import InvariantViolation
        from repro.sanitizer.faults import inject_fault
        from repro.sanitizer.fuzz import case_config, case_traces

        case = _droppable_case()
        system = ManycoreSystem(
            case_config(case), sanitize=True,
            telemetry=TelemetryConfig(window_cycles=32),
        )
        inject_fault(system, "drop-ack")
        with pytest.raises(InvariantViolation) as excinfo:
            system.run(case_traces(case), app="fuzz", max_events=100_000)
        violation = excinfo.value
        assert violation.telemetry is not None
        assert violation.telemetry["windows"], "expected closed windows"
        assert violation.telemetry["trace_tail"]
        assert "telemetry:" in str(violation)
        assert "telemetry" in violation.to_dict()

    def test_violation_without_telemetry_has_none(self):
        from repro.sanitizer import InvariantViolation
        from repro.sanitizer.faults import inject_fault
        from repro.sanitizer.fuzz import case_config, case_traces

        case = _droppable_case()
        system = ManycoreSystem(case_config(case), sanitize=True)
        inject_fault(system, "drop-ack")
        with pytest.raises(InvariantViolation) as excinfo:
            system.run(case_traces(case), app="fuzz", max_events=100_000)
        assert excinfo.value.telemetry is None
        assert "telemetry" not in excinfo.value.to_dict()


class TestConfigKnobs:
    def test_window_cycles_override(self):
        system, result = _run(
            "emesh-pure", telemetry=TelemetryConfig(window_cycles=250)
        )
        windows = system.telemetry.windows
        assert windows[0]["t1"] - windows[0]["t0"] == 250
        assert len(windows) >= result.completion_cycles // 250

    def test_rejects_bad_window(self):
        from repro.experiments.common import make_config

        with pytest.raises(ValueError):
            ManycoreSystem(
                make_config(mesh_width=4, network="emesh-pure"),
                telemetry=TelemetryConfig(window_cycles=0),
            )

    def test_env_knobs(self, monkeypatch):
        from repro.telemetry.collector import default_trace_depth
        from repro.telemetry.windows import default_window_cycles

        monkeypatch.setenv("REPRO_TELEMETRY_WINDOW", "123")
        monkeypatch.setenv("REPRO_TELEMETRY_TRACE_DEPTH", "456")
        assert default_window_cycles() == 123
        assert default_trace_depth() == 456
        monkeypatch.setenv("REPRO_TELEMETRY_WINDOW", "0")
        with pytest.raises(ValueError):
            default_window_cycles()

    def test_off_by_default_and_costless(self):
        system, _ = _run("emesh-pure")
        assert system.telemetry is None
        collector_hooks = (
            TelemetryCollector._send_msg, TelemetryCollector._net_send,
        )
        assert system.send_msg.__func__ not in collector_hooks
