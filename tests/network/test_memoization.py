"""Unit tests for the topology memo caches (DESIGN.md section 9).

Route, tree and cluster queries are pure functions of the (frozen)
topology, so they are computed once and returned as shared immutable
tuples.  These tests pin the cache contract: repeated calls return the
*same* object, the returns are immutable, and the pinned
``broadcast_order`` matches the historical stack-order tree walk.
"""

import pytest

from repro.network.topology import MeshTopology


@pytest.fixture
def topo():
    return MeshTopology(width=8, cluster_width=4)


class TestRouteMemo:
    def test_repeat_calls_return_same_object(self, topo):
        assert topo.xy_route(3, 60) is topo.xy_route(3, 60)

    def test_route_is_a_tuple(self, topo):
        assert isinstance(topo.xy_route(0, 63), tuple)

    def test_distinct_pairs_are_cached_independently(self, topo):
        a = topo.xy_route(0, 63)
        b = topo.xy_route(63, 0)
        assert a != b
        assert topo.xy_route(0, 63) is a
        assert topo.xy_route(63, 0) is b

    def test_cached_route_still_validates_args(self, topo):
        topo.xy_route(0, 1)
        with pytest.raises(ValueError):
            topo.xy_route(0, 64)


class TestTreeMemo:
    def test_repeat_calls_return_same_object(self, topo):
        assert topo.broadcast_tree(11) is topo.broadcast_tree(11)

    def test_cluster_cores_memoized(self, topo):
        assert topo.cluster_cores(2) is topo.cluster_cores(2)
        assert isinstance(topo.cluster_cores(2), tuple)

    def test_core_lists_memoized(self, topo):
        assert topo.memctrl_cores() is topo.memctrl_cores()
        assert topo.compute_cores() is topo.compute_cores()


class TestBroadcastOrder:
    def test_memoized(self, topo):
        assert topo.broadcast_order(5) is topo.broadcast_order(5)

    def test_covers_every_core_but_the_source(self, topo):
        for src in (0, 27, 63):
            order = topo.broadcast_order(src)
            assert sorted(order) == [c for c in range(64) if c != src]

    def test_matches_historical_stack_walk(self, topo):
        """The pinned order is the legacy DFS emission order: children
        are appended as their parent is popped off a LIFO stack."""
        for src in (0, 35):
            tree = topo.broadcast_tree(src)
            expected = []
            stack = [src]
            while stack:
                node = stack.pop()
                for child in tree[node]:
                    expected.append(child)
                    stack.append(child)
            assert topo.broadcast_order(src) == tuple(expected)

    def test_parents_precede_children(self, topo):
        """Sanity: no core is delivered before its tree parent."""
        src = 19
        tree = topo.broadcast_tree(src)
        seen = {src}
        parent_of = {
            child: parent for parent, kids in tree.items() for child in kids
        }
        for core in topo.broadcast_order(src):
            assert parent_of[core] in seen
            seen.add(core)


class TestMemoIsolation:
    def test_caches_are_per_instance(self):
        """Two equal topologies do not share cache storage."""
        a = MeshTopology(width=8, cluster_width=4)
        b = MeshTopology(width=8, cluster_width=4)
        assert a.xy_route(0, 9) == b.xy_route(0, 9)
        assert a.xy_route(0, 9) is not b.xy_route(0, 9)

    def test_equality_ignores_cache_population(self):
        a = MeshTopology(width=8, cluster_width=4)
        b = MeshTopology(width=8, cluster_width=4)
        a.xy_route(0, 63)
        a.broadcast_tree(0)
        assert a == b
