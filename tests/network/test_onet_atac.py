"""Unit tests for the adaptive SWMR link, receive networks and ATAC/ATAC+."""

import pytest

from repro.network.atac import AtacNetwork
from repro.network.cluster_nets import ReceiveNetwork
from repro.network.onet import AdaptiveSWMRLink, LaserMode, OnetTiming
from repro.network.routing import ClusterRouting, DistanceRouting, distance_all
from repro.network.stats import NetworkStats
from repro.network.topology import MeshTopology
from repro.network.types import BROADCAST, Packet, control_packet


@pytest.fixture
def topo():
    return MeshTopology(width=8, cluster_width=4)


class TestAdaptiveSWMRLink:
    def test_zero_load_timing(self):
        link = AdaptiveSWMRLink(hub=0, n_hubs=4)
        data_start, arrival = link.transmit(time=10, n_flits=2, broadcast=False)
        # select lag 1, link delay 3, serialization 2
        assert data_start == 11
        assert arrival == 11 + 3 + 2

    def test_channel_serializes(self):
        link = AdaptiveSWMRLink(hub=0, n_hubs=4)
        link.transmit(time=0, n_flits=10, broadcast=False)
        data_start, _ = link.transmit(time=0, n_flits=2, broadcast=False)
        assert data_start == 11  # behind the 10-flit worm starting at t=1

    def test_mode_cycle_accounting(self):
        link = AdaptiveSWMRLink(hub=0, n_hubs=4)
        link.transmit(time=0, n_flits=5, broadcast=False)
        link.transmit(time=100, n_flits=3, broadcast=True)
        assert link.unicast_cycles == 5
        assert link.broadcast_cycles == 3
        assert link.idle_cycles(200) == 192

    def test_utilization(self):
        link = AdaptiveSWMRLink(hub=0, n_hubs=4)
        link.transmit(time=0, n_flits=25, broadcast=False)
        assert link.utilization(100) == pytest.approx(0.25)
        with pytest.raises(ValueError):
            link.utilization(0)

    def test_transitions_counted_with_idle_gaps(self):
        link = AdaptiveSWMRLink(hub=0, n_hubs=4)
        link.transmit(time=0, n_flits=2, broadcast=False)   # idle->uni (1)
        link.transmit(time=100, n_flits=2, broadcast=False)  # uni->idle->uni (2)
        assert link.mode_transitions == 3

    def test_no_transition_for_back_to_back_same_mode(self):
        link = AdaptiveSWMRLink(hub=0, n_hubs=4)
        link.transmit(time=0, n_flits=5, broadcast=False)
        # second message queued while first still transmitting: no idle gap
        link.transmit(time=0, n_flits=5, broadcast=False)
        assert link.mode_transitions == 1

    def test_rebias_for_back_to_back_mode_change(self):
        link = AdaptiveSWMRLink(hub=0, n_hubs=4)
        link.transmit(time=0, n_flits=5, broadcast=False)
        link.transmit(time=0, n_flits=5, broadcast=True)
        assert link.mode_transitions == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveSWMRLink(hub=5, n_hubs=4)
        with pytest.raises(ValueError):
            AdaptiveSWMRLink(hub=0, n_hubs=1)
        link = AdaptiveSWMRLink(hub=0, n_hubs=4)
        with pytest.raises(ValueError):
            link.transmit(time=-1, n_flits=1, broadcast=False)
        with pytest.raises(ValueError):
            link.transmit(time=0, n_flits=0, broadcast=False)


class TestReceiveNetwork:
    def test_single_cycle_delivery(self):
        net = ReceiveNetwork(cluster=0, cluster_size=16)
        assert net.deliver_unicast(time=10, n_flits=1) == 12  # 1 link + 1 flit

    def test_two_parallel_starnets(self):
        """Cores are statically split across the two networks: unicasts
        to different halves proceed in parallel; same-half unicasts
        queue (and thus stay FIFO)."""
        net = ReceiveNetwork(cluster=0, cluster_size=16, n_parallel=2)
        a = net.deliver_unicast(0, 10, local_index=0)
        b = net.deliver_unicast(0, 10, local_index=1)
        c = net.deliver_unicast(0, 10, local_index=2)
        assert a == b  # different halves: parallel
        assert c > a   # same half as index 0: queues behind it

    def test_broadcast_occupies_both_networks(self):
        net = ReceiveNetwork(cluster=0, cluster_size=16, n_parallel=2)
        net.deliver_broadcast(0, 10)
        # both halves are busy: any unicast queues
        assert net.deliver_unicast(0, 2, local_index=0) > 10
        assert net.deliver_unicast(0, 2, local_index=1) > 10

    def test_per_core_fifo_preserved(self):
        """A long then short message to the same core must stay ordered
        (the coherence protocol relies on this, see DESIGN.md)."""
        net = ReceiveNetwork(cluster=0, cluster_size=16, n_parallel=2)
        long_arrival = net.deliver_unicast(0, 10, local_index=4)
        short_arrival = net.deliver_unicast(1, 1, local_index=4)
        assert short_arrival > long_arrival

    def test_local_index_bounds(self):
        net = ReceiveNetwork(cluster=0, cluster_size=16)
        with pytest.raises(ValueError):
            net.deliver_unicast(0, 1, local_index=16)

    def test_bnet_and_starnet_same_timing(self):
        """Section IV-B: performance identical, energy different."""
        bnet = ReceiveNetwork(cluster=0, cluster_size=16, kind="bnet")
        star = ReceiveNetwork(cluster=0, cluster_size=16, kind="starnet")
        assert bnet.deliver_unicast(5, 2) == star.deliver_unicast(5, 2)

    def test_energy_counters_split_by_class(self):
        stats = NetworkStats()
        net = ReceiveNetwork(cluster=0, cluster_size=16, stats=stats)
        net.deliver_unicast(0, 2)
        net.deliver_broadcast(0, 3)
        assert stats.receive_net_unicast_flits == 2
        assert stats.receive_net_broadcast_flits == 3

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            ReceiveNetwork(cluster=0, cluster_size=16, kind="meshnet")


class TestAtacRouting:
    def test_cluster_routing_intra_stays_electrical(self, topo):
        net = AtacNetwork(topo, routing=ClusterRouting())
        net.send(control_packet(0, 9))  # same cluster
        assert net.stats.onet_unicasts == 0

    def test_cluster_routing_inter_uses_onet(self, topo):
        net = AtacNetwork(topo, routing=ClusterRouting())
        net.send(control_packet(0, 7))  # different cluster, only 7 hops
        assert net.stats.onet_unicasts == 1

    def test_distance_routing_short_intercluster_stays_electrical(self, topo):
        net = AtacNetwork(topo, routing=DistanceRouting(15))
        net.send(control_packet(3, 4))  # adjacent cores, different clusters
        assert net.stats.onet_unicasts == 0

    def test_distance_routing_long_uses_onet(self, topo):
        net = AtacNetwork(topo, routing=DistanceRouting(6))
        net.send(control_packet(0, 63))  # 14 hops
        assert net.stats.onet_unicasts == 1

    def test_distance_threshold_boundary(self, topo):
        """'At rthres or above it, a unicast packet is sent over the ONet.'"""
        r = DistanceRouting(14)
        assert r.use_onet(topo, 0, 63)          # exactly 14 hops -> ONet
        assert not DistanceRouting(15).use_onet(topo, 0, 63)

    def test_distance_all_never_uses_onet_for_unicasts(self, topo):
        net = AtacNetwork(topo, routing=distance_all(topo))
        net.send(control_packet(0, 63))
        assert net.stats.onet_unicasts == 0

    def test_broadcast_always_uses_onet(self, topo):
        for routing in (ClusterRouting(), DistanceRouting(15), distance_all(topo)):
            net = AtacNetwork(topo, routing=routing)
            net.send(Packet(src=0, dst=BROADCAST, size_bits=88))
            assert net.stats.onet_broadcasts == 1

    def test_routing_names(self, topo):
        assert ClusterRouting().name == "Cluster"
        assert DistanceRouting(15).name == "Distance-15"
        assert distance_all(topo).rthres >= 2 * topo.width


class TestAtacTiming:
    def test_onet_unicast_beats_mesh_at_long_distance(self, topo):
        """The ONet's zero-load advantage for cross-chip traffic."""
        atac = AtacNetwork(topo, routing=DistanceRouting(6))
        [(_, t_opt)] = atac.send(control_packet(0, 63))
        from repro.network.mesh import EMeshPure

        mesh = EMeshPure(topo)
        [(_, t_el)] = mesh.send(control_packet(0, 63))
        assert t_opt < t_el

    def test_broadcast_reaches_all_other_cores(self, topo):
        net = AtacNetwork(topo)
        deliveries = net.send(Packet(src=0, dst=BROADCAST, size_bits=88))
        assert {d for d, _ in deliveries} == set(range(64)) - {0}

    def test_broadcast_arrival_spread_is_small(self, topo):
        """Optical broadcast: all clusters hear the ring at once; only
        local delivery variance remains."""
        net = AtacNetwork(topo)
        deliveries = net.send(Packet(src=0, dst=BROADCAST, size_bits=88))
        arrivals = [a for _, a in deliveries]
        assert max(arrivals) - min(arrivals) <= 10

    def test_own_cluster_gets_broadcast_without_onet_receive(self, topo):
        net = AtacNetwork(topo)
        deliveries = dict(net.send(Packet(src=0, dst=BROADCAST, size_bits=88)))
        own = min(deliveries[c] for c in topo.cluster_cores(0) if c != 0)
        other = min(deliveries[c] for c in topo.cluster_cores(3))
        assert own <= other

    def test_atac_name_by_configuration(self, topo):
        assert AtacNetwork(topo).name == "ATAC+"
        assert (
            AtacNetwork(topo, routing=ClusterRouting(), receive_net="bnet").name
            == "ATAC"
        )

    def test_onet_utilization_rollup(self, topo):
        net = AtacNetwork(topo, routing=DistanceRouting(0))
        net.send(control_packet(0, 63))
        u = net.onet_utilization(100)
        assert 0 < u < 0.05  # 2 flits on 1 of 4 channels over 100 cycles

    def test_hub_delay_validation(self, topo):
        with pytest.raises(ValueError):
            AtacNetwork(topo, hub_delay=-1)


class TestDistanceRoutingValidation:
    def test_negative_rthres_rejected(self):
        with pytest.raises(ValueError):
            DistanceRouting(-1)

    def test_rthres_zero_routes_all_intercluster_over_onet(self, topo):
        """Distance-0 degenerates to Cluster routing."""
        d0, cl = DistanceRouting(0), ClusterRouting()
        for src, dst in [(0, 63), (0, 7), (3, 4), (0, 9)]:
            assert d0.use_onet(topo, src, dst) == cl.use_onet(topo, src, dst)
