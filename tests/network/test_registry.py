"""The network architecture registry: descriptors, lookups, end-to-end.

Covers the registry contract itself (ordering, lookup errors, duplicate
rejection) and the property the registry exists to guarantee: every
registered descriptor builds a working timing + energy + area stack
without any consumer knowing the architecture by name.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.energy.accounting import EnergyModel
from repro.energy.area import AreaModel
from repro.experiments.runspec import RunSpec
from repro.network.registry import (
    DEFAULT_NETWORK,
    NETWORK_CHOICES,
    REGISTRY,
    UnknownNetworkError,
    electrical_networks,
    experiment_axis,
    for_display_name,
    get_network,
    network_names,
    networks_for_fuzzing,
    receive_net_kind,
    register,
)
from repro.sim.config import SystemConfig, make_network


class TestRegistryContract:
    def test_registration_order_is_the_choice_order(self):
        assert network_names() == NETWORK_CHOICES
        # the paper's four networks first (golden-pinned column order),
        # then the extension architectures
        assert NETWORK_CHOICES[:4] == (
            "atac+", "atac", "emesh-bcast", "emesh-pure"
        )
        assert set(NETWORK_CHOICES[4:]) == {"corona", "hermes"}
        assert DEFAULT_NETWORK in NETWORK_CHOICES

    def test_unknown_network_error_lists_registered_names(self):
        with pytest.raises(UnknownNetworkError) as excinfo:
            get_network("omninet")
        message = str(excinfo.value)
        assert "omninet" in message
        for name in network_names():
            assert name in message

    def test_unknown_network_rejected_at_every_entry_point(self):
        with pytest.raises(ValueError):
            SystemConfig(network="omninet")
        with pytest.raises(ValueError):
            RunSpec(app="radix", network="omninet")
        with pytest.raises(ValueError):
            for_display_name("OmniNet")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register(REGISTRY["atac+"])
        assert network_names().count("atac+") == 1

    def test_duplicate_display_name_rejected(self):
        clone = dataclasses.replace(REGISTRY["atac+"], name="atac-clone")
        with pytest.raises(ValueError, match="already"):
            register(clone)
        assert "atac-clone" not in REGISTRY

    def test_display_name_round_trip(self):
        for name, descriptor in REGISTRY.items():
            assert get_network(name) is descriptor
            assert for_display_name(descriptor.display_name) is descriptor

    def test_receive_net_kind_helper(self):
        # original ATAC is defined by its BNet regardless of the config
        assert receive_net_kind("atac", "starnet") == "bnet"
        assert receive_net_kind("atac+", "starnet") == "starnet"
        assert receive_net_kind("atac+", "bnet") == "bnet"
        with pytest.raises(UnknownNetworkError):
            receive_net_kind("omninet", "starnet")

    def test_experiment_axes(self):
        runtime = experiment_axis("runtime")
        edp = experiment_axis("edp")
        sweep = experiment_axis("sweep")
        assert runtime == ("atac+", "emesh-bcast", "emesh-pure")
        assert edp == ("atac+", "emesh-bcast")
        # new architectures join the sweep grid automatically
        assert "corona" in sweep and "hermes" in sweep
        assert experiment_axis("nonexistent-axis") == ()

    def test_electrical_networks(self):
        assert electrical_networks() == ("emesh-bcast", "emesh-pure")

    def test_networks_for_fuzzing_gates_on_cluster_count(self):
        # w4 has a single cluster: only the electrical meshes fit
        assert networks_for_fuzzing(4) == electrical_networks()
        # w8 has four clusters: every registered network fits
        assert networks_for_fuzzing(8) == network_names()


class TestEveryDescriptorEndToEnd:
    @pytest.fixture(scope="class")
    def results(self):
        out = {}
        for name in network_names():
            spec = RunSpec(
                app="radix", network=name, mesh_width=8, scale=0.05
            )
            out[name] = (spec.config(), spec.execute())
        return out

    @pytest.mark.parametrize("name", network_names())
    def test_builds_and_simulates(self, results, name):
        config, result = results[name]
        network = make_network(config)
        assert network.name == get_network(name).display_name
        assert result.network == network.name
        assert result.completion_cycles > 0

    @pytest.mark.parametrize("name", network_names())
    def test_energy_model_evaluates(self, results, name):
        config, result = results[name]
        breakdown = EnergyModel(config).evaluate(result)
        assert breakdown.total_energy_j > 0
        descriptor = get_network(name)
        if descriptor.energy_components is not None:
            # architecture-specific wedges actually appeared (ring
            # tuning may be 0 under athermal scenarios, so key presence
            # is the contract there)
            assert breakdown["hub"] > 0
            assert "ring_tuning" in breakdown.components
            assert "laser" in breakdown.components
        else:
            assert breakdown["hub"] == 0.0
            assert breakdown["laser"] == 0.0

    @pytest.mark.parametrize("name", network_names())
    def test_area_model_evaluates(self, results, name):
        config, _ = results[name]
        breakdown = AreaModel(config).breakdown()
        assert breakdown.total_mm2 > 0
        has_photonics = get_network(name).area_components is not None
        assert ("photonics" in breakdown.components) == has_photonics

    def test_config_content_hash_distinguishes_networks(self):
        hashes = {
            SystemConfig(network=name).scaled(8).content_hash()
            for name in network_names()
        }
        assert len(hashes) == len(network_names())

    def test_runspec_content_hash_distinguishes_networks(self):
        hashes = {
            RunSpec(app="radix", network=name, mesh_width=8).content_hash()
            for name in network_names()
        }
        assert len(hashes) == len(network_names())
