"""Cross-validation: analytic latency model vs the event-driven engine.

DESIGN.md section 7 flags the packet-level wormhole approximation for
validation: at zero load the engine must match the closed forms
*exactly*.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.analytic import AnalyticModel
from repro.network.atac import AtacNetwork
from repro.network.mesh import EMeshBCast, EMeshPure
from repro.network.routing import ClusterRouting, DistanceRouting
from repro.network.topology import MeshTopology
from repro.network.types import BROADCAST, Packet, control_packet, data_packet


@pytest.fixture
def topo():
    return MeshTopology(width=8, cluster_width=4)


@pytest.fixture
def model(topo):
    return AnalyticModel(topo)


class TestMeshCrossValidation:
    @settings(max_examples=40, deadline=None)
    @given(src=st.integers(0, 63), dst=st.integers(0, 63),
           size=st.sampled_from([88, 600, 64, 128]))
    def test_unicast_zero_load_exact(self, src, dst, size):
        topo = MeshTopology(width=8, cluster_width=4)
        model = AnalyticModel(topo)
        net = EMeshPure(topo)
        [(_, arrival)] = net.send(Packet(src=src, dst=dst, size_bits=size))
        assert arrival == model.mesh_unicast_latency(src, dst, size)

    @settings(max_examples=20, deadline=None)
    @given(src=st.integers(0, 63))
    def test_broadcast_worst_leaf_exact(self, src):
        topo = MeshTopology(width=8, cluster_width=4)
        model = AnalyticModel(topo)
        net = EMeshBCast(topo)
        deliveries = net.send(Packet(src=src, dst=BROADCAST, size_bits=88))
        worst = max(a for _, a in deliveries)
        assert worst == model.mesh_broadcast_latency(src, 88)


class TestAtacCrossValidation:
    @settings(max_examples=40, deadline=None)
    @given(src=st.integers(0, 63), dst=st.integers(0, 63))
    def test_hybrid_unicast_zero_load_exact(self, src, dst):
        topo = MeshTopology(width=8, cluster_width=4)
        model = AnalyticModel(topo)
        routing = DistanceRouting(6)
        if src == dst:
            return
        net = AtacNetwork(topo, routing=routing)
        [(_, arrival)] = net.send(control_packet(src, dst))
        assert arrival == model.atac_unicast_latency(routing, src, dst, 88)

    def test_cluster_routing_agrees(self, topo, model):
        routing = ClusterRouting()
        net = AtacNetwork(topo, routing=routing)
        [(_, arrival)] = net.send(data_packet(0, 63))
        assert arrival == model.atac_unicast_latency(routing, 0, 63, 600)

    def test_optical_broadcast_bound(self, topo, model):
        """Engine broadcast arrivals are within a StarNet-queueing slack
        of the analytic single-message latency."""
        net = AtacNetwork(topo)
        deliveries = net.send(Packet(src=5, dst=BROADCAST, size_bits=88))
        analytic = model.optical_broadcast_latency(5, 88)
        arrivals = [a for _, a in deliveries]
        assert min(arrivals) <= analytic
        assert max(arrivals) <= analytic + 10


class TestSaturationEstimates:
    def test_mesh_saturation_scaling(self):
        """Saturation load falls as 1/W: bigger meshes saturate sooner
        per core (the Figure 3 regime)."""
        small = AnalyticModel(MeshTopology(width=8, cluster_width=4))
        big = AnalyticModel(MeshTopology(width=32, cluster_width=4))
        assert small.mesh_saturation_load() == pytest.approx(
            4 * big.mesh_saturation_load()
        )

    def test_mean_distance_formula(self, model):
        """Mean Manhattan distance on a W-mesh is ~2W/3."""
        import itertools, random

        topo = model.topology
        rng = random.Random(0)
        pairs = [(rng.randrange(64), rng.randrange(64)) for _ in range(4000)]
        empirical = sum(topo.manhattan(a, b) for a, b in pairs) / len(pairs)
        assert model.mean_mesh_distance() == pytest.approx(empirical, rel=0.05)

    def test_hybrid_saturation_balances(self, model):
        """The balanced split beats either extreme -- the analytical
        justification for a mid-range rthres."""
        all_enet = model.hybrid_saturation_load(0.0)
        all_onet = model.hybrid_saturation_load(1.0)
        onet_cap = model.onet_saturation_load()
        enet_cap = model.mesh_saturation_load()
        balanced_frac = onet_cap / (onet_cap + enet_cap)
        balanced = model.hybrid_saturation_load(balanced_frac)
        assert balanced >= all_enet
        assert balanced >= all_onet

    def test_hybrid_saturation_validation(self, model):
        with pytest.raises(ValueError):
            model.hybrid_saturation_load(1.5)

    def test_onet_fraction_monotonic_in_rthres(self, model):
        """Raising rthres strictly reduces optical traffic share."""
        fracs = [
            model.onet_traffic_fraction(DistanceRouting(t), samples=1500)
            for t in (0, 5, 10, 14)
        ]
        assert all(a >= b for a, b in zip(fracs, fracs[1:]))
        assert fracs[0] > 0.5  # Distance-0 = cluster-ish: most traffic optical


class TestValidation:
    def test_bad_size_rejected(self, model):
        with pytest.raises(ValueError):
            model.mesh_unicast_latency(0, 1, size_bits=0)

    def test_self_send(self, model):
        assert model.mesh_unicast_latency(3, 3) == 1
