"""Behavioral tests for the two extension architectures.

Corona (all-optical MWSR crossbar) and HERMES (hierarchical optical
broadcast) prove the registry's extensibility claim, so these tests pin
the properties that make each architecture what it is: where traffic
flows (electrical vs optical), who serializes with whom, and that both
survive a sanitized end-to-end run.
"""

from __future__ import annotations

import pytest

from repro.experiments.runspec import RunSpec
from repro.network.corona import CoronaNetwork
from repro.network.hermes import HermesNetwork, hermes_regions
from repro.network.topology import MeshTopology
from repro.network.types import BROADCAST, Packet


@pytest.fixture
def topo():
    return MeshTopology(width=8, cluster_width=4)  # 4 clusters of 16


def _pkt(src, dst, time=0, size_bits=64):
    return Packet(src=src, dst=dst, size_bits=size_bits, time=time)


class TestCorona:
    def test_intra_cluster_unicast_stays_electrical(self, topo):
        net = CoronaNetwork(topo)
        src, dst = topo.cluster_cores(0)[0], topo.cluster_cores(0)[5]
        net.send(_pkt(src, dst))
        assert net.stats.onet_unicast_flits == 0
        assert net.stats.hub_flit_traversals == 0
        assert net.stats.router_flit_traversals > 0

    def test_inter_cluster_unicast_goes_optical(self, topo):
        net = CoronaNetwork(topo)
        src = topo.cluster_cores(0)[0]
        dst = topo.cluster_cores(3)[0]
        [(core, arrival)] = net.send(_pkt(src, dst))
        assert core == dst and arrival > 0
        # there is no electrical inter-cluster path on this fabric
        assert net.stats.onet_unicast_flits == 1
        assert net.stats.receive_net_unicast_flits == 1

    def test_token_delay_precedes_the_channel(self, topo):
        fast = CoronaNetwork(topo, token_delay=0)
        slow = CoronaNetwork(topo, token_delay=5)
        src = topo.cluster_cores(0)[0]
        dst = topo.cluster_cores(3)[0]
        [(_, a_fast)] = fast.send(_pkt(src, dst))
        [(_, a_slow)] = slow.send(_pkt(src, dst))
        assert a_slow == a_fast + 5

    def test_writers_serialize_at_the_destination_channel(self, topo):
        net = CoronaNetwork(topo)
        dst = topo.cluster_cores(3)[0]
        # two writers from different clusters target cluster 3 at t=0:
        # MWSR means they contend on the *destination's* channel
        [(_, first)] = net.send(_pkt(topo.cluster_cores(0)[0], dst))
        [(_, second)] = net.send(
            _pkt(topo.cluster_cores(1)[0], topo.cluster_cores(3)[1])
        )
        solo = CoronaNetwork(topo)
        [(_, unqueued)] = solo.send(
            _pkt(topo.cluster_cores(1)[0], topo.cluster_cores(3)[1])
        )
        assert second > unqueued  # queued behind the first writer

    def test_different_destinations_do_not_serialize(self, topo):
        net = CoronaNetwork(topo)
        [(_, a1)] = net.send(
            _pkt(topo.cluster_cores(0)[0], topo.cluster_cores(2)[0])
        )
        [(_, a2)] = net.send(
            _pkt(topo.cluster_cores(1)[0], topo.cluster_cores(3)[0])
        )
        solo = CoronaNetwork(topo)
        [(_, unqueued)] = solo.send(
            _pkt(topo.cluster_cores(1)[0], topo.cluster_cores(3)[0])
        )
        assert a2 == unqueued  # separate MWSR channels, no contention

    def test_broadcast_covers_chip_via_broadcast_channel(self, topo):
        net = CoronaNetwork(topo)
        src = topo.cluster_cores(0)[0]
        deliveries = net.send(_pkt(src, BROADCAST))
        assert {c for c, _ in deliveries} == set(range(topo.n_cores)) - {src}
        assert net.broadcast_channel.broadcast_cycles > 0
        # unicast channels stayed dark
        assert all(
            link.broadcast_cycles == 0
            for link in net.onet_links[: topo.n_clusters]
        )

    def test_broadcast_channel_in_port_inventory(self, topo):
        net = CoronaNetwork(topo)
        assert len(net.onet_links) == topo.n_clusters + 1
        assert net.onet_links[-1] is net.broadcast_channel

    def test_token_delay_validated(self, topo):
        with pytest.raises(ValueError):
            CoronaNetwork(topo, token_delay=-1)


class TestHermes:
    def test_regions_partition_the_clusters(self):
        # 12x12 mesh, 4-wide clusters: a 3x3 cluster grid, so 2x2
        # regioning leaves smaller edge regions including a singleton
        topo = MeshTopology(width=12, cluster_width=4)
        regions = hermes_regions(topo)
        flat = [c for members in regions for c in members]
        assert sorted(flat) == list(range(topo.n_clusters))
        sizes = sorted(len(m) for m in regions)
        assert sizes == [1, 2, 2, 4]

    def test_single_cluster_region_has_no_rebroadcast_channel(self):
        topo = MeshTopology(width=12, cluster_width=4)
        net = HermesNetwork(topo)
        singletons = [
            r for r, members in enumerate(net.regions) if len(members) == 1
        ]
        assert singletons
        for r in singletons:
            assert net.region_channels[r] is None
        # optical inventory: the global channel + one per multi-cluster
        # region
        multi = sum(1 for m in net.regions if len(m) >= 2)
        assert len(net.onet_links) == 1 + multi
        assert net.onet_links[0] is net.global_channel

    def test_unicasts_never_touch_the_optics(self, topo):
        net = HermesNetwork(topo)
        src = topo.cluster_cores(0)[0]
        for t, dst in enumerate(
            (topo.cluster_cores(3)[0], topo.cluster_cores(1)[7])
        ):
            net.send(_pkt(src, dst, time=t))
        assert net.stats.onet_unicast_flits == 0
        assert net.stats.hub_flit_traversals == 0
        assert net.stats.router_flit_traversals > 0

    def test_broadcast_covers_chip_through_the_hierarchy(self, topo):
        net = HermesNetwork(topo)
        src = topo.cluster_cores(2)[4]
        deliveries = net.send(_pkt(src, BROADCAST))
        assert {c for c, _ in deliveries} == set(range(topo.n_cores)) - {src}
        assert net.global_channel.broadcast_cycles > 0
        # the second level re-broadcast fired on every multi-cluster
        # region's channel
        for channel in net.region_channels:
            if channel is not None:
                assert channel.broadcast_cycles > 0

    def test_non_head_clusters_wait_for_the_rebroadcast(self, topo):
        net = HermesNetwork(topo)
        src = topo.cluster_cores(0)[0]
        deliveries = dict(net.send(_pkt(src, BROADCAST)))
        head = net._head_of_region[net._region_of_cluster[1]]
        # pick a cluster that is neither the sender's nor a region head
        member = next(
            c for c in range(topo.n_clusters)
            if c != 0 and c != net._head_of_region[net._region_of_cluster[c]]
        )
        head_arrival = deliveries[topo.cluster_cores(head)[1]]
        member_arrival = deliveries[topo.cluster_cores(member)[1]]
        assert member_arrival > head_arrival


@pytest.mark.parametrize("network", ["corona", "hermes"])
def test_sanitized_end_to_end_run(network):
    spec = RunSpec(
        app="barnes", network=network, mesh_width=8, scale=0.05,
        sanitize=True,
    )
    result = spec.execute()
    assert result.completion_cycles > 0
    assert result.network in ("Corona", "HERMES")
