"""Hypothesis property tests on network-wide invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.atac import AtacNetwork
from repro.network.mesh import EMeshBCast, EMeshPure
from repro.network.routing import DistanceRouting
from repro.network.topology import MeshTopology
from repro.network.types import BROADCAST, Packet


def _topo():
    return MeshTopology(width=8, cluster_width=4)


def _packets(draw_times, srcs, dsts, sizes):
    pkts = []
    t = 0
    for dt, s, d, sz in zip(draw_times, srcs, dsts, sizes):
        t += dt
        if s == d:
            d = (d + 1) % 64
        pkts.append(Packet(src=s, dst=d, size_bits=sz, time=t))
    return pkts


packet_stream = st.tuples(
    st.lists(st.integers(0, 5), min_size=1, max_size=40),
    st.lists(st.integers(0, 63), min_size=40, max_size=40),
    st.lists(st.integers(-1, 63), min_size=40, max_size=40),
    st.lists(st.sampled_from([88, 600]), min_size=40, max_size=40),
)


@settings(max_examples=25, deadline=None)
@given(stream=packet_stream)
@pytest.mark.parametrize("net_cls", [EMeshPure, EMeshBCast])
def test_every_packet_delivered_to_every_target(net_cls, stream):
    """Conservation: unicasts deliver once, broadcasts N-1 times, and
    arrivals strictly follow injections."""
    times, srcs, dsts, sizes = stream
    net = net_cls(_topo())
    pkts = _packets(times, srcs, dsts, sizes)
    for pkt in pkts:
        deliveries = net.send(pkt)
        if pkt.dst == BROADCAST:
            assert len(deliveries) == 63
            assert {c for c, _ in deliveries} == set(range(64)) - {pkt.src}
        else:
            assert [c for c, _ in deliveries] == [pkt.dst]
        for _, arrival in deliveries:
            assert arrival > pkt.time


@settings(max_examples=25, deadline=None)
@given(stream=packet_stream)
def test_atac_delivery_conservation(stream):
    times, srcs, dsts, sizes = stream
    net = AtacNetwork(_topo(), routing=DistanceRouting(6))
    pkts = _packets(times, srcs, dsts, sizes)
    for pkt in pkts:
        deliveries = net.send(pkt)
        expected = 63 if pkt.dst == BROADCAST else 1
        assert len(deliveries) == expected
        for _, arrival in deliveries:
            assert arrival > pkt.time


@settings(max_examples=25, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 63), st.integers(0, 63), st.sampled_from([88, 600])),
        min_size=2, max_size=20,
    )
)
def test_per_pair_fifo_order(pairs):
    """The coherence protocol's load-bearing assumption: two messages
    between the same (src, dst) pair are delivered in send order, on
    every network, regardless of size."""
    topo = _topo()
    for net in (EMeshPure(topo), EMeshBCast(topo),
                AtacNetwork(topo, routing=DistanceRouting(6))):
        last_arrival: dict = {}
        t = 0
        for src, dst, size in pairs:
            if src == dst:
                continue
            t += 1
            [(_, arrival)] = net.send(Packet(src=src, dst=dst, size_bits=size, time=t))
            key = (src, dst)
            if key in last_arrival:
                assert arrival > last_arrival[key], (
                    f"{type(net).__name__}: FIFO violated for {key}"
                )
            last_arrival[key] = arrival


@settings(max_examples=15, deadline=None)
@given(
    load_seed=st.integers(0, 5),
    n=st.integers(10, 60),
)
def test_stats_flit_conservation(load_seed, n):
    """Injected flits equal per-packet flit sums; receiver counters are
    consistent with delivery counts."""
    import random

    rng = random.Random(load_seed)
    net = AtacNetwork(_topo(), routing=DistanceRouting(6))
    total_flits = 0
    rx_unicast = 0
    rx_bcast = 0
    t = 0
    for _ in range(n):
        t += rng.randint(0, 3)
        src = rng.randrange(64)
        if rng.random() < 0.1:
            dst = BROADCAST
        else:
            dst = rng.randrange(63)
            if dst >= src:
                dst += 1
        size = rng.choice([88, 600])
        pkt = Packet(src=src, dst=dst, size_bits=size, time=t)
        flits = pkt.n_flits(64)
        total_flits += flits
        deliveries = net.send(pkt)
        if dst == BROADCAST:
            rx_bcast += flits * len(deliveries)
        else:
            rx_unicast += flits
    s = net.stats
    assert s.injected_flits == total_flits
    assert s.received_unicast_flits == rx_unicast
    assert s.received_broadcast_flits == rx_bcast
