"""Unit tests for the EMesh-Pure and EMesh-BCast baselines."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.mesh import EMeshBCast, EMeshPure
from repro.network.topology import MeshTopology
from repro.network.types import BROADCAST, Packet, control_packet, data_packet


@pytest.fixture
def topo():
    return MeshTopology(width=8, cluster_width=4)


class TestZeroLoadLatency:
    def test_unicast_wormhole_formula(self, topo):
        """Zero-load latency = hops * (router+link) + serialization."""
        net = EMeshPure(topo)
        pkt = control_packet(0, 63)  # 14 hops, 2 flits
        [(dst, arrival)] = net.send(pkt)
        assert dst == 63
        assert arrival == 14 * 2 + 2

    def test_data_packet_serialization(self, topo):
        net = EMeshPure(topo)
        pkt = data_packet(0, 7)  # 7 hops, 10 flits (600 bits)
        [(_, arrival)] = net.send(pkt)
        assert arrival == 7 * 2 + 10

    def test_one_hop(self, topo):
        net = EMeshPure(topo)
        [(_, arrival)] = net.send(control_packet(0, 1))
        assert arrival == 2 + 2

    def test_self_send_is_local(self, topo):
        net = EMeshPure(topo)
        [(dst, arrival)] = net.send(control_packet(3, 3, time=5))
        assert dst == 3 and arrival == 6
        assert net.stats.router_flit_traversals == 0

    def test_same_formula_on_bcast_mesh(self, topo):
        """EMesh-BCast unicasts behave identically to EMesh-Pure."""
        a, b = EMeshPure(topo), EMeshBCast(topo)
        [(_, t1)] = a.send(control_packet(5, 60))
        [(_, t2)] = b.send(control_packet(5, 60))
        assert t1 == t2


class TestContention:
    def test_second_packet_queues_behind_first(self, topo):
        net = EMeshPure(topo)
        [(_, t1)] = net.send(control_packet(0, 7, time=0))
        [(_, t2)] = net.send(control_packet(0, 7, time=0))
        # same path: second serializes behind the first at every hop
        assert t2 > t1

    def test_disjoint_paths_dont_interact(self, topo):
        net = EMeshPure(topo)
        [(_, t1)] = net.send(control_packet(0, 7, time=0))
        [(_, t2)] = net.send(control_packet(56, 63, time=0))
        assert t1 - 0 == t2 - 0

    def test_sends_must_be_time_ordered(self, topo):
        net = EMeshPure(topo)
        net.send(control_packet(0, 1, time=100))
        with pytest.raises(ValueError):
            net.send(control_packet(0, 1, time=50))


class TestBroadcasts:
    def test_pure_mesh_broadcast_reaches_everyone(self, topo):
        net = EMeshPure(topo)
        deliveries = net.send(Packet(src=0, dst=BROADCAST, size_bits=88))
        assert len(deliveries) == 63
        assert {d for d, _ in deliveries} == set(range(1, 64))

    def test_bcast_mesh_broadcast_reaches_everyone(self, topo):
        net = EMeshBCast(topo)
        deliveries = net.send(Packet(src=27, dst=BROADCAST, size_bits=88))
        assert len(deliveries) == 63
        assert {d for d, _ in deliveries} == set(range(64)) - {27}

    def test_pure_broadcast_serializes_at_source(self, topo):
        """EMesh-Pure: N-1 unicasts pile up at the source's ports --
        the last delivery is far later than the first."""
        net = EMeshPure(topo)
        deliveries = net.send(Packet(src=0, dst=BROADCAST, size_bits=88))
        arrivals = sorted(a for _, a in deliveries)
        # ~63 packets x 2 flits through <=2 output ports of the source
        assert arrivals[-1] - arrivals[0] > 40

    def test_tree_broadcast_much_faster_than_pure(self, topo):
        """The EMesh-BCast advantage the paper's Figure 4 shows."""
        pure, tree = EMeshPure(topo), EMeshBCast(topo)
        worst_pure = max(a for _, a in pure.send(Packet(src=0, dst=BROADCAST, size_bits=88)))
        worst_tree = max(a for _, a in tree.send(Packet(src=0, dst=BROADCAST, size_bits=88)))
        assert worst_tree < worst_pure / 2

    def test_tree_broadcast_bounded_by_diameter(self, topo):
        net = EMeshBCast(topo)
        deliveries = net.send(Packet(src=0, dst=BROADCAST, size_bits=88))
        worst = max(a for _, a in deliveries)
        diameter = 2 * (topo.width - 1)
        assert worst <= diameter * 2 + 2 * 2  # hops*2 + small slack

    def test_pure_broadcast_counts_n_unicast_energy(self, topo):
        """EMesh-Pure burns ~N x the link energy of the tree broadcast."""
        pure, tree = EMeshPure(topo), EMeshBCast(topo)
        pure.send(Packet(src=0, dst=BROADCAST, size_bits=88))
        tree.send(Packet(src=0, dst=BROADCAST, size_bits=88))
        assert (
            pure.stats.link_flit_traversals
            > 3 * tree.stats.link_flit_traversals
        )

    def test_tree_broadcast_link_traversals_exact(self, topo):
        """Tree broadcast: each of the 63 tree edges carries the packet once."""
        net = EMeshBCast(topo)
        net.send(Packet(src=0, dst=BROADCAST, size_bits=88))
        assert net.stats.link_flit_traversals == 63 * 2


class TestStatsAccounting:
    def test_unicast_counters(self, topo):
        net = EMeshPure(topo)
        net.send(control_packet(0, 63))
        s = net.stats
        assert s.packets_sent == 1
        assert s.unicasts_sent == 1
        assert s.injected_flits == 2
        assert s.received_unicast_flits == 2
        assert s.router_flit_traversals == 2 * 15  # 14 hops + ejection router
        assert s.link_flit_traversals == 2 * 14

    def test_broadcast_receiver_flits(self, topo):
        net = EMeshBCast(topo)
        net.send(Packet(src=0, dst=BROADCAST, size_bits=88))
        assert net.stats.received_broadcast_flits == 63 * 2

    def test_reset_stats(self, topo):
        net = EMeshPure(topo)
        net.send(control_packet(0, 1))
        old = net.reset_stats()
        assert old.packets_sent == 1
        assert net.stats.packets_sent == 0


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(src=st.integers(0, 63), dst=st.integers(0, 63))
    def test_latency_grows_with_distance_at_zero_load(self, src, dst):
        topo = MeshTopology(width=8, cluster_width=4)
        net = EMeshPure(topo)
        if src == dst:
            return
        [(_, arrival)] = net.send(control_packet(src, dst))
        assert arrival == topo.manhattan(src, dst) * 2 + 2
