"""Unit tests for the resource-reservation timing engine."""

import pytest
from hypothesis import given, strategies as st

from repro.network.engine import MeshTiming, MultiPortResource, PortResource
from repro.network.stats import NetworkStats


class TestPortResource:
    def test_uncontended_starts_immediately(self):
        p = PortResource()
        assert p.reserve(10, 3) == 10
        assert p.free_at == 13

    def test_contended_waits(self):
        p = PortResource()
        p.reserve(0, 10)
        assert p.reserve(5, 2) == 10

    def test_busy_accounting(self):
        p = PortResource()
        p.reserve(0, 4)
        p.reserve(0, 6)
        assert p.busy_cycles == 10

    def test_rejects_negative(self):
        p = PortResource()
        with pytest.raises(ValueError):
            p.reserve(-1, 1)
        with pytest.raises(ValueError):
            p.reserve(0, -1)

    @given(st.lists(st.tuples(st.integers(0, 100), st.integers(1, 10)), min_size=1, max_size=20))
    def test_reservations_never_overlap(self, reqs):
        """Property: sequential reservations form disjoint intervals."""
        reqs.sort()  # engine requires time-ordered requests
        p = PortResource()
        intervals = []
        for earliest, dur in reqs:
            start = p.reserve(earliest, dur)
            assert start >= earliest
            intervals.append((start, start + dur))
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert s2 >= e1

    def test_reservation_order_is_service_order(self):
        """Reservation order wins: a later call queues behind an earlier
        one even if its ``earliest`` is smaller (FCFS in call order, the
        engine's time-ordering contract)."""
        p = PortResource()
        first = p.reserve(5, 10)  # occupies [5, 15)
        second = p.reserve(2, 3)  # asked for t=2, must wait for the port
        assert first == 5
        assert second == 15
        assert p.free_at == 18

    def test_zero_duration_reservation(self):
        """A zero-cycle reservation is a no-op on port state: it neither
        advances ``free_at`` nor accrues busy time, and still reports a
        correct start."""
        p = PortResource()
        p.reserve(0, 7)
        start = p.reserve(0, 0)
        assert start == 7  # queued behind the busy interval...
        assert p.free_at == 7  # ...but holds the port for zero cycles
        assert p.busy_cycles == 7
        assert p.reserve(3, 4) == 7  # next real reservation unaffected

    def test_zero_duration_on_idle_port(self):
        p = PortResource()
        assert p.reserve(9, 0) == 9
        assert p.free_at == 9
        assert p.busy_cycles == 0

    def test_saturation_free_at_runaway(self):
        """Offered load > capacity: ``free_at`` diverges linearly from
        wall-clock time -- the mechanism behind Figure 3's hockey stick."""
        p = PortResource()
        # 1 packet per cycle offered, 2 cycles of service each
        backlogs = []
        for t in range(100):
            p.reserve(t, 2)
            backlogs.append(p.free_at - (t + 1))
        # backlog grows monotonically, ~1 cycle per injected packet
        assert backlogs == sorted(backlogs)
        assert backlogs[-1] == pytest.approx(100, abs=2)
        # queueing delay experienced by the next arrival diverges too
        assert p.reserve(100, 2) - 100 == pytest.approx(101, abs=2)

    def test_underload_free_at_tracks_wall_clock(self):
        """Below capacity the port drains: no backlog accumulates."""
        p = PortResource()
        for t in range(0, 100, 4):  # every 4 cycles, 2 cycles of service
            start = p.reserve(t, 2)
            assert start == t  # never queued
        assert p.free_at == 98
        assert p.busy_cycles == 50


class TestMultiPortResource:
    def test_two_servers_run_in_parallel(self):
        m = MultiPortResource(2)
        assert m.reserve(0, 10) == 0
        assert m.reserve(0, 10) == 0  # second server
        assert m.reserve(0, 10) == 10  # now queued

    def test_single_server_equals_port(self):
        m = MultiPortResource(1)
        m.reserve(0, 5)
        assert m.reserve(0, 5) == 5

    def test_rejects_zero_servers(self):
        with pytest.raises(ValueError):
            MultiPortResource(0)

    def test_picks_earliest_free(self):
        m = MultiPortResource(2)
        m.reserve(0, 100)
        m.reserve(0, 1)
        # server 1 frees at t=1, so next starts there
        assert m.reserve(0, 5) == 1

    def test_rejects_negative(self):
        m = MultiPortResource(2)
        with pytest.raises(ValueError):
            m.reserve(-1, 1)
        with pytest.raises(ValueError):
            m.reserve(0, -1)

    def test_reservation_order_is_service_order(self):
        """With every server busy, later calls queue in call order."""
        m = MultiPortResource(2)
        m.reserve(0, 10)
        m.reserve(0, 20)
        # both servers busy; the next two go to whichever frees first
        assert m.reserve(0, 5) == 10
        assert m.reserve(0, 5) == 15

    def test_zero_duration_reservation(self):
        m = MultiPortResource(2)
        m.reserve(0, 6)
        m.reserve(0, 8)
        start = m.reserve(0, 0)
        assert start == 6  # earliest-free server
        assert sorted(m.free_at) == [6, 8]  # state untouched
        assert m.busy_cycles == 14

    def test_saturation_free_at_runaway(self):
        """k servers saturate at k reservations per service time; beyond
        that the pooled backlog diverges just like a single port."""
        m = MultiPortResource(2)
        backlogs = []
        # offered: 1/cycle x 4-cycle service on 2 servers = 2x capacity
        for t in range(100):
            m.reserve(t, 4)
            backlogs.append(min(m.free_at) - (t + 1))
        assert backlogs == sorted(backlogs)
        assert min(m.free_at) >= 190  # ~2 cycles of backlog per arrival
        assert m.busy_cycles == 400

    def test_at_capacity_no_backlog(self):
        """Exactly k concurrent streams keep both servers busy with no
        queueing: start times track arrivals."""
        m = MultiPortResource(2)
        for t in range(0, 40, 2):  # 2 arrivals per 4-cycle service window
            assert m.reserve(t, 4) <= t + 2
        assert max(m.free_at) <= 44


class TestMeshTiming:
    def test_table_i_defaults(self):
        t = MeshTiming()
        assert t.router_delay == 1
        assert t.link_delay == 1
        assert t.hop_latency == 2


class TestNetworkStats:
    def test_latency_accumulation(self):
        s = NetworkStats()
        s.record_latency(10)
        s.record_latency(20)
        assert s.mean_latency == 15
        assert s.latency_max == 20

    def test_mean_latency_empty(self):
        assert NetworkStats().mean_latency == 0.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            NetworkStats().record_latency(-1)

    def test_receiver_broadcast_fraction(self):
        s = NetworkStats()
        s.received_unicast_flits = 30
        s.received_broadcast_flits = 70
        assert s.receiver_broadcast_fraction() == pytest.approx(0.7)

    def test_broadcast_fraction_empty(self):
        assert NetworkStats().receiver_broadcast_fraction() == 0.0

    def test_offered_load(self):
        s = NetworkStats()
        s.injected_flits = 1000
        assert s.offered_load(cycles=100, n_cores=10) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            s.offered_load(0, 10)

    def test_unicasts_per_broadcast(self):
        s = NetworkStats()
        s.onet_unicasts, s.onet_broadcasts = 500, 5
        assert s.unicasts_per_broadcast() == 100
        s.onet_broadcasts = 0
        assert s.unicasts_per_broadcast() == float("inf")

    def test_link_utilization_clamped(self):
        s = NetworkStats()
        s.onet_unicast_cycles = 50
        s.onet_broadcast_cycles = 10
        assert s.onet_link_utilization(100, 1) == pytest.approx(0.6)
        assert s.onet_link_utilization(10, 1) == 1.0
        with pytest.raises(ValueError):
            s.onet_link_utilization(0, 1)

    def test_merge(self):
        a, b = NetworkStats(), NetworkStats()
        a.injected_flits, b.injected_flits = 10, 5
        a.latency_max, b.latency_max = 7, 9
        m = a.merged_with(b)
        assert m.injected_flits == 15
        assert m.latency_max == 9

    def test_as_dict_roundtrip(self):
        s = NetworkStats()
        s.packets_sent = 3
        d = s.as_dict()
        assert d["packets_sent"] == 3
        assert "onet_broadcast_cycles" in d
