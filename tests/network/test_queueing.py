"""Tests for the analytical-contention backend vs the event engine."""

import pytest

from repro.network.mesh import EMeshPure
from repro.network.queueing import AnalyticMesh, _PortLoad
from repro.network.topology import MeshTopology
from repro.network.types import Packet, control_packet
from repro.workloads.synthetic import SyntheticTraffic, run_load_point


@pytest.fixture
def topo():
    return MeshTopology(width=8, cluster_width=4)


class TestPortLoad:
    def test_idle_port_no_delay(self):
        p = _PortLoad()
        assert p.offer(0, 1) < 0.1

    def test_sustained_load_builds_delay(self):
        p = _PortLoad()
        delays = [p.offer(t, 1) for t in range(0, 2000)]
        assert delays[-1] > delays[0]
        assert delays[-1] > 5  # near-saturation queueing

    def test_delay_decays_when_idle(self):
        p = _PortLoad()
        for t in range(500):
            p.offer(t, 1)
        busy_delay = p.offer(500, 1)
        idle_delay = p.offer(5000, 1)  # long gap decays the EWMA
        assert idle_delay < busy_delay

    def test_delay_bounded_past_saturation(self):
        p = _PortLoad()
        for t in range(200):
            p.offer(t, 10)  # 10x oversubscribed
        # the rho clamp keeps the estimate finite
        assert p.offer(200, 10) < 30


class TestAnalyticMesh:
    def test_zero_load_matches_event_engine(self, topo):
        analytic = AnalyticMesh(topo)
        engine = EMeshPure(topo)
        for src, dst in ((0, 63), (5, 12), (33, 40)):
            [(_, t_a)] = analytic.send(control_packet(src, dst))
            [(_, t_e)] = engine.send(control_packet(src, dst))
            assert t_a == t_e, (src, dst)

    def test_latency_grows_with_load(self, topo):
        latencies = []
        for load in (0.02, 0.3, 0.8):
            net = AnalyticMesh(topo)
            traffic = SyntheticTraffic(64, load=load, broadcast_fraction=0.0, seed=2)
            pt = run_load_point(net, traffic, cycles=1500, warmup_cycles=400)
            latencies.append(pt.mean_latency)
        assert latencies == sorted(latencies)
        assert latencies[-1] > 1.5 * latencies[0]

    def test_agrees_with_engine_at_low_load(self, topo):
        results = {}
        for cls in (AnalyticMesh, EMeshPure):
            net = cls(topo)
            traffic = SyntheticTraffic(64, load=0.03, broadcast_fraction=0.0, seed=4)
            pt = run_load_point(net, traffic, cycles=1500, warmup_cycles=400)
            results[cls.__name__] = pt.mean_latency
        assert results["AnalyticMesh"] == pytest.approx(
            results["EMeshPure"], rel=0.25
        )

    def test_counters_match_engine(self, topo):
        analytic, engine = AnalyticMesh(topo), EMeshPure(topo)
        for net in (analytic, engine):
            net.send(control_packet(0, 63))
        assert (
            analytic.stats.router_flit_traversals
            == engine.stats.router_flit_traversals
        )
        assert (
            analytic.stats.link_flit_traversals
            == engine.stats.link_flit_traversals
        )

    def test_broadcast_reaches_everyone(self, topo):
        from repro.network.types import BROADCAST

        net = AnalyticMesh(topo)
        deliveries = net.send(Packet(src=0, dst=BROADCAST, size_bits=88))
        assert {d for d, _ in deliveries} == set(range(1, 64))

    def test_utilization_diagnostic(self, topo):
        net = AnalyticMesh(topo)
        assert net.mean_port_utilization() == 0.0
        traffic = SyntheticTraffic(64, load=0.3, broadcast_fraction=0.0, seed=1)
        run_load_point(net, traffic, cycles=800, warmup_cycles=200)
        assert net.mean_port_utilization() > 0.0
