"""Unit tests for mesh/cluster geometry."""

import pytest
from hypothesis import given, strategies as st

from repro.network.topology import ATAC_1024, MeshTopology


@pytest.fixture
def topo64():
    """64 cores: 8x8 mesh, four 4x4 clusters."""
    return MeshTopology(width=8, cluster_width=4)


class TestPaperGeometry:
    def test_atac_1024_counts(self):
        assert ATAC_1024.n_cores == 1024
        assert ATAC_1024.n_clusters == 64
        assert ATAC_1024.cluster_size == 16

    def test_one_memctrl_per_cluster(self):
        assert len(ATAC_1024.memctrl_cores()) == 64
        assert len(set(ATAC_1024.memctrl_cores())) == 64

    def test_compute_cores_exclude_memctrls(self):
        compute = ATAC_1024.compute_cores()
        assert len(compute) == 1024 - 64
        assert set(compute).isdisjoint(ATAC_1024.memctrl_cores())


class TestCoordinates:
    def test_roundtrip(self, topo64):
        for core in range(topo64.n_cores):
            x, y = topo64.coords(core)
            assert topo64.core_at(x, y) == core

    def test_out_of_range_core(self, topo64):
        with pytest.raises(ValueError):
            topo64.coords(64)
        with pytest.raises(ValueError):
            topo64.coords(-1)

    def test_out_of_range_position(self, topo64):
        with pytest.raises(ValueError):
            topo64.core_at(8, 0)

    def test_manhattan_symmetric(self, topo64):
        assert topo64.manhattan(0, 63) == topo64.manhattan(63, 0) == 14

    def test_manhattan_zero_to_self(self, topo64):
        assert topo64.manhattan(17, 17) == 0


class TestClusters:
    def test_cluster_partition(self, topo64):
        """Every core is in exactly one cluster of the right size."""
        seen = []
        for c in range(topo64.n_clusters):
            cores = topo64.cluster_cores(c)
            assert len(cores) == 16
            for core in cores:
                assert topo64.cluster_of(core) == c
            seen.extend(cores)
        assert sorted(seen) == list(range(64))

    def test_hub_inside_its_cluster(self, topo64):
        for c in range(topo64.n_clusters):
            assert topo64.cluster_of(topo64.hub_core(c)) == c

    def test_hub_is_central(self, topo64):
        """Hub-to-member distance is bounded by the cluster diameter."""
        for c in range(topo64.n_clusters):
            hub = topo64.hub_core(c)
            for core in topo64.cluster_cores(c):
                assert topo64.manhattan(hub, core) <= 2 * (topo64.cluster_width - 1)

    def test_memctrl_inside_its_cluster(self, topo64):
        for c in range(topo64.n_clusters):
            assert topo64.cluster_of(topo64.memctrl_core(c)) == c

    def test_invalid_cluster(self, topo64):
        with pytest.raises(ValueError):
            topo64.cluster_cores(4)


class TestRouting:
    def test_xy_route_endpoints(self, topo64):
        path = topo64.xy_route(0, 63)
        assert path[0] == 0 and path[-1] == 63

    def test_xy_route_length_is_manhattan(self, topo64):
        assert len(topo64.xy_route(0, 63)) - 1 == topo64.manhattan(0, 63)

    def test_xy_route_goes_x_first(self, topo64):
        path = topo64.xy_route(0, 63)  # (0,0) -> (7,7)
        xs = [topo64.coords(n)[0] for n in path]
        ys = [topo64.coords(n)[1] for n in path]
        # first 7 steps move x, remaining move y
        assert xs[:8] == list(range(8))
        assert all(y == 0 for y in ys[:8])

    def test_route_to_self(self, topo64):
        assert topo64.xy_route(5, 5) == (5,)

    @given(st.integers(0, 63), st.integers(0, 63))
    def test_route_steps_are_neighbors(self, a, b):
        topo = MeshTopology(width=8, cluster_width=4)
        path = topo.xy_route(a, b)
        for u, v in zip(path, path[1:]):
            assert topo.manhattan(u, v) == 1


class TestBroadcastTree:
    def test_tree_spans_all_nodes(self, topo64):
        tree = topo64.broadcast_tree(27)
        assert set(tree.keys()) == set(range(64))

    def test_tree_edges_count(self, topo64):
        """A spanning tree over N nodes has N-1 edges."""
        tree = topo64.broadcast_tree(0)
        n_edges = sum(len(ch) for ch in tree.values())
        assert n_edges == 63

    def test_tree_edges_are_mesh_links(self, topo64):
        tree = topo64.broadcast_tree(35)
        for parent, children in tree.items():
            for child in children:
                assert topo64.manhattan(parent, child) == 1

    @given(src=st.integers(0, 63))
    def test_every_node_has_one_parent(self, src):
        topo = MeshTopology(width=8, cluster_width=4)
        tree = topo.broadcast_tree(src)
        parents: dict[int, int] = {}
        for parent, children in tree.items():
            for child in children:
                assert child not in parents, "node has two parents"
                parents[child] = parent
        assert set(parents) == set(range(64)) - {src}


class TestValidation:
    def test_width_multiple_of_cluster(self):
        with pytest.raises(ValueError):
            MeshTopology(width=10, cluster_width=4)

    def test_positive_dims(self):
        with pytest.raises(ValueError):
            MeshTopology(width=0)
        with pytest.raises(ValueError):
            MeshTopology(width=8, cluster_width=0)

    def test_hop_length(self):
        assert ATAC_1024.hop_length_mm(20.0) == pytest.approx(0.625)
        with pytest.raises(ValueError):
            ATAC_1024.hop_length_mm(0.0)
