"""Batched vs reference broadcast delivery: bit-for-bit equivalence.

The fast path delivers a broadcast with one event per distinct arrival
time (dispatching to all member caches inline); the reference path
schedules one event per receiving core.  DESIGN.md section 9 argues
they are observably identical because the batched dispatch preserves
the exact ``(time, seq)`` order the per-core events would have had.
This suite is that argument's proof obligation: every app x network
pair must produce a byte-identical :class:`RunResult` either way.
"""

import pytest

from repro.experiments.runspec import RunSpec
from repro.sim.config import NETWORK_CHOICES
from repro.sim.system import ManycoreSystem
from repro.workloads.splash import APP_ORDER, APP_PROFILES, generate_traces

#: Test scale: big enough to exercise contention, barriers and (for the
#: broadcast-capable fabrics) INV_BCAST fan-out; small enough that the
#: full 8 x 4 matrix stays in tens of seconds.
MESH_WIDTH = 8
SCALE = 0.1


def run_result_dict(spec: RunSpec, batch_broadcasts: bool) -> dict:
    """Execute ``spec`` through an explicitly-constructed system."""
    config = spec.config()
    system = ManycoreSystem(config, batch_broadcasts=batch_broadcasts)
    traces = generate_traces(
        APP_PROFILES[spec.app],
        system.topology,
        l2_lines=config.l2_sets * config.l2_ways,
        scale=spec.scale,
        seed=spec.seed,
    )
    return system.run(traces, app=spec.app).to_dict()


@pytest.mark.parametrize("network", NETWORK_CHOICES)
@pytest.mark.parametrize("app", APP_ORDER)
def test_batched_equals_reference(app, network):
    spec = RunSpec(app=app, network=network, mesh_width=MESH_WIDTH, scale=SCALE)
    batched = run_result_dict(spec, batch_broadcasts=True)
    reference = run_result_dict(spec, batch_broadcasts=False)
    assert batched == reference


def test_default_is_batched():
    spec = RunSpec(app="barnes", mesh_width=MESH_WIDTH, scale=SCALE)
    assert ManycoreSystem(spec.config()).batch_broadcasts is True


def test_runspec_execute_matches_explicit_batched_system():
    """`RunSpec.execute()` (the cached-store path) uses the fast path."""
    spec = RunSpec(
        app="barnes", network="atac+", mesh_width=MESH_WIDTH, scale=SCALE
    )
    assert spec.execute().to_dict() == run_result_dict(
        spec, batch_broadcasts=True
    )
