"""Pin exact driver outputs at a reduced, fast scale.

The shape tests in ``test_paper_claims.py`` tolerate drift; this module
does not.  It regenerates three paper figures' driver outputs at
mesh width 8 / scale 0.3 (seconds, not minutes) and compares them
field-by-field against a checked-in golden file:

* integers (completion cycles) must match **exactly** -- the simulator
  is deterministic, so any difference is a behaviour change;
* floats must match to ``REL_TOL`` -- they are deterministic too, but
  a loose knot of tolerance keeps the pin robust to harmless
  float-summation reassociation (e.g. dict ordering in energy sums).

When a behaviour change is *intended*, regenerate the golden file and
review the diff like any other code change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/integration/test_golden_numbers.py

The runs bypass the on-disk result store (``REPRO_CACHE=0``): a stale
cache entry would make this test vacuously green exactly when the
simulator's behaviour changed without a schema bump.
"""

import json
import math
import os
from pathlib import Path

import pytest

GOLDEN_PATH = Path(__file__).parent / "golden" / "w8_scale03.json"

MESH_WIDTH = 8
SCALE = 0.3

#: Exact-match tolerance for floats (see module docstring).
REL_TOL = 1e-9
ABS_TOL = 1e-12

FIG4_APPS = ("dynamic_graph", "radix", "barnes", "lu_contig")
FIG7_APPS = ("radix", "barnes")
FIG14_APPS = ("radix", "barnes", "fmm")


@pytest.fixture(scope="module")
def computed():
    from repro.experiments.fig04_05_06 import run_fig4
    from repro.experiments.fig07_08_09 import run_fig7
    from repro.experiments.fig14_15_16 import run_fig14

    saved = os.environ.get("REPRO_CACHE")
    os.environ["REPRO_CACHE"] = "0"
    try:
        doc = {
            "fig04_runtime": run_fig4(
                FIG4_APPS, mesh_width=MESH_WIDTH, scale=SCALE, jobs=1
            ),
            "fig07_energy": run_fig7(
                FIG7_APPS, mesh_width=MESH_WIDTH, scale=SCALE, jobs=1
            ),
            "fig14_edp": run_fig14(
                FIG14_APPS, mesh_width=MESH_WIDTH, scale=SCALE, jobs=1
            ),
        }
    finally:
        if saved is None:
            os.environ.pop("REPRO_CACHE", None)
        else:
            os.environ["REPRO_CACHE"] = saved
    # JSON round-trip so computed and golden compare like-for-like
    # (tuples become lists, dict keys become strings)
    doc = json.loads(json.dumps(doc))
    if os.environ.get("REPRO_REGEN_GOLDEN") == "1":
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


@pytest.fixture(scope="module")
def golden():
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"golden file {GOLDEN_PATH} is missing; generate it with "
            "REPRO_REGEN_GOLDEN=1 and commit it"
        )
    return json.loads(GOLDEN_PATH.read_text())


def _diffs(got, want, path=""):
    """Recursive comparison; returns human-readable mismatch strings."""
    if isinstance(want, dict):
        if not isinstance(got, dict):
            return [f"{path}: expected object, got {type(got).__name__}"]
        out = []
        for key in sorted(set(got) | set(want)):
            if key not in want:
                out.append(f"{path}.{key}: unexpected key")
            elif key not in got:
                out.append(f"{path}.{key}: missing key")
            else:
                out.extend(_diffs(got[key], want[key], f"{path}.{key}"))
        return out
    if isinstance(want, list):
        if not isinstance(got, list) or len(got) != len(want):
            return [f"{path}: length/type mismatch"]
        out = []
        for i, (g, w) in enumerate(zip(got, want)):
            out.extend(_diffs(g, w, f"{path}[{i}]"))
        return out
    if isinstance(want, bool) or isinstance(got, bool):
        return [] if got == want else [f"{path}: {got!r} != {want!r}"]
    if isinstance(want, int) and isinstance(got, int):
        return [] if got == want else [f"{path}: {got} != {want} (exact)"]
    if isinstance(want, (int, float)) and isinstance(got, (int, float)):
        if math.isclose(got, want, rel_tol=REL_TOL, abs_tol=ABS_TOL):
            return []
        return [f"{path}: {got} != {want} (rel_tol={REL_TOL})"]
    return [] if got == want else [f"{path}: {got!r} != {want!r}"]


@pytest.mark.parametrize("figure", ["fig04_runtime", "fig07_energy", "fig14_edp"])
def test_driver_output_matches_golden(computed, golden, figure):
    assert figure in golden, f"golden file lacks {figure}; regenerate it"
    mismatches = _diffs(computed[figure], golden[figure], figure)
    assert not mismatches, (
        "golden mismatch (intended? regenerate with REPRO_REGEN_GOLDEN=1 "
        "and commit):\n  " + "\n  ".join(mismatches[:20])
    )


def test_golden_file_inventory(golden):
    """The golden file covers exactly the pinned figures and scales."""
    assert sorted(golden) == ["fig04_runtime", "fig07_energy", "fig14_edp"]
    assert [row["app"] for row in golden["fig04_runtime"]] == list(FIG4_APPS)
    assert [row["app"] for row in golden["fig14_edp"]] == list(FIG14_APPS)
