"""Smoke tests: the examples' code paths at miniature scale.

The example scripts run at 256 cores (tens of seconds); these tests
exercise the same library calls at 64 cores so a broken example import
or API drift fails the suite quickly.
"""

import importlib
import pathlib

from repro.energy.accounting import EnergyModel
from repro.sim.config import SystemConfig
from repro.sim.system import ManycoreSystem
from repro.tech.caches import directory_cache
from repro.tech.photonics import OnetGeometry
from repro.tech.scenarios import ALL_SCENARIOS
from repro.workloads.splash import APP_PROFILES, generate_traces

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


class TestExampleFilesPresent:
    def test_at_least_four_runnable_examples(self):
        scripts = sorted(EXAMPLES.glob("*.py"))
        names = {s.name for s in scripts}
        assert {
            "quickstart.py",
            "network_design_space.py",
            "technology_roadmap.py",
            "coherence_study.py",
        } <= names

    def test_examples_compile(self):
        import py_compile

        for script in EXAMPLES.glob("*.py"):
            py_compile.compile(str(script), doraise=True)

    def test_examples_have_docstrings_and_main(self):
        for script in EXAMPLES.glob("*.py"):
            text = script.read_text()
            assert text.lstrip().startswith(('"""', "#!")), script.name
            assert "def main(" in text, script.name
            assert '__main__' in text, script.name


class TestQuickstartPath:
    def test_two_network_comparison(self):
        """The quickstart's core flow at 64 cores."""
        out = {}
        for net in ("atac+", "emesh-bcast"):
            cfg = SystemConfig(network=net).scaled(8)
            system = ManycoreSystem(cfg)
            traces = generate_traces(
                APP_PROFILES["barnes"], system.topology,
                l2_lines=cfg.l2_sets * cfg.l2_ways, scale=0.2,
            )
            res = system.run(traces, app="barnes")
            out[net] = (res, EnergyModel(cfg).evaluate(res))
        (r_a, e_a), (r_m, e_m) = out["atac+"], out["emesh-bcast"]
        assert r_a.completion_cycles > 0 and r_m.completion_cycles > 0
        assert e_a.edp() > 0 and e_m.edp() > 0


class TestTechnologyRoadmapPath:
    def test_scenario_table_from_one_run(self):
        cfg = SystemConfig(network="atac+", rthres=6).scaled(8)
        system = ManycoreSystem(cfg)
        traces = generate_traces(
            APP_PROFILES["dynamic_graph"], system.topology,
            l2_lines=cfg.l2_sets * cfg.l2_ways, scale=0.2,
        )
        res = system.run(traces, app="dynamic_graph")
        model = EnergyModel(cfg)
        totals = [model.evaluate(res, sc).network_energy_j for sc in ALL_SCENARIOS]
        assert totals == sorted(totals)  # the feature ladder


class TestCoherenceStudyPath:
    def test_directory_area_table(self):
        areas = [
            directory_cache(4096, k, n_cores=1024).area_mm2()
            for k in (4, 8, 16, 32, 1024)
        ]
        assert areas == sorted(areas)


class TestDesignSpacePath:
    def test_flit_width_area_table(self):
        areas = {
            w: OnetGeometry(data_width_bits=w).photonics_area_mm2()
            for w in (16, 64, 256)
        }
        assert areas[16] < areas[64] < areas[256]
