"""End-to-end integration tests for the paper's qualitative claims.

These run the whole stack (workload -> cores -> coherence -> network ->
energy) at reduced scale and assert the *shape* of each headline
result.  Benchmark-scale numbers live in benchmarks/ and EXPERIMENTS.md.
"""

import pytest

from repro.energy.accounting import EnergyModel
from repro.sim.config import SystemConfig
from repro.sim.system import ManycoreSystem
from repro.tech.scenarios import SCENARIO_ATACP
from repro.workloads.splash import APP_PROFILES, generate_traces


def run(app: str, network: str, mesh_width: int = 16, scale: float = 0.35,
        **cfg_kw):
    cfg = SystemConfig(network=network, **cfg_kw).scaled(mesh_width)
    system = ManycoreSystem(cfg)
    traces = generate_traces(
        APP_PROFILES[app], system.topology,
        l2_lines=cfg.l2_sets * cfg.l2_ways, scale=scale,
    )
    return cfg, system.run(traces, app=app)


@pytest.fixture(scope="module")
def barnes_by_network():
    return {net: run("barnes", net) for net in
            ("atac+", "emesh-bcast", "emesh-pure")}


class TestFigure4Shape:
    def test_atacp_fastest_on_broadcast_heavy_app(self, barnes_by_network):
        cycles = {n: r.completion_cycles for n, (_, r) in barnes_by_network.items()}
        assert cycles["atac+"] <= cycles["emesh-bcast"]
        assert cycles["emesh-bcast"] < cycles["emesh-pure"]

    def test_emesh_pure_collapses_on_broadcasts(self, barnes_by_network):
        """'without hardware broadcast support, EMesh-Pure ... severely
        degrad[es] performance for broadcast-heavy applications'."""
        cycles = {n: r.completion_cycles for n, (_, r) in barnes_by_network.items()}
        assert cycles["emesh-pure"] > 1.5 * cycles["atac+"]

    def test_low_sharing_app_insensitive_to_broadcast_support(self):
        _, pure = run("lu_contig", "emesh-pure")
        _, bcast = run("lu_contig", "emesh-bcast")
        assert pure.completion_cycles == pytest.approx(
            bcast.completion_cycles, rel=0.05
        )


class TestFigure8Shape:
    def test_edp_ordering(self, barnes_by_network):
        edp = {}
        for net, (cfg, res) in barnes_by_network.items():
            b = EnergyModel(cfg).evaluate(res, SCENARIO_ATACP)
            edp[net] = b.edp()
        assert edp["atac+"] <= edp["emesh-bcast"] < edp["emesh-pure"]

    def test_energy_savings_come_from_runtime(self, barnes_by_network):
        """The headline insight: most of ATAC+'s energy win over the
        meshes is *time-proportional* (NDD) energy avoided by finishing
        sooner, not lower network energy per event."""
        (cfg_a, res_a) = barnes_by_network["atac+"]
        (cfg_p, res_p) = barnes_by_network["emesh-pure"]
        e_a = EnergyModel(cfg_a).evaluate(res_a)
        e_p = EnergyModel(cfg_p).evaluate(res_p)
        cache_delta = e_p.cache_energy_j - e_a.cache_energy_j
        assert cache_delta > 0
        time_ratio = res_p.runtime_s / res_a.runtime_s
        cache_ratio = e_p.cache_energy_j / e_a.cache_energy_j
        # cache energy tracks runtime (leakage-dominated NDD)
        assert cache_ratio == pytest.approx(time_ratio, rel=0.35)


class TestSequenceNumbersInAction:
    def test_out_of_order_machinery_exercised(self):
        """Under ATAC+ distance routing, broadcasts (ONet) and unicasts
        (often ENet) take different routes; the run must exercise the
        Section IV-C1 buffering at least somewhere, and still complete
        correctly."""
        totals = {"buffered": 0, "early": 0}
        for seed_app in ("barnes", "dynamic_graph", "fmm"):
            cfg, res = run(seed_app, "atac+", scale=0.5)
            totals["buffered"] += res.cache_counters.bcast_invs_buffered
            totals["early"] += res.cache_counters.unicasts_buffered_early
        assert totals["buffered"] + totals["early"] > 0

    def test_disabling_sequencing_still_runs_on_mesh(self):
        """Meshes deliver in FIFO order per pair, so sequencing off is
        safe there (the mechanism exists for the hybrid network)."""
        cfg, res = run("barnes", "emesh-bcast", sequencing=False)
        assert res.completion_cycles > 0


class TestProtocolComparisonShape:
    def test_dirkb_slower_on_broadcast_heavy_app(self):
        """Fig 14: Dir_kB's whole-chip ack storms cost performance."""
        from repro.coherence.directory import Protocol

        _, ack = run("barnes", "atac+", protocol=Protocol.ACKWISE)
        _, dkb = run("barnes", "atac+", protocol=Protocol.DIRKB)
        assert dkb.completion_cycles > ack.completion_cycles

    def test_dirkb_penalty_worse_on_mesh(self):
        """Fig 14: 'The performance degradation is felt to a greater
        extent on the EMesh-BCast network.'"""
        from repro.coherence.directory import Protocol

        _, a_ack = run("barnes", "atac+", protocol=Protocol.ACKWISE)
        _, a_dkb = run("barnes", "atac+", protocol=Protocol.DIRKB)
        _, m_ack = run("barnes", "emesh-bcast", protocol=Protocol.ACKWISE)
        _, m_dkb = run("barnes", "emesh-bcast", protocol=Protocol.DIRKB)
        atac_penalty = a_dkb.completion_cycles / a_ack.completion_cycles
        mesh_penalty = m_dkb.completion_cycles / m_ack.completion_cycles
        assert mesh_penalty > atac_penalty * 0.95  # at least comparable


class TestSharerSweepShape:
    def test_runtime_insensitive_to_k(self):
        """Fig 15: 'little runtime variation from 4 to 1024 sharers'."""
        cycles = []
        for k in (4, 16, 1024):
            _, res = run("fmm", "atac+", hardware_sharers=k)
            cycles.append(res.completion_cycles)
        spread = (max(cycles) - min(cycles)) / min(cycles)
        assert spread < 0.30

    def test_energy_grows_with_k(self):
        """Fig 16: energy grows (directory-driven) with k."""
        energies = []
        for k in (4, 1024):
            cfg, res = run("fmm", "atac+", hardware_sharers=k)
            energies.append(EnergyModel(cfg).evaluate(res).chip_energy_j)
        # at this small, traffic-dense scale the directory's share is
        # diluted; the benchmark-scale Fig 16 run shows the full ~2x
        assert energies[1] > 1.1 * energies[0]


class TestTableVShape:
    def test_link_utilization_modest(self):
        """Table V: links idle most of the time (6-29% utilization)."""
        for app in ("barnes", "lu_contig"):
            _, res = run(app, "atac+")
            assert 0.0 <= res.onet_utilization < 0.5

    def test_broadcast_heavy_app_has_low_unicast_ratio(self):
        _, barnes = run("barnes", "atac+")
        _, ocean = run("ocean_non_contig", "atac+")
        assert barnes.unicasts_per_broadcast < ocean.unicasts_per_broadcast


class TestStarNetVsBNet:
    def test_same_performance_different_energy(self):
        """Section IV-B: StarNet == BNet performance; unicast-heavy apps
        save energy with the StarNet."""
        cfg_s = SystemConfig(network="atac+", rthres=0, receive_net="starnet").scaled(16)
        cfg_b = SystemConfig(network="atac+", rthres=0, receive_net="bnet").scaled(16)
        out = {}
        for name, cfg in (("starnet", cfg_s), ("bnet", cfg_b)):
            system = ManycoreSystem(cfg)
            traces = generate_traces(
                APP_PROFILES["ocean_contig"], system.topology,
                l2_lines=cfg.l2_sets * cfg.l2_ways, scale=0.35,
            )
            res = system.run(traces, app="ocean_contig")
            out[name] = (cfg, res)
        (s_cfg, s_res), (b_cfg, b_res) = out["starnet"], out["bnet"]
        assert s_res.completion_cycles == b_res.completion_cycles
        e_s = EnergyModel(s_cfg).evaluate(s_res)["receive_net"]
        e_b = EnergyModel(b_cfg).evaluate(b_res)["receive_net"]
        assert e_s < e_b
