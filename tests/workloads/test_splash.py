"""Tests for the SPLASH-2 / dynamic-graph application models.

The structural tests run on raw traces; the behavioural tests run small
full-system simulations and check the paper's per-application
*orderings* (Figures 5-6, Table V).
"""

import pytest

from repro.network.topology import MeshTopology
from repro.sim.config import SystemConfig
from repro.sim.system import ManycoreSystem
from repro.workloads.splash import APP_ORDER, APP_PROFILES, AppProfile, generate_traces
from repro.workloads.trace import BarrierOp, MemoryOp


@pytest.fixture(scope="module")
def small_results():
    """One small run per app, shared by the ordering tests."""
    cfg = SystemConfig(network="atac+", rthres=8).scaled(8)
    l2_lines = cfg.l2_sets * cfg.l2_ways
    results = {}
    for app in APP_ORDER:
        system = ManycoreSystem(cfg)
        traces = generate_traces(
            APP_PROFILES[app], system.topology, l2_lines=l2_lines, scale=0.4
        )
        results[app] = system.run(traces, app=app)
    return results


class TestProfiles:
    def test_all_eight_apps_present(self):
        assert set(APP_ORDER) == set(APP_PROFILES)
        assert len(APP_ORDER) == 8

    def test_wide_degree_exceeds_k4(self):
        """Wide sharing must overflow ACKwise_4's pointers to broadcast."""
        for p in APP_PROFILES.values():
            assert p.wide_degree > 4

    def test_group_size_within_k4(self):
        """Group sharing must stay unicast under ACKwise_4."""
        for p in APP_PROFILES.values():
            assert p.group_size <= 4

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            AppProfile(
                name="bad", label="bad", mem_ops_per_core=10, compute_per_mem=2,
                p_private=0.7, p_wide=0.6,  # sums > 1
                private_ws_frac=0.5, private_cold_frac=0.1,
                wide_degree=32, wide_ws_lines=8, wide_writes_per_phase=0.1,
                group_size=4, group_ws_lines=8, group_write_frac=0.2,
            )
        with pytest.raises(ValueError):
            AppProfile(
                name="bad", label="bad", mem_ops_per_core=10, compute_per_mem=2,
                p_private=0.5, p_wide=0.3,
                private_ws_frac=0.0, private_cold_frac=0.1,
                wide_degree=32, wide_ws_lines=8, wide_writes_per_phase=0.1,
                group_size=4, group_ws_lines=8, group_write_frac=0.2,
            )


class TestTraceGeneration:
    def test_one_trace_per_compute_core(self):
        topo = MeshTopology(width=8, cluster_width=4)
        traces = generate_traces(APP_PROFILES["barnes"], topo, l2_lines=64, scale=0.2)
        assert set(traces) == set(topo.compute_cores())

    def test_deterministic_in_seed(self):
        topo = MeshTopology(width=8, cluster_width=4)
        a = generate_traces(APP_PROFILES["radix"], topo, l2_lines=64, scale=0.2, seed=9)
        b = generate_traces(APP_PROFILES["radix"], topo, l2_lines=64, scale=0.2, seed=9)
        core = topo.compute_cores()[3]
        assert a[core].ops == b[core].ops

    def test_scale_controls_length(self):
        topo = MeshTopology(width=8, cluster_width=4)
        short = generate_traces(APP_PROFILES["fmm"], topo, l2_lines=64, scale=0.2)
        long_ = generate_traces(APP_PROFILES["fmm"], topo, l2_lines=64, scale=1.0)
        core = topo.compute_cores()[0]
        assert long_[core].n_memory_ops > 2 * short[core].n_memory_ops

    def test_barriers_present_and_ordered(self):
        topo = MeshTopology(width=8, cluster_width=4)
        traces = generate_traces(APP_PROFILES["barnes"], topo, l2_lines=64, scale=0.5)
        for trace in traces.values():
            ids = [op.barrier_id for op in trace.ops if isinstance(op, BarrierOp)]
            assert ids == sorted(ids)
            assert len(ids) == APP_PROFILES["barnes"].n_phases

    def test_private_regions_disjoint(self):
        topo = MeshTopology(width=8, cluster_width=4)
        traces = generate_traces(APP_PROFILES["radix"], topo, l2_lines=64, scale=0.3)
        from repro.workloads.splash import _PRIVATE_BASE, _PRIVATE_STRIDE

        for core, trace in traces.items():
            for op in trace.ops:
                if isinstance(op, MemoryOp) and op.address >= _PRIVATE_BASE:
                    assert (op.address - _PRIVATE_BASE) // _PRIVATE_STRIDE == core

    def test_wide_writes_only_at_phase_boundaries(self):
        """Mid-phase wide references are read-only; writes happen in the
        rebuild step right after a barrier."""
        from repro.workloads.splash import _GROUP_BASE, _WIDE_BASE

        topo = MeshTopology(width=8, cluster_width=4)
        traces = generate_traces(APP_PROFILES["barnes"], topo, l2_lines=64, scale=0.5)
        for trace in traces.values():
            since_barrier = 99
            for op in trace.ops:
                if isinstance(op, BarrierOp):
                    since_barrier = 0
                    continue
                if isinstance(op, MemoryOp):
                    is_wide = _WIDE_BASE <= op.address < _GROUP_BASE
                    if is_wide and op.is_write:
                        assert since_barrier <= 2 * APP_PROFILES[
                            "barnes"
                        ].wide_writes_per_phase + 2
                since_barrier += 1

    def test_rejects_bad_args(self):
        topo = MeshTopology(width=8, cluster_width=4)
        with pytest.raises(ValueError):
            generate_traces(APP_PROFILES["fmm"], topo, scale=0.0)
        with pytest.raises(ValueError):
            generate_traces(APP_PROFILES["fmm"], topo, l2_lines=4)


class TestPaperOrderings:
    """The calibrated signatures (small scale, so orderings not values)."""

    def test_broadcast_heavy_apps(self, small_results):
        """barnes/fmm/dynamic_graph have the highest receiver-side
        broadcast fractions (Figure 5's shape)."""
        frac = {
            a: r.receiver_broadcast_fraction for a, r in small_results.items()
        }
        heavy = {"barnes", "fmm", "dynamic_graph"}
        light = set(APP_ORDER) - heavy
        assert min(frac[a] for a in heavy) > max(frac[a] for a in light)

    def test_lu_contig_lightest_load(self, small_results):
        """lu_contig is among the lightest loads (Figure 6).  At this
        tiny test scale cold-start noise can swap it with fmm/barnes,
        so assert bottom-2 membership; the benchmark-scale run asserts
        the strict minimum."""
        loads = {a: r.offered_load for a, r in small_results.items()}
        lightest_three = sorted(loads, key=loads.get)[:3]
        assert "lu_contig" in lightest_three

    def test_ocean_non_contig_heaviest_load(self, small_results):
        loads = {a: r.offered_load for a, r in small_results.items()}
        assert max(loads, key=loads.get) == "ocean_non_contig"

    def test_unicast_per_broadcast_ordering(self, small_results):
        """Table V's shape: barnes/fmm the fewest unicasts per
        broadcast, lu/ocean non-contig the most."""
        upb = {a: r.unicasts_per_broadcast for a, r in small_results.items()}
        assert upb["barnes"] < upb["ocean_contig"]
        assert upb["fmm"] < upb["ocean_contig"]
        assert upb["ocean_contig"] < upb["ocean_non_contig"]
        assert upb["dynamic_graph"] < upb["radix"]

    def test_all_apps_complete(self, small_results):
        for app, r in small_results.items():
            assert r.completion_cycles > 0, app
            assert r.total_instructions > 0, app

    def test_broadcasts_emerge_from_protocol(self, small_results):
        """Broadcast invalidations must be generated by the directory
        (sharer overflow), not scripted."""
        assert small_results["barnes"].dir_inv_broadcast > 0
        assert small_results["barnes"].network_stats.onet_broadcasts > 0
