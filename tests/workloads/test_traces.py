"""Unit tests for trace types and the synthetic traffic generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.mesh import EMeshPure
from repro.network.topology import MeshTopology
from repro.network.types import BROADCAST
from repro.workloads.synthetic import SyntheticTraffic, run_load_point
from repro.workloads.trace import BarrierOp, ComputeOp, CoreTrace, MemoryOp


class TestTraceOps:
    def test_compute_op_validation(self):
        with pytest.raises(ValueError):
            ComputeOp(0)

    def test_memory_op_validation(self):
        with pytest.raises(ValueError):
            MemoryOp(-1)

    def test_barrier_op_validation(self):
        with pytest.raises(ValueError):
            BarrierOp(-1)

    def test_trace_instruction_count(self):
        t = CoreTrace(0, [ComputeOp(10), MemoryOp(5), BarrierOp(0), MemoryOp(6)])
        assert t.n_instructions == 13
        assert t.n_memory_ops == 2
        assert t.n_barriers == 1

    def test_trace_core_validation(self):
        with pytest.raises(ValueError):
            CoreTrace(-1, [])


class TestSyntheticTraffic:
    def test_deterministic(self):
        a = SyntheticTraffic(64, load=0.1, seed=3).generate(100)
        b = SyntheticTraffic(64, load=0.1, seed=3).generate(100)
        assert [(p.src, p.dst, p.time) for p in a] == [
            (p.src, p.dst, p.time) for p in b
        ]

    def test_seed_changes_traffic(self):
        a = SyntheticTraffic(64, load=0.1, seed=3).generate(200)
        b = SyntheticTraffic(64, load=0.1, seed=4).generate(200)
        assert [(p.src, p.dst, p.time) for p in a] != [
            (p.src, p.dst, p.time) for p in b
        ]

    def test_time_ordered(self):
        pkts = SyntheticTraffic(64, load=0.2, seed=1).generate(200)
        times = [p.time for p in pkts]
        assert times == sorted(times)

    def test_no_self_sends(self):
        pkts = SyntheticTraffic(16, load=0.5, seed=2).generate(300)
        for p in pkts:
            if p.dst != BROADCAST:
                assert p.dst != p.src

    def test_load_approximately_met(self):
        n_cores, cycles, load = 64, 2000, 0.2
        pkts = SyntheticTraffic(n_cores, load=load, seed=5).generate(cycles)
        flits = sum(p.n_flits(64) for p in pkts)
        measured = flits / (cycles * n_cores)
        assert measured == pytest.approx(load, rel=0.15)

    def test_broadcast_fraction(self):
        pkts = SyntheticTraffic(
            64, load=0.3, broadcast_fraction=0.1, seed=6
        ).generate(2000)
        frac = sum(1 for p in pkts if p.dst == BROADCAST) / len(pkts)
        assert frac == pytest.approx(0.1, abs=0.02)

    def test_zero_broadcast_fraction(self):
        pkts = SyntheticTraffic(
            64, load=0.3, broadcast_fraction=0.0, seed=6
        ).generate(500)
        assert all(p.dst != BROADCAST for p in pkts)

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticTraffic(1, load=0.1)
        with pytest.raises(ValueError):
            SyntheticTraffic(16, load=0.0)
        with pytest.raises(ValueError):
            SyntheticTraffic(16, load=0.1, broadcast_fraction=1.5)
        with pytest.raises(ValueError):
            SyntheticTraffic(16, load=0.1).generate(0)


class TestRunLoadPoint:
    def test_low_load_near_zero_load_latency(self):
        topo = MeshTopology(width=8, cluster_width=4)
        net = EMeshPure(topo)
        traffic = SyntheticTraffic(64, load=0.01, broadcast_fraction=0.0, seed=1)
        pt = run_load_point(net, traffic, cycles=600, warmup_cycles=100)
        # avg distance ~5.3 hops -> ~12-14 cycles zero-load
        assert 5 < pt.mean_latency < 30
        assert not pt.saturated

    def test_overload_saturates(self):
        topo = MeshTopology(width=8, cluster_width=4)
        net = EMeshPure(topo)
        traffic = SyntheticTraffic(64, load=0.9, broadcast_fraction=0.0, seed=1)
        pt = run_load_point(net, traffic, cycles=800, warmup_cycles=100)
        assert pt.saturated
        assert pt.mean_latency > 100

    def test_latency_monotonic_in_load(self):
        topo = MeshTopology(width=8, cluster_width=4)
        latencies = []
        for load in (0.02, 0.15, 0.5):
            net = EMeshPure(topo)
            traffic = SyntheticTraffic(64, load=load, broadcast_fraction=0.0, seed=1)
            pt = run_load_point(net, traffic, cycles=700, warmup_cycles=100)
            latencies.append(pt.mean_latency)
        assert latencies == sorted(latencies)

    def test_warmup_validation(self):
        topo = MeshTopology(width=8, cluster_width=4)
        net = EMeshPure(topo)
        traffic = SyntheticTraffic(64, load=0.1)
        with pytest.raises(ValueError):
            run_load_point(net, traffic, cycles=100, warmup_cycles=100)
