"""Protocol-level tests: MSI transitions, ACKwise vs Dir_kB, races.

Each test drives individual accesses through a 16-core chip
(tests/coherence/helpers.py) and inspects the directory and cache state
between accesses.
"""

import pytest

from repro.coherence.directory import DirState, Protocol
from tests.coherence.helpers import (
    CacheState,
    addr_homed_at,
    dir_entry,
    l2_state,
    read,
    tiny_system,
    write,
)


class TestBasicMSI:
    def test_read_installs_shared(self):
        s = tiny_system()
        core = s.compute_cores[0]
        read(s, core, 100)
        assert l2_state(s, core, 100) is CacheState.SHARED
        e = dir_entry(s, 100)
        assert e.state is DirState.SHARED
        assert e.sharers == [core]

    def test_write_installs_modified(self):
        s = tiny_system()
        core = s.compute_cores[0]
        write(s, core, 100)
        assert l2_state(s, core, 100) is CacheState.MODIFIED
        e = dir_entry(s, 100)
        assert e.state is DirState.MODIFIED
        assert e.owner == core

    def test_second_reader_added_to_sharers(self):
        s = tiny_system()
        a, b = s.compute_cores[0], s.compute_cores[1]
        read(s, a, 100)
        read(s, b, 100)
        assert set(dir_entry(s, 100).sharers) == {a, b}

    def test_read_hit_after_fill(self):
        s = tiny_system()
        core = s.compute_cores[0]
        t1 = read(s, core, 100)
        t_start = s.eventq.now
        t2 = read(s, core, 100)
        assert t2 - t_start <= 2  # L1 hit
        assert t1 > 10            # the miss was expensive

    def test_write_hit_in_modified(self):
        s = tiny_system()
        core = s.compute_cores[0]
        write(s, core, 100)
        t_start = s.eventq.now
        t = write(s, core, 100)
        assert t - t_start <= 2


class TestInvalidation:
    def test_write_invalidates_readers_unicast(self):
        """Within-k sharers: unicast invalidations, not broadcast."""
        s = tiny_system(k=2)
        a, b, w = s.compute_cores[:3]
        read(s, a, 100)
        read(s, b, 100)
        write(s, w, 100)
        assert l2_state(s, a, 100) is CacheState.INVALID
        assert l2_state(s, b, 100) is CacheState.INVALID
        assert l2_state(s, w, 100) is CacheState.MODIFIED
        home = s.home_of(100)
        assert s.directories[home].stats.invalidations_unicast == 2
        assert s.directories[home].stats.invalidations_broadcast == 0

    def test_sharer_overflow_broadcasts(self):
        """More than k sharers -> global bit -> broadcast invalidate."""
        s = tiny_system(k=2)
        readers = s.compute_cores[:4]
        for r in readers:
            read(s, r, 100)
        e = dir_entry(s, 100)
        assert e.global_bit
        assert e.count == 4
        w = s.compute_cores[5]
        write(s, w, 100)
        home = s.home_of(100)
        assert s.directories[home].stats.invalidations_broadcast == 1
        for r in readers:
            assert l2_state(s, r, 100) is CacheState.INVALID

    def test_ackwise_acks_only_from_sharers(self):
        """ACKwise: exactly `count` acks collected for a broadcast."""
        s = tiny_system(k=2)
        for r in s.compute_cores[:3]:
            read(s, r, 100)
        home = s.home_of(100)
        before = s.directories[home].stats.acks_received
        write(s, s.compute_cores[4], 100)
        acks = s.directories[home].stats.acks_received - before
        assert acks == 3  # only the 3 true sharers

    def test_dirkb_acks_from_everyone(self):
        """Dir_kB: every compute core acknowledges the broadcast."""
        s = tiny_system(protocol=Protocol.DIRKB, k=2)
        for r in s.compute_cores[:3]:
            read(s, r, 100)
        home = s.home_of(100)
        before = s.directories[home].stats.acks_received
        write(s, s.compute_cores[4], 100)
        acks = s.directories[home].stats.acks_received - before
        assert acks == len(s.compute_cores)

    def test_upgrade_from_shared(self):
        """A sharer writing: its copy upgrades to M after invalidations."""
        s = tiny_system(k=2)
        a, b = s.compute_cores[:2]
        read(s, a, 100)
        read(s, b, 100)
        write(s, a, 100)
        assert l2_state(s, a, 100) is CacheState.MODIFIED
        assert l2_state(s, b, 100) is CacheState.INVALID
        e = dir_entry(s, 100)
        assert e.state is DirState.MODIFIED and e.owner == a


class TestOwnershipTransfer:
    def test_read_of_modified_line_demotes_owner(self):
        """SH_REQ to an M line: WB_REQ flow, both end shared."""
        s = tiny_system()
        w, r = s.compute_cores[:2]
        write(s, w, 100)
        read(s, r, 100)
        assert l2_state(s, w, 100) is CacheState.SHARED
        assert l2_state(s, r, 100) is CacheState.SHARED
        e = dir_entry(s, 100)
        assert e.state is DirState.SHARED
        assert set(e.sharers) == {w, r}

    def test_write_of_modified_line_flushes_owner(self):
        """EX_REQ to an M line: FLUSH flow, ownership moves."""
        s = tiny_system()
        w1, w2 = s.compute_cores[:2]
        write(s, w1, 100)
        write(s, w2, 100)
        assert l2_state(s, w1, 100) is CacheState.INVALID
        assert l2_state(s, w2, 100) is CacheState.MODIFIED
        assert dir_entry(s, 100).owner == w2

    def test_migratory_sharing_chain(self):
        """W1 -> W2 -> W3 write chain keeps exactly one owner."""
        s = tiny_system()
        writers = s.compute_cores[:3]
        for w in writers:
            write(s, w, 100)
        assert dir_entry(s, 100).owner == writers[-1]
        for w in writers[:-1]:
            assert l2_state(s, w, 100) is CacheState.INVALID


class TestEvictions:
    def _fill_set(self, s, core, addr, n):
        """Issue reads that all land in addr's L2 set to force eviction."""
        n_compute = len(s.compute_cores)
        l2 = s.caches[core].l2
        conflicting = []
        candidate = addr
        while len(conflicting) < n:
            candidate += n_compute  # same home, walks the sets
            if candidate % l2.n_sets == addr % l2.n_sets:
                conflicting.append(candidate)
        for c in conflicting:
            read(s, core, c)
        return conflicting

    def test_clean_eviction_notifies_home_ackwise(self):
        s = tiny_system(k=2)
        core = s.compute_cores[0]
        read(s, core, 100)
        self._fill_set(s, core, 100, s.caches[core].l2.associativity)
        assert l2_state(s, core, 100) is CacheState.INVALID
        # the home no longer lists us (entry reset once sharers empty)
        e = dir_entry(s, 100)
        assert core not in e.sharers

    def test_clean_eviction_silent_dirkb(self):
        """Dir_kB evicts silently: the home still lists the evictor."""
        s = tiny_system(protocol=Protocol.DIRKB, k=2)
        core = s.compute_cores[0]
        read(s, core, 100)
        self._fill_set(s, core, 100, s.caches[core].l2.associativity)
        assert l2_state(s, core, 100) is CacheState.INVALID
        assert core in dir_entry(s, 100).sharers  # stale, by design

    def test_dirty_eviction_writes_back(self):
        s = tiny_system()
        core = s.compute_cores[0]
        write(s, core, 100)
        self._fill_set(s, core, 100, s.caches[core].l2.associativity)
        assert l2_state(s, core, 100) is CacheState.INVALID
        e = dir_entry(s, 100)
        assert e.state is DirState.UNCACHED
        assert not s.caches[core].wb_buffer  # WB_ACK freed the buffer
        # memory received the data
        assert sum(m.writes for m in s.memctrls.values()) >= 1

    def test_line_refetchable_after_dirty_eviction(self):
        s = tiny_system()
        core = s.compute_cores[0]
        write(s, core, 100)
        self._fill_set(s, core, 100, s.caches[core].l2.associativity)
        read(s, core, 100)
        assert l2_state(s, core, 100) is CacheState.SHARED


class TestReadWriteSemantics:
    def test_data_flows_through_protocol(self):
        """Reader after writer must see the line via the coherence path
        (flush/writeback), never a stale memory copy: verified by the
        WB_REQ/FLUSH_REQ counters."""
        s = tiny_system()
        w, r = s.compute_cores[:2]
        write(s, w, 100)
        mem_reads_before = sum(m.reads for m in s.memctrls.values())
        read(s, r, 100)
        # the data came from the owner, not memory
        assert sum(m.reads for m in s.memctrls.values()) == mem_reads_before

    def test_independent_lines_dont_interact(self):
        s = tiny_system()
        a, b = s.compute_cores[:2]
        write(s, a, 100)
        write(s, b, 101)
        assert l2_state(s, a, 100) is CacheState.MODIFIED
        assert l2_state(s, b, 101) is CacheState.MODIFIED

    def test_many_lines_many_cores(self):
        """Mixed workload across all cores leaves a consistent system:
        every directory entry's sharer/owner state matches the caches."""
        s = tiny_system(k=2)
        cores = s.compute_cores
        for i, core in enumerate(cores):
            read(s, core, 200 + (i % 5))
        for i, core in enumerate(cores[:6]):
            write(s, core, 210 + i)
        # global consistency check
        for home, d in s.directories.items():
            for addr, e in d.entries.items():
                if e.state is DirState.MODIFIED:
                    assert l2_state(s, e.owner, addr) is CacheState.MODIFIED
                elif e.state is DirState.SHARED and not e.global_bit:
                    for sh in e.sharers:
                        assert l2_state(s, sh, addr) is CacheState.SHARED


class TestSingleWriterInvariant:
    def test_never_two_modified_copies(self):
        """The MSI invariant, across an adversarial access pattern."""
        s = tiny_system(k=2)
        cores = s.compute_cores
        pattern = [
            (cores[0], 50, True), (cores[1], 50, False), (cores[2], 50, True),
            (cores[3], 50, False), (cores[0], 50, False), (cores[1], 50, True),
            (cores[4], 50, True), (cores[5], 50, False),
        ]
        for core, addr, is_wr in pattern:
            if is_wr:
                write(s, core, addr)
            else:
                read(s, core, addr)
            owners = [
                c for c in cores
                if l2_state(s, c, addr) is CacheState.MODIFIED
            ]
            assert len(owners) <= 1
            if owners:
                # nobody else may even hold it shared
                holders = [
                    c for c in cores
                    if l2_state(s, c, addr) is not CacheState.INVALID
                ]
                assert holders == owners
