"""Unit tests for the Section IV-C1 sequence-number mechanism."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.coherence.sequencing import (
    SEQ_MOD,
    DirectorySequencer,
    SequenceTracker,
    seq_after,
)


class TestSeqAfter:
    def test_simple_order(self):
        assert seq_after(5, 3)
        assert not seq_after(3, 5)

    def test_equal_is_not_after(self):
        assert not seq_after(7, 7)

    def test_wraparound(self):
        """TCP-style modular comparison across the 16-bit wrap."""
        assert seq_after(2, SEQ_MOD - 3)
        assert not seq_after(SEQ_MOD - 3, 2)

    @given(base=st.integers(0, SEQ_MOD - 1), delta=st.integers(1, 2**14))
    def test_after_within_window(self, base, delta):
        later = (base + delta) % SEQ_MOD
        assert seq_after(later, base)
        assert not seq_after(base, later)


class TestDirectorySequencer:
    def test_broadcast_increments(self):
        s = DirectorySequencer(4)
        assert s.next_broadcast_seq(0) == 1
        assert s.next_broadcast_seq(0) == 2

    def test_slices_independent(self):
        s = DirectorySequencer(4)
        s.next_broadcast_seq(0)
        assert s.current_seq(1) == 0

    def test_unicast_carries_latest_broadcast(self):
        """'The unicasted coherence messages from the directory carry
        the same sequence number as the previous broadcast.'"""
        s = DirectorySequencer(2)
        s.next_broadcast_seq(1)
        s.next_broadcast_seq(1)
        assert s.current_seq(1) == 2

    def test_wraps_at_2_16(self):
        s = DirectorySequencer(1)
        s._counters[0] = SEQ_MOD - 1
        assert s.next_broadcast_seq(0) == 0

    def test_rejects_zero_slices(self):
        with pytest.raises(ValueError):
            DirectorySequencer(0)


class TestSequenceTracker:
    def test_fresh_tracker_sees_nothing_early(self):
        t = SequenceTracker(4)
        assert not t.unicast_is_early(0, 0)
        assert not t.unicast_is_early(0, None)

    def test_unicast_ahead_of_broadcast_detected(self):
        """The paper's reorder case: a unicast stamped with a broadcast
        we have not processed must be buffered."""
        t = SequenceTracker(4)
        assert t.unicast_is_early(2, 1)  # bcast #1 not yet seen

    def test_unicast_at_current_seq_not_early(self):
        t = SequenceTracker(4)
        t.note_broadcast(2, 1)
        assert not t.unicast_is_early(2, 1)

    def test_note_broadcast_is_monotonic(self):
        t = SequenceTracker(1)
        t.note_broadcast(0, 5)
        t.note_broadcast(0, 3)  # late/duplicate: must not regress
        assert t.last_seen(0) == 5

    def test_broadcast_stale_iff_reply_covers_it(self):
        """'If it did not arrive out of order, the invalidate broadcast
        is simply dropped.'  Stale <=> reply seq >= broadcast seq."""
        t = SequenceTracker(1)
        assert t.broadcast_is_stale(0, bcast_seq=4, reply_seq=4)
        assert t.broadcast_is_stale(0, bcast_seq=4, reply_seq=6)
        assert not t.broadcast_is_stale(0, bcast_seq=7, reply_seq=6)

    def test_slices_tracked_independently(self):
        t = SequenceTracker(2)
        t.note_broadcast(0, 9)
        assert t.unicast_is_early(1, 1)
        assert not t.unicast_is_early(0, 9)

    def test_rejects_zero_slices(self):
        with pytest.raises(ValueError):
            SequenceTracker(0)


class TestEndToEndOrdering:
    """Sequencer + tracker together implement per-slice FIFO recovery."""

    @settings(max_examples=30, deadline=None)
    @given(n_bcasts=st.integers(1, 20))
    def test_in_order_delivery_never_buffers(self, n_bcasts):
        seq, trk = DirectorySequencer(1), SequenceTracker(1)
        for _ in range(n_bcasts):
            s = seq.next_broadcast_seq(0)
            trk.note_broadcast(0, s)
            # a unicast sent after this broadcast, delivered after it
            assert not trk.unicast_is_early(0, seq.current_seq(0))

    def test_reordered_delivery_buffers_then_releases(self):
        seq, trk = DirectorySequencer(1), SequenceTracker(1)
        b = seq.next_broadcast_seq(0)          # directory: bcast #1 ...
        u = seq.current_seq(0)                 # ... then a unicast
        # network delivers the unicast first:
        assert trk.unicast_is_early(0, u)
        # the broadcast lands; the unicast is now releasable:
        trk.note_broadcast(0, b)
        assert not trk.unicast_is_early(0, u)
