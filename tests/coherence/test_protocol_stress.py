"""Hypothesis stress tests: random access patterns, global invariants.

These hammer the full protocol stack (both protocols, two networks)
with arbitrary interleavings and check the invariants that define
coherence:

* **single writer**: at most one MODIFIED copy of a line, and never
  alongside SHARED copies;
* **directory/cache agreement**: the home's stable state matches the
  caches (up to Dir_kB's deliberately-stale silent-eviction pointers);
* **liveness**: every access completes (no deadlock) for every
  generated pattern.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.coherence.cache import CacheState
from repro.coherence.directory import DirState, Protocol
from tests.coherence.helpers import access, l2_state, tiny_system

# (core_index, line, is_write) over a small hot line set to force races
op_strategy = st.lists(
    st.tuples(
        st.integers(0, 11),      # compute-core index (12 compute cores)
        st.integers(100, 104),   # 5 contended lines
        st.booleans(),
    ),
    min_size=1,
    max_size=40,
)


def run_pattern(system, ops):
    for core_idx, line, is_write in ops:
        core = system.compute_cores[core_idx]
        t = access(system, core, line, is_write)
        assert t >= 0


def check_invariants(system):
    cores = system.compute_cores
    lines = range(100, 105)
    for line in lines:
        owners = [c for c in cores if l2_state(system, c, line) is CacheState.MODIFIED]
        sharers = [c for c in cores if l2_state(system, c, line) is CacheState.SHARED]
        assert len(owners) <= 1, f"two owners for line {line}"
        if owners:
            assert not sharers, f"owner + sharers coexist for line {line}"
        home = system.home_of(line)
        entry = system.directories[home].entries.get(line)
        if entry is None:
            assert not owners and not sharers
            continue
        assert line not in system.directories[home].busy
        if entry.state is DirState.MODIFIED:
            assert owners == [entry.owner]
        elif entry.state is DirState.SHARED:
            assert not owners
            if system.config.protocol is Protocol.ACKWISE and not entry.global_bit:
                # ACKwise's explicit evictions keep pointers exact
                assert set(entry.sharers) == set(sharers), line
            else:
                # Dir_kB pointers may be stale (silent evictions), and
                # global-mode ACKwise only counts -- but every real
                # sharer must be covered by the home's knowledge
                if not entry.global_bit:
                    assert set(sharers) <= set(entry.sharers)
        else:
            assert not owners and not sharers


class TestRandomPatterns:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=op_strategy)
    def test_ackwise_on_mesh(self, ops):
        s = tiny_system(network="emesh-bcast", protocol=Protocol.ACKWISE, k=2)
        run_pattern(s, ops)
        check_invariants(s)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=op_strategy)
    def test_ackwise_on_atacp(self, ops):
        s = tiny_system(network="atac+", protocol=Protocol.ACKWISE, k=2,
                        rthres=3)
        run_pattern(s, ops)
        check_invariants(s)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=op_strategy)
    def test_dirkb_on_atacp(self, ops):
        s = tiny_system(network="atac+", protocol=Protocol.DIRKB, k=2,
                        rthres=3)
        run_pattern(s, ops)
        check_invariants(s)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=op_strategy, seed=st.integers(0, 3))
    def test_protocols_agree_on_final_ownership(self, ops, seed):
        """Both protocols must leave the same final owner for every
        line (they implement the same MSI semantics)."""
        del seed
        finals = []
        for proto in (Protocol.ACKWISE, Protocol.DIRKB):
            s = tiny_system(network="emesh-bcast", protocol=proto, k=2)
            run_pattern(s, ops)
            state = {}
            for line in range(100, 105):
                owners = [
                    c for c in s.compute_cores
                    if l2_state(s, c, line) is CacheState.MODIFIED
                ]
                state[line] = owners[0] if owners else None
            finals.append(state)
        assert finals[0] == finals[1]
