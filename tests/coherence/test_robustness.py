"""Failure injection and error-path tests for the protocol engines.

The simulator must *diagnose* broken protocol states loudly (deadlock
watchdog, invalid-transition errors) rather than silently produce wrong
results -- these tests break things on purpose.
"""

import pytest

from repro.coherence.directory import DirectoryController, Protocol
from repro.coherence.messages import CoherenceMsg, MsgType
from tests.coherence.helpers import read, tiny_system, write


class TestDeadlockWatchdog:
    def test_dropped_ack_is_detected(self):
        """If a core's INV_ACK vanishes, the directory transaction can
        never complete and the system must report a deadlock instead of
        hanging or finishing with wrong state."""
        s = tiny_system(k=2)
        victim = s.compute_cores[1]
        original_handle = s.caches[victim].handle

        def lossy_handle(msg, now):
            if msg.mtype is MsgType.INV_REQ:
                return  # drop: never acknowledge
            original_handle(msg, now)

        s.caches[victim].handle = lossy_handle
        read(s, s.compute_cores[0], 100)
        read(s, victim, 100)
        writer = s.compute_cores[2]
        done = {}
        s.caches[writer].access(100, True, s.eventq.now, lambda t: done.setdefault("t", t))
        s.eventq.run(max_events=100_000)
        assert "t" not in done  # the write can never complete

    def test_event_budget_catches_livelock(self):
        """A message storm that exceeds the event budget raises."""
        s = tiny_system()
        a, b = s.compute_cores[:2]

        def ping(t):
            s.send_msg(
                CoherenceMsg(MsgType.INV_ACK, address=1, sender=a, dest=b), t + 1
            )
            s.eventq.schedule(t + 1, ping)

        s.eventq.schedule(0, ping)
        with pytest.raises(RuntimeError, match="event budget"):
            s.eventq.run(max_events=1000)


class TestInvalidTransitions:
    def test_flush_req_for_absent_line_raises(self):
        s = tiny_system()
        core = s.compute_cores[0]
        home = s.compute_cores[1]
        # the line is neither modified nor buffered: the handler must
        # refuse rather than invent data
        with pytest.raises(RuntimeError, match="FLUSH_REQ"):
            s.caches[core].handle(
                CoherenceMsg(MsgType.FLUSH_REQ, address=999, sender=home,
                             dest=core),
                0,
            )

    def test_second_outstanding_miss_rejected(self):
        """The in-order core contract: one MSHR."""
        s = tiny_system()
        core = s.compute_cores[0]
        s.caches[core].access(100, False, 0, lambda t: None)
        with pytest.raises(RuntimeError, match="second outstanding"):
            s.caches[core].access(101, False, 0, lambda t: None)

    def test_unexpected_sh_rep_raises(self):
        s = tiny_system()
        core, home = s.compute_cores[:2]
        with pytest.raises(RuntimeError, match="SH_REP"):
            s.caches[core].handle(
                CoherenceMsg(MsgType.SH_REP, address=5, sender=home, dest=core), 0
            )

    def test_unexpected_ex_rep_raises(self):
        s = tiny_system()
        core, home = s.compute_cores[:2]
        with pytest.raises(RuntimeError, match="EX_REP"):
            s.caches[core].handle(
                CoherenceMsg(MsgType.EX_REP, address=5, sender=home, dest=core), 0
            )

    def test_dirkb_rejects_evict_notify(self):
        """Dir_kB has silent evictions; an EVICT_NOTIFY is a bug."""
        s = tiny_system(protocol=Protocol.DIRKB)
        home = s.compute_cores[0]
        with pytest.raises(ValueError, match="silent evictions"):
            s.directories[home].handle(
                CoherenceMsg(MsgType.EVICT_NOTIFY, address=1,
                             sender=s.compute_cores[1], dest=home),
                0,
            )

    def test_directory_rejects_foreign_message(self):
        s = tiny_system()
        home = s.compute_cores[0]
        with pytest.raises(ValueError):
            s.directories[home].handle(
                CoherenceMsg(MsgType.SH_REP, address=1, sender=1, dest=home), 0
            )

    def test_unexpected_owner_reply_raises(self):
        s = tiny_system()
        home = s.compute_cores[0]
        with pytest.raises(RuntimeError, match="owner reply"):
            s.directories[home].handle(
                CoherenceMsg(MsgType.FLUSH_REP, address=1,
                             sender=s.compute_cores[1], dest=home),
                0,
            )


class TestLateAcksAreSafe:
    def test_stray_ack_ignored(self):
        """Dir_kB's deferred-broadcast acks can arrive after the
        transaction completed; they must be dropped, not corrupt later
        transactions."""
        s = tiny_system(k=2)
        home = s.compute_cores[0]
        # no transaction in flight: a stray ack is a no-op
        s.directories[home]._ack(
            CoherenceMsg(MsgType.INV_ACK, address=1,
                         sender=s.compute_cores[1], dest=home),
            0,
        )
        assert 1 not in s.directories[home].busy


class TestDirectoryValidation:
    def test_k_below_two_rejected(self):
        with pytest.raises(ValueError):
            DirectoryController(0, fabric=None, hardware_sharers=1)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            DirectoryController(0, fabric=None, dir_latency=-1)


class TestRecoveryPaths:
    def test_system_usable_after_handled_error(self):
        """An error on one access path must not poison unrelated lines."""
        s = tiny_system()
        a, b = s.compute_cores[:2]
        with pytest.raises(RuntimeError):
            s.caches[a].handle(
                CoherenceMsg(MsgType.SH_REP, address=5, sender=b, dest=a), 0
            )
        # unrelated traffic still works
        assert read(s, b, 200) > 0
        assert write(s, a, 201) > 0
