"""Unit tests for coherence messages and the memory controller."""

import pytest

from repro.coherence.memory import MemoryController, MemoryTiming
from repro.coherence.messages import (
    CONTROL_MSG_BITS,
    DATA_BEARING,
    DATA_MSG_BITS,
    CoherenceMsg,
    MsgType,
)
from repro.sim.eventq import EventQueue


class TestMessageSizes:
    """Section IV-C1's packet-format arithmetic."""

    def test_control_message_is_88_bits(self):
        """64 addr + 20 ids + 4 type = 88 bits."""
        assert CONTROL_MSG_BITS == 64 + 20 + 4

    def test_data_message_is_600_bits(self):
        """512 data + 64 addr + 20 ids + 4 type = 600 bits."""
        assert DATA_MSG_BITS == 512 + 64 + 20 + 4

    def test_control_fits_two_flits(self):
        from repro.network.types import Packet

        pkt = Packet(src=0, dst=1, size_bits=CONTROL_MSG_BITS)
        assert pkt.n_flits(64) == 2

    def test_data_needs_ten_flits(self):
        from repro.network.types import Packet

        pkt = Packet(src=0, dst=1, size_bits=DATA_MSG_BITS)
        assert pkt.n_flits(64) == 10

    def test_sequence_number_adds_no_flits(self):
        """'adding 16 bits for the sequence number does not create any
        additional flits': 88+16=104 <= 2x64 and 600+16 <= 10x64."""
        assert CONTROL_MSG_BITS + 16 <= 2 * 64
        assert DATA_MSG_BITS + 16 <= 10 * 64

    def test_data_bearing_classification(self):
        msg = CoherenceMsg(MsgType.SH_REP, address=1, sender=0, dest=1)
        assert msg.size_bits == DATA_MSG_BITS
        req = CoherenceMsg(MsgType.SH_REQ, address=1, sender=0, dest=1)
        assert req.size_bits == CONTROL_MSG_BITS
        for mt in DATA_BEARING:
            assert CoherenceMsg(mt, 1, 0, 1).size_bits == DATA_MSG_BITS

    def test_only_inv_bcast_is_broadcast(self):
        assert CoherenceMsg(MsgType.INV_BCAST, 1, 0, -1).is_broadcast
        assert not CoherenceMsg(MsgType.INV_REQ, 1, 0, 1).is_broadcast

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            CoherenceMsg(MsgType.SH_REQ, address=-1, sender=0, dest=1)


class _FakeFabric:
    def __init__(self):
        self.sent = []

    def send_msg(self, msg, time):
        self.sent.append((msg, time))


class TestMemoryTiming:
    def test_table_i_values(self):
        t = MemoryTiming()
        assert t.latency_cycles == 100
        assert t.bytes_per_cycle == 5.0  # 5 GB/s at 1 GHz
        assert t.serialization_cycles == 13  # ceil(64/5)


class TestMemoryController:
    def test_read_reply_timing(self):
        fabric = _FakeFabric()
        mc = MemoryController(core=0, fabric=fabric)
        mc.handle(CoherenceMsg(MsgType.MEM_READ, 7, sender=3, dest=0), now=10)
        [(reply, t)] = fabric.sent
        assert reply.mtype is MsgType.MEM_DATA
        assert reply.dest == 3
        assert t == 10 + 13 + 100

    def test_write_gets_ack(self):
        fabric = _FakeFabric()
        mc = MemoryController(core=0, fabric=fabric)
        mc.handle(CoherenceMsg(MsgType.MEM_WRITE, 7, sender=3, dest=0), now=0)
        [(reply, _)] = fabric.sent
        assert reply.mtype is MsgType.MEM_WRITE_ACK

    def test_bandwidth_serializes_requests(self):
        """5 GB/s: back-to-back line requests queue on the channel."""
        fabric = _FakeFabric()
        mc = MemoryController(core=0, fabric=fabric)
        for _ in range(3):
            mc.handle(CoherenceMsg(MsgType.MEM_READ, 7, sender=3, dest=0), now=0)
        times = sorted(t for _, t in fabric.sent)
        assert times[1] - times[0] == 13
        assert times[2] - times[1] == 13

    def test_counters(self):
        fabric = _FakeFabric()
        mc = MemoryController(core=0, fabric=fabric)
        mc.handle(CoherenceMsg(MsgType.MEM_READ, 1, sender=2, dest=0), now=0)
        mc.handle(CoherenceMsg(MsgType.MEM_WRITE, 2, sender=2, dest=0), now=0)
        assert mc.reads == 1 and mc.writes == 1 and mc.accesses == 2
        assert mc.busy_cycles == 26

    def test_rejects_non_memory_messages(self):
        mc = MemoryController(core=0, fabric=_FakeFabric())
        with pytest.raises(ValueError):
            mc.handle(CoherenceMsg(MsgType.SH_REQ, 1, sender=2, dest=0), now=0)
