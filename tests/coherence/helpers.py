"""Protocol-level test harness: drive individual accesses through a
tiny chip and inspect directory / cache state between them."""

from __future__ import annotations

from repro.coherence.cache import CacheState
from repro.coherence.directory import DirState, Protocol
from repro.sim.config import SystemConfig
from repro.sim.system import ManycoreSystem


def tiny_system(
    network: str = "emesh-bcast",
    protocol: Protocol = Protocol.ACKWISE,
    k: int = 2,
    sequencing: bool = True,
    width: int = 4,
    cluster_width: int = 2,
    rthres: int = 15,
) -> ManycoreSystem:
    """A 16-core chip (4 clusters of 4, one memctrl each -> 12 compute
    cores) with small caches, for protocol unit tests."""
    config = SystemConfig(
        mesh_width=width,
        cluster_width=cluster_width,
        network=network,
        protocol=protocol,
        hardware_sharers=k,
        sequencing=sequencing,
        rthres=rthres,
        l1_sets=4,
        l1_ways=2,
        l2_sets=8,
        l2_ways=2,
    )
    return ManycoreSystem(config)


def access(system: ManycoreSystem, core: int, addr: int, is_write: bool) -> int:
    """Issue one access on a core and drain the system to quiescence.

    Returns the access completion time.  Sequential semantics: each
    access fully completes (including all coherence side-effects)
    before the next is issued, giving deterministic directory state.
    """
    done: dict[str, int] = {}
    result = system.caches[core].access(
        addr, is_write, system.eventq.now, lambda t: done.setdefault("t", t)
    )
    if result is not None:
        system.eventq.run(max_events=200_000)
        return result
    system.eventq.run(max_events=200_000)
    assert "t" in done, "access never completed (protocol deadlock)"
    return done["t"]


def read(system: ManycoreSystem, core: int, addr: int) -> int:
    return access(system, core, addr, is_write=False)


def write(system: ManycoreSystem, core: int, addr: int) -> int:
    return access(system, core, addr, is_write=True)


def addr_homed_at(system: ManycoreSystem, home_index: int, offset: int = 0) -> int:
    """A line address whose home is ``compute_cores[home_index]``."""
    n = len(system.compute_cores)
    return home_index % n + offset * n


def dir_entry(system: ManycoreSystem, addr: int):
    """The directory entry for a line (must already exist)."""
    home = system.home_of(addr)
    return system.directories[home].entries[addr]


def l2_state(system: ManycoreSystem, core: int, addr: int) -> CacheState:
    return system.caches[core].l2.lookup(addr, touch=False)


__all__ = [
    "tiny_system", "access", "read", "write", "addr_homed_at",
    "dir_entry", "l2_state", "CacheState", "DirState", "Protocol",
]
