"""Unit tests for the set-associative cache state model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.coherence.cache import CacheState, SetAssocCache


class TestBasics:
    def test_empty_lookup_is_invalid(self):
        c = SetAssocCache(4, 2)
        assert c.lookup(123) is CacheState.INVALID

    def test_install_then_lookup(self):
        c = SetAssocCache(4, 2)
        c.install(10, CacheState.SHARED)
        assert c.lookup(10) is CacheState.SHARED

    def test_install_modified(self):
        c = SetAssocCache(4, 2)
        c.install(10, CacheState.MODIFIED)
        assert c.lookup(10) is CacheState.MODIFIED

    def test_install_invalid_rejected(self):
        c = SetAssocCache(4, 2)
        with pytest.raises(ValueError):
            c.install(10, CacheState.INVALID)

    def test_capacity(self):
        c = SetAssocCache(8, 4)
        assert c.capacity_lines == 32

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            SetAssocCache(0, 2)
        with pytest.raises(ValueError):
            SetAssocCache(4, 0)


class TestReplacement:
    def test_no_eviction_below_capacity(self):
        c = SetAssocCache(1, 4)
        for line in range(4):
            assert c.install(line, CacheState.SHARED) is None

    def test_lru_eviction(self):
        c = SetAssocCache(1, 2)
        c.install(1, CacheState.SHARED)
        c.install(2, CacheState.SHARED)
        victim = c.install(3, CacheState.SHARED)
        assert victim == (1, CacheState.SHARED)

    def test_lookup_refreshes_lru(self):
        c = SetAssocCache(1, 2)
        c.install(1, CacheState.SHARED)
        c.install(2, CacheState.SHARED)
        c.lookup(1)  # 1 becomes MRU
        victim = c.install(3, CacheState.SHARED)
        assert victim == (2, CacheState.SHARED)

    def test_untouched_lookup_preserves_lru(self):
        c = SetAssocCache(1, 2)
        c.install(1, CacheState.SHARED)
        c.install(2, CacheState.SHARED)
        c.lookup(1, touch=False)
        victim = c.install(3, CacheState.SHARED)
        assert victim == (1, CacheState.SHARED)

    def test_victim_carries_state(self):
        c = SetAssocCache(1, 1)
        c.install(1, CacheState.MODIFIED)
        victim = c.install(2, CacheState.SHARED)
        assert victim == (1, CacheState.MODIFIED)

    def test_reinstall_updates_without_eviction(self):
        c = SetAssocCache(1, 2)
        c.install(1, CacheState.SHARED)
        c.install(2, CacheState.SHARED)
        assert c.install(1, CacheState.MODIFIED) is None
        assert c.lookup(1) is CacheState.MODIFIED

    def test_sets_are_independent(self):
        c = SetAssocCache(2, 1)
        c.install(0, CacheState.SHARED)  # set 0
        assert c.install(1, CacheState.SHARED) is None  # set 1
        assert c.occupancy() == 2


class TestStateChanges:
    def test_set_state(self):
        c = SetAssocCache(4, 2)
        c.install(5, CacheState.SHARED)
        c.set_state(5, CacheState.MODIFIED)
        assert c.lookup(5) is CacheState.MODIFIED

    def test_set_state_invalid_drops(self):
        c = SetAssocCache(4, 2)
        c.install(5, CacheState.SHARED)
        c.set_state(5, CacheState.INVALID)
        assert c.lookup(5) is CacheState.INVALID
        assert c.occupancy() == 0

    def test_set_state_missing_raises(self):
        c = SetAssocCache(4, 2)
        with pytest.raises(KeyError):
            c.set_state(5, CacheState.SHARED)

    def test_set_state_invalid_on_missing_is_noop(self):
        c = SetAssocCache(4, 2)
        c.set_state(5, CacheState.INVALID)  # no raise

    def test_invalidate_returns_previous(self):
        c = SetAssocCache(4, 2)
        c.install(5, CacheState.MODIFIED)
        assert c.invalidate(5) is CacheState.MODIFIED
        assert c.invalidate(5) is CacheState.INVALID


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        lines=st.lists(st.integers(0, 200), min_size=1, max_size=100),
        n_sets=st.sampled_from([1, 2, 4, 8]),
        ways=st.sampled_from([1, 2, 4]),
    )
    def test_occupancy_never_exceeds_capacity(self, lines, n_sets, ways):
        c = SetAssocCache(n_sets, ways)
        for line in lines:
            c.install(line, CacheState.SHARED)
        assert c.occupancy() <= c.capacity_lines
        # no duplicates
        resident = c.resident_lines()
        assert len(resident) == len(set(resident))

    @settings(max_examples=50, deadline=None)
    @given(lines=st.lists(st.integers(0, 50), min_size=1, max_size=60))
    def test_most_recent_line_always_resident(self, lines):
        c = SetAssocCache(2, 2)
        for line in lines:
            c.install(line, CacheState.SHARED)
        assert c.lookup(lines[-1]) is CacheState.SHARED

    @settings(max_examples=50, deadline=None)
    @given(lines=st.lists(st.integers(0, 30), min_size=1, max_size=60))
    def test_lines_map_to_their_set(self, lines):
        n_sets = 4
        c = SetAssocCache(n_sets, 2)
        for line in lines:
            c.install(line, CacheState.SHARED)
        for s_idx, s in enumerate(c._sets):
            for line in s:
                assert line % n_sets == s_idx
