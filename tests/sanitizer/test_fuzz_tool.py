"""The fuzzer's own machinery: shrinking, reproducers, replay.

Uses the deterministic fault injectors so a failure is guaranteed on a
known case, then exercises the full find -> shrink -> write -> replay
loop the nightly CI job relies on.
"""

import json

from repro.sanitizer.fuzz import (
    _normalize,
    capture_timeline,
    check_case,
    generate_case,
    replay,
    shrink_case,
    total_ops,
    write_reproducer,
)

from .cases import handcrafted

#: The drop-ack scenario (reader holds the line, remote write must
#: invalidate it) buried in unrelated traffic for the shrinker to strip.
_NOISY_OPS = {
    0: [["m", 64, 0], ["c", 4], ["m", 320, 0], ["b", 0], ["m", 320, 1]],
    1: [["m", 192, 1], ["b", 0], ["c", 2], ["m", 64, 1]],
    2: [["m", 320, 0], ["m", 192, 0], ["c", 7], ["b", 0]],
    3: [["m", 448, 1], ["b", 0], ["m", 448, 0]],
}


def test_shrink_produces_minimal_deterministic_reproducer(tmp_path):
    case = handcrafted(_NOISY_OPS)
    failure = check_case(case, "drop-ack")
    assert failure is not None and failure["kind"] == "invariant"
    assert failure["violation"]["invariant"] == "deadlock"

    shrunk = shrink_case(case, failure, "drop-ack")
    assert total_ops(shrunk) <= 25  # the PR's acceptance bound, with margin
    assert total_ops(shrunk) < total_ops(case)

    # deterministic: the shrunk case re-triggers the same invariant twice
    for _ in range(2):
        again = check_case(shrunk, "drop-ack")
        assert again is not None
        assert again["violation"]["invariant"] == "deadlock"

    # round-trip through the reproducer file and the replay entry point
    out = tmp_path / "repro_0.json"
    write_reproducer(out, shrunk, check_case(shrunk, "drop-ack"),
                     total_ops(case), "drop-ack")
    doc = json.loads(out.read_text())
    assert doc["fault"] == "drop-ack"
    assert doc["shrunk_ops"] == total_ops(shrunk)
    assert replay(out) == 0


def test_replay_reports_non_reproduction(tmp_path):
    """A reproducer whose case now passes must exit non-zero."""
    case = handcrafted({0: [["c", 1]]})
    out = tmp_path / "repro_1.json"
    write_reproducer(
        out, case,
        {"kind": "invariant",
         "violation": {"invariant": "deadlock", "time": 0,
                       "details": {}, "events": []}},
        1, "drop-ack",
    )
    assert replay(out) == 1


def test_normalize_strips_partial_barriers():
    case = handcrafted({0: [["m", 64, 0]]})
    case["traces"][next(iter(case["traces"]))].append(["b", 3])  # one core only
    normalized = _normalize(case)
    assert all(
        op[0] != "b" for ops in normalized["traces"].values() for op in ops
    )


def test_generation_is_seed_deterministic():
    assert generate_case(777) == generate_case(777)
    assert generate_case(777) != generate_case(778)


def test_capture_timeline_and_reproducer_attachment(tmp_path):
    """A failing case's reproducer carries the telemetry timeline."""
    case = handcrafted(_NOISY_OPS)
    failure = check_case(case, "drop-ack")
    assert failure is not None

    timeline = capture_timeline(case, "drop-ack")
    assert timeline is not None
    assert timeline["windows"], "expected closed telemetry windows"
    assert timeline["trace_tail"], "expected trace ring events"
    assert timeline["window_cycles"] == 64  # short fuzz-capture windows

    out = tmp_path / "repro_t.json"
    write_reproducer(out, case, failure, total_ops(case), "drop-ack",
                     timeline=timeline)
    doc = json.loads(out.read_text())
    assert doc["telemetry"]["windows"] == timeline["windows"]
    # attachment does not perturb replayability
    assert replay(out) == 0


def test_reproducer_without_timeline_omits_key(tmp_path):
    case = handcrafted({0: [["c", 1]]})
    out = tmp_path / "repro_n.json"
    write_reproducer(
        out, case,
        {"kind": "invariant",
         "violation": {"invariant": "deadlock", "time": 0,
                       "details": {}, "events": []}},
        1, None,
    )
    assert "telemetry" not in json.loads(out.read_text())
