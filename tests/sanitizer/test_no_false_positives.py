"""The sanitizer must be silent on correct executions.

Two angles:

* property-based -- randomized fuzz cases (the same generator ``repro
  fuzz`` uses) must pass both the sanitized run and the differential
  comparison against the unbatched reference simulator;
* deterministic -- a sharing-heavy handcrafted workload on every
  (network, protocol) cell, plus byte-identity of sanitized vs plain
  results (the sanitizer observes, it must never perturb).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sanitizer.fuzz import check_case, generate_case, run_case
from repro.sim.config import NETWORK_CHOICES

from .cases import handcrafted

#: Readers on line 128 in phase 0; core 3 writes it in phase 1; a second
#: shared line (192) keeps unicast traffic flowing alongside the
#: invalidation broadcast.  With hardware_sharers=2 the three readers
#: overflow the ACKwise sharer list, so the write exercises the global
#: broadcast path as well.
_SHARING_OPS = {
    0: [["m", 128, 0], ["m", 192, 0], ["b", 0], ["m", 192, 1], ["b", 1]],
    1: [["m", 128, 0], ["c", 3], ["b", 0], ["m", 128, 0], ["b", 1]],
    2: [["m", 128, 0], ["b", 0], ["m", 192, 0], ["b", 1]],
    3: [["b", 0], ["m", 128, 1], ["b", 1], ["m", 128, 1]],
}


@settings(max_examples=6, deadline=None, derandomize=True)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_random_cases_sanitized_and_differential(seed):
    """Random workloads: no violation, and batched == reference."""
    assert check_case(generate_case(seed)) is None


@pytest.mark.parametrize("protocol", ["ackwise", "dirkb"])
@pytest.mark.parametrize("network", NETWORK_CHOICES)
def test_sharing_workload_clean_on_every_cell(network, protocol):
    mesh_width = 4 if network.startswith("emesh") else 8
    case = handcrafted(
        _SHARING_OPS, network=network, protocol=protocol,
        mesh_width=mesh_width,
    )
    assert check_case(case) is None


def test_sanitizer_does_not_perturb_results():
    """Sanitized and plain runs of the same case are byte-identical."""
    case = generate_case(12345)
    sanitized = run_case(case, sanitize=True, batch=True)
    plain = run_case(case, sanitize=False, batch=True)
    assert sanitized.to_dict() == plain.to_dict()
