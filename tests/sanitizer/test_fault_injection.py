"""Injected faults must never slip past the sanitizer.

Each fault from :mod:`repro.sanitizer.faults` gets a handcrafted
workload on which it deterministically fires, and the test asserts the
sanitizer raises the matching invariant.  Property-based companions
re-check over random seeded cases: whenever the fault fires, the run
must end in the expected violation (and when it never fires, the run
must stay clean -- arming alone is not a perturbation).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sanitizer import InvariantViolation
from repro.sanitizer.faults import inject_fault
from repro.sanitizer.fuzz import (
    MAX_EVENTS,
    case_config,
    case_traces,
    generate_case,
)
from repro.sim.system import ManycoreSystem

from .cases import handcrafted


def run_injected(case, fault):
    """Sanitized run with ``fault`` armed.

    Returns ``(state, outcome)`` where outcome is ``None`` (clean),
    an :class:`InvariantViolation`, or the protocol's own
    ``RuntimeError`` -- timing corruption (double-reserve) can derail
    message ordering badly enough that the protocol state machine
    trips over an impossible message before any sanitizer audit runs.
    """
    system = ManycoreSystem(case_config(case), sanitize=True)
    state = inject_fault(system, fault)
    try:
        system.run(case_traces(case), app="fault", max_events=MAX_EVENTS)
    except (InvariantViolation, RuntimeError) as failure:
        return state, failure
    return state, None


#: Core 0 reads line 64 and holds it across the barrier; core 1 then
#: writes it, forcing an invalidation of core 0 and thus an INV_ACK.
_READ_THEN_REMOTE_WRITE = {
    0: [["m", 64, 0], ["b", 0]],
    1: [["b", 0], ["m", 64, 1]],
}

#: Three readers overflow an ACKwise_2 sharer list; the phase-1 write
#: then raises a true invalidation *broadcast* through every cluster's
#: receive network.
_BROADCAST_WRITE = {
    0: [["m", 64, 0], ["b", 0]],
    1: [["m", 64, 0], ["b", 0]],
    2: [["m", 64, 0], ["b", 0]],
    3: [["b", 0], ["m", 64, 1]],
}


@pytest.mark.parametrize("protocol", ["ackwise", "dirkb"])
def test_dropped_ack_deadlocks_and_is_reported(protocol):
    state, violation = run_injected(
        handcrafted(_READ_THEN_REMOTE_WRITE, protocol=protocol), "drop-ack"
    )
    assert state["fired"]
    assert violation is not None and violation.invariant == "deadlock"
    # the structured report names the stuck transaction and requester
    assert violation.details["busy_lines"]


def test_stale_sharer_bit_caught_at_quiescence():
    state, violation = run_injected(
        handcrafted({0: [["m", 64, 0]]}), "stale-sharer"
    )
    assert state["fired"]
    assert violation is not None
    assert violation.invariant == "directory-consistency"


@pytest.mark.parametrize("network,mesh_width", [
    ("emesh-pure", 4),   # flat-array port accounting (mesh fallback)
    ("atac+", 8),        # receive-network PortResource double-booking
])
def test_double_reserved_port_fails_end_of_run_audit(network, mesh_width):
    state, violation = run_injected(
        handcrafted(_BROADCAST_WRITE, network=network, mesh_width=mesh_width),
        "double-reserve",
    )
    assert state["fired"]
    assert violation is not None and violation.invariant == "port-accounting"


@settings(max_examples=4, deadline=None, derandomize=True)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_random_cases_drop_ack_never_missed(seed):
    state, violation = run_injected(
        generate_case(seed, fault="drop-ack"), "drop-ack"
    )
    if state["fired"]:
        assert violation is not None and violation.invariant == "deadlock"
    else:
        assert violation is None


@settings(max_examples=4, deadline=None, derandomize=True)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_random_cases_double_reserve_never_missed(seed):
    """A fired double-reservation never completes cleanly: either the
    end-of-run port audit flags it, or the too-early deliveries it
    causes crash the protocol mid-run."""
    state, outcome = run_injected(
        generate_case(seed, fault="double-reserve"), "double-reserve"
    )
    if state["fired"]:
        assert outcome is not None
        if isinstance(outcome, InvariantViolation):
            assert outcome.invariant == "port-accounting"
    else:
        assert outcome is None


@settings(max_examples=4, deadline=None, derandomize=True)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_random_cases_stale_sharer_no_collateral(seed):
    """A stale sharer bit surfaces as directory inconsistency, stalls
    the protocol into a reported deadlock (the bogus target never
    responds usefully), or is erased by a later exclusive request
    before any quiescent check -- it must never masquerade as an
    unrelated violation or a silent wrong result."""
    state, outcome = run_injected(
        generate_case(seed, fault="stale-sharer"), "stale-sharer"
    )
    if outcome is not None:
        assert state["fired"]
        assert isinstance(outcome, InvariantViolation)
        assert outcome.invariant in ("directory-consistency", "deadlock")
