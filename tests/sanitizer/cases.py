"""Shared helpers for sanitizer tests: handcrafted fuzz-format cases."""

from repro.sanitizer.fuzz import case_config


def handcrafted(
    ops_by_index: dict[int, list],
    network: str = "emesh-bcast",
    protocol: str = "ackwise",
    mesh_width: int = 4,
    hardware_sharers: int = 2,
) -> dict:
    """A fuzz-format case with explicit per-core ops.

    ``ops_by_index`` is keyed by index into the config's compute-core
    list (so tests do not hardcode core ids that depend on topology).
    Cores without explicit ops get exactly the barrier ops appearing
    anywhere else, keeping the barrier protocol deadlock-free; cores
    *with* explicit ops must include every barrier id themselves.
    """
    case = {
        "seed": 0,
        "mesh_width": mesh_width,
        "network": network,
        "protocol": protocol,
        "hardware_sharers": hardware_sharers,
    }
    compute = case_config(case).topology.compute_cores()
    barrier_ids = sorted({
        op[1] for ops in ops_by_index.values() for op in ops if op[0] == "b"
    })
    case["traces"] = {
        str(core): (
            ops_by_index[i] if i in ops_by_index
            else [["b", b] for b in barrier_ids]
        )
        for i, core in enumerate(compute)
    }
    return case
