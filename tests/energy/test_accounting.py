"""Tests for the energy accounting layer (Figures 7/17 mechanics)."""

import pytest

from repro.energy.accounting import ALL_KEYS, EnergyBreakdown, EnergyModel
from repro.energy.area import AreaModel
from repro.energy.edp import energy_delay_product, normalized
from repro.sim.config import SystemConfig
from repro.sim.system import ManycoreSystem
from repro.tech.core import CorePowerModel
from repro.tech.photonics import PhotonicParams
from repro.tech.scenarios import (
    ALL_SCENARIOS,
    SCENARIO_ATACP,
    SCENARIO_CONS,
    SCENARIO_IDEAL,
    SCENARIO_RINGTUNED,
)
from repro.workloads.splash import APP_PROFILES, generate_traces


@pytest.fixture(scope="module")
def atac_run():
    cfg = SystemConfig(network="atac+", rthres=8).scaled(8)
    s = ManycoreSystem(cfg)
    traces = generate_traces(
        APP_PROFILES["barnes"], s.topology,
        l2_lines=cfg.l2_sets * cfg.l2_ways, scale=0.4,
    )
    return cfg, s.run(traces, app="barnes")


@pytest.fixture(scope="module")
def mesh_run():
    cfg = SystemConfig(network="emesh-bcast").scaled(8)
    s = ManycoreSystem(cfg)
    traces = generate_traces(
        APP_PROFILES["barnes"], s.topology,
        l2_lines=cfg.l2_sets * cfg.l2_ways, scale=0.4,
    )
    return cfg, s.run(traces, app="barnes")


class TestBreakdownContainer:
    def test_rejects_unknown_keys(self):
        with pytest.raises(ValueError):
            EnergyBreakdown(
                components={"warp_drive": 1.0}, scenario="s", app="a",
                network="n", runtime_s=1.0,
            )

    def test_rejects_negative_energy(self):
        with pytest.raises(ValueError):
            EnergyBreakdown(
                components={"l2": -1.0}, scenario="s", app="a",
                network="n", runtime_s=1.0,
            )

    def test_scope_sums(self):
        b = EnergyBreakdown(
            components={"l2": 2.0, "laser": 1.0, "core_ndd": 4.0},
            scenario="s", app="a", network="n", runtime_s=2.0,
        )
        assert b.cache_energy_j == 2.0
        assert b.network_energy_j == 1.0
        assert b.chip_energy_j == 3.0
        assert b.total_energy_j == 7.0
        assert b.edp() == 6.0
        assert b.edp(include_core=True) == 14.0


class TestScenarioPostProcessing:
    """Table IV flavors share one performance run (paper Section V-C)."""

    def test_cons_laser_dominates(self, atac_run):
        cfg, res = atac_run
        model = EnergyModel(cfg)
        cons = model.evaluate(res, SCENARIO_CONS)
        gated = model.evaluate(res, SCENARIO_ATACP)
        assert cons["laser"] > 20 * gated["laser"]

    def test_ring_tuning_only_without_athermal(self, atac_run):
        cfg, res = atac_run
        model = EnergyModel(cfg)
        assert model.evaluate(res, SCENARIO_ATACP)["ring_tuning"] == 0.0
        assert model.evaluate(res, SCENARIO_RINGTUNED)["ring_tuning"] > 0.0
        assert model.evaluate(res, SCENARIO_CONS)["ring_tuning"] > 0.0

    def test_atacp_close_to_ideal(self, atac_run):
        """Paper: 'ATAC+ has about the same energy as ATAC+(Ideal)'."""
        cfg, res = atac_run
        model = EnergyModel(cfg)
        ideal = model.evaluate(res, SCENARIO_IDEAL).chip_energy_j
        real = model.evaluate(res, SCENARIO_ATACP).chip_energy_j
        assert real / ideal < 1.05

    def test_laser_tiny_fraction_of_atacp(self, atac_run):
        """Paper: laser is ~2% of ATAC+ (network) energy."""
        cfg, res = atac_run
        b = EnergyModel(cfg).evaluate(res, SCENARIO_ATACP)
        assert b["laser"] / b.network_energy_j < 0.10

    def test_scenario_ordering(self, atac_run):
        """Ideal <= ATAC+ < RingTuned < Cons (each drops one feature)."""
        cfg, res = atac_run
        model = EnergyModel(cfg)
        totals = [
            model.evaluate(res, sc).chip_energy_j for sc in ALL_SCENARIOS
        ]
        assert totals == sorted(totals)

    def test_same_run_identical_nonoptical_terms(self, atac_run):
        cfg, res = atac_run
        model = EnergyModel(cfg)
        a = model.evaluate(res, SCENARIO_IDEAL)
        b = model.evaluate(res, SCENARIO_CONS)
        for key in ("enet_dynamic", "enet_ndd", "l2", "l1d", "core_ndd"):
            assert a[key] == b[key]


class TestMeshAccounting:
    def test_mesh_has_no_optical_terms(self, mesh_run):
        cfg, res = mesh_run
        b = EnergyModel(cfg).evaluate(res)
        assert b["laser"] == 0.0
        assert b["ring_tuning"] == 0.0
        assert b["hub"] == 0.0

    def test_caches_dominate_chip_energy(self, mesh_run):
        """Paper: cache energy dominates the network+cache total."""
        cfg, res = mesh_run
        b = EnergyModel(cfg).evaluate(res)
        assert b.cache_energy_j > 0.5 * b.chip_energy_j

    def test_all_components_nonnegative(self, mesh_run):
        cfg, res = mesh_run
        b = EnergyModel(cfg).evaluate(res)
        for k in ALL_KEYS:
            assert b[k] >= 0.0


class TestCoreEnergyCoupling:
    def test_core_ndd_scales_with_runtime(self, atac_run, mesh_run):
        """Figure 17's mechanism: identical DD energy, NDD follows time."""
        cfg_a, res_a = atac_run
        cfg_m, res_m = mesh_run
        b_a = EnergyModel(cfg_a).evaluate(res_a)
        b_m = EnergyModel(cfg_m).evaluate(res_m)
        ratio_ndd = b_m["core_ndd"] / b_a["core_ndd"]
        ratio_time = res_m.runtime_s / res_a.runtime_s
        assert ratio_ndd == pytest.approx(ratio_time, rel=1e-6)

    def test_higher_ndd_fraction_raises_core_share(self, atac_run):
        cfg, res = atac_run
        low = EnergyModel(cfg, core_power=CorePowerModel(ndd_fraction=0.1))
        high = EnergyModel(cfg, core_power=CorePowerModel(ndd_fraction=0.4))
        assert (
            high.evaluate(res)["core_ndd"] > low.evaluate(res)["core_ndd"]
        )

    def test_core_dwarfs_cache_and_network(self, atac_run):
        """Paper Fig 17: 'the cache and network are dwarfed by the core'."""
        cfg, res = atac_run
        b = EnergyModel(cfg, core_power=CorePowerModel(ndd_fraction=0.4)).evaluate(res)
        assert b.core_energy_j > b.chip_energy_j


class TestWaveguideLossSensitivity:
    def test_laser_energy_monotonic_in_loss(self, atac_run):
        cfg, res = atac_run
        lasers = []
        for loss in (0.2, 1.0, 2.0, 4.0):
            model = EnergyModel(
                cfg, photonics=PhotonicParams(waveguide_loss_db_per_cm=loss)
            )
            lasers.append(model.evaluate(res, SCENARIO_ATACP)["laser"])
        assert lasers == sorted(lasers)
        assert lasers[-1] > 2 * lasers[0]


class TestEdpHelpers:
    def test_normalized(self):
        out = normalized({"a": 2.0, "b": 4.0}, "a")
        assert out == {"a": 1.0, "b": 2.0}

    def test_normalized_missing_reference(self):
        with pytest.raises(KeyError):
            normalized({"a": 1.0}, "z")

    def test_normalized_zero_reference(self):
        with pytest.raises(ValueError):
            normalized({"a": 0.0}, "a")

    def test_edp_function_matches_method(self, atac_run):
        cfg, res = atac_run
        b = EnergyModel(cfg).evaluate(res)
        assert energy_delay_product(b) == b.edp()


class TestAreaModel:
    def test_caches_dominate_area(self):
        """Paper Fig 10: caches are ~90% of chip area."""
        bd = AreaModel(SystemConfig(network="atac+")).breakdown()
        assert bd.cache_fraction > 0.70

    def test_photonics_near_40mm2(self):
        """Paper: waveguides + optical devices occupy ~40 mm^2."""
        bd = AreaModel(SystemConfig(network="atac+")).breakdown()
        assert 25 < bd["photonics"] < 60

    def test_mesh_has_no_photonics(self):
        bd = AreaModel(SystemConfig(network="emesh-bcast")).breakdown()
        assert bd["photonics"] == 0.0
        assert bd["hubs"] == 0.0

    def test_electrical_network_negligible(self):
        bd = AreaModel(SystemConfig(network="atac+")).breakdown()
        assert bd["enet"] < 0.1 * bd.total_mm2

    def test_directory_area_grows_with_sharers(self):
        """Fig 16's area statement: ~2x total from k=4 to k=1024."""
        small = AreaModel(SystemConfig(hardware_sharers=4)).breakdown()
        big = AreaModel(SystemConfig(hardware_sharers=1024)).breakdown()
        assert big["directory"] > 10 * small["directory"]
        assert 1.5 < big.total_mm2 / small.total_mm2 < 4.0
