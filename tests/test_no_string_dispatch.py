"""Grep-based lint: network-name dispatch lives only in the registry.

The registry refactor's invariant is that ``src/repro`` never branches
on network-name strings (``config.network == "atac"``) or enumerates
hard-coded network-name tuples (``("atac+", "emesh-bcast")``) anywhere
outside ``repro/network/registry.py``.  Single-name literals remain
fine -- ``spec_for(app, network="atac+")`` names a configuration value,
it does not dispatch on one.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.network.registry import REGISTRY

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: the one module allowed to enumerate and dispatch on network names.
ALLOWED = {SRC / "network" / "registry.py"}

_NAMES = sorted(
    {d.name for d in REGISTRY.values()}
    | {d.display_name for d in REGISTRY.values()},
    key=len,
    reverse=True,  # longest first so "atac+" wins over "atac"
)
_NAME_ALT = "|".join(re.escape(name) for name in _NAMES)

PATTERNS = (
    # equality dispatch: config.network == "atac" / result.network != 'ATAC+'
    re.compile(r"\.network\s*(?:==|!=)\s*['\"]"),
    # membership dispatch: cfg.network in ("atac", "atac+")
    re.compile(r"\.network\s+(?:not\s+)?in\s*[(\[{]"),
    # hard-coded network-name tuples/lists: two adjacent quoted names
    re.compile(
        rf"['\"](?:{_NAME_ALT})['\"]\s*,\s*['\"](?:{_NAME_ALT})['\"]"
    ),
)


def test_registry_is_the_only_network_name_dispatcher():
    assert SRC.is_dir(), SRC
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path in ALLOWED:
            continue
        for lineno, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            for pattern in PATTERNS:
                if pattern.search(line):
                    offenders.append(
                        f"{path.relative_to(SRC)}:{lineno}: {line.strip()}"
                    )
                    break
    assert not offenders, (
        "network-name string dispatch outside repro/network/registry.py "
        "(resolve through the registry instead):\n  "
        + "\n  ".join(offenders)
    )
