"""Unit tests for the event queue and barrier manager."""

import pytest

from repro.sim.barrier import BarrierManager
from repro.sim.eventq import EventQueue


class TestEventQueue:
    def test_runs_in_time_order(self):
        q = EventQueue()
        log = []
        q.schedule(10, lambda t: log.append((t, "b")))
        q.schedule(5, lambda t: log.append((t, "a")))
        q.schedule(20, lambda t: log.append((t, "c")))
        q.run()
        assert log == [(5, "a"), (10, "b"), (20, "c")]

    def test_ties_broken_by_insertion_order(self):
        q = EventQueue()
        log = []
        q.schedule(5, lambda t: log.append("first"))
        q.schedule(5, lambda t: log.append("second"))
        q.run()
        assert log == ["first", "second"]

    def test_now_advances(self):
        q = EventQueue()
        q.schedule(42, lambda t: None)
        assert q.run() == 42
        assert q.now == 42

    def test_cannot_schedule_in_past(self):
        q = EventQueue()
        q.schedule(10, lambda t: q.schedule(5, lambda t2: None))
        with pytest.raises(ValueError):
            q.run()

    def test_events_can_schedule_more_events(self):
        q = EventQueue()
        log = []

        def chain(t):
            log.append(t)
            if t < 30:
                q.schedule(t + 10, chain)

        q.schedule(10, chain)
        q.run()
        assert log == [10, 20, 30]

    def test_max_events_guard(self):
        q = EventQueue()

        def forever(t):
            q.schedule(t + 1, forever)

        q.schedule(0, forever)
        with pytest.raises(RuntimeError):
            q.run(max_events=100)


class TestEventQueueArgDispatch:
    """The allocation-free ``(callback, arg)`` scheduling form."""

    def test_arg_form_calls_callback_with_payload_and_time(self):
        q = EventQueue()
        log = []
        q.schedule(7, lambda msg, t: log.append((msg, t)), "payload")
        q.run()
        assert log == [("payload", 7)]

    def test_none_is_a_valid_payload(self):
        q = EventQueue()
        log = []
        q.schedule(3, lambda msg, t: log.append((msg, t)), None)
        q.run()
        assert log == [(None, 3)]

    def test_mixed_forms_share_the_tie_break(self):
        """arg and no-arg events at the same time keep insertion order."""
        q = EventQueue()
        log = []
        q.schedule(5, lambda t: log.append("plain-1"))
        q.schedule(5, lambda msg, t: log.append(msg), "arg-2")
        q.schedule(5, lambda t: log.append("plain-3"))
        q.schedule(5, lambda msg, t: log.append(msg), "arg-4")
        q.run()
        assert log == ["plain-1", "arg-2", "plain-3", "arg-4"]

    def test_events_processed_counts_both_forms(self):
        q = EventQueue()
        q.schedule(1, lambda t: None)
        q.schedule(2, lambda msg, t: None, object())
        q.run()
        assert q.events_processed == 2

    def test_arg_form_respects_max_events(self):
        q = EventQueue()

        def forever(msg, t):
            q.schedule(t + 1, forever, msg)

        q.schedule(0, forever, "m")
        with pytest.raises(RuntimeError):
            q.run(max_events=50)

    def test_len(self):
        q = EventQueue()
        assert len(q) == 0
        q.schedule(1, lambda t: None)
        assert len(q) == 1


class TestBarrierManager:
    def test_releases_when_all_arrive(self):
        q = EventQueue()
        b = BarrierManager(3, q, release_latency=4)
        released = []
        b.arrive(0, now=10, resume=lambda t: released.append(("a", t)))
        b.arrive(0, now=20, resume=lambda t: released.append(("b", t)))
        assert not released
        b.arrive(0, now=30, resume=lambda t: released.append(("c", t)))
        q.run()
        assert {name for name, _ in released} == {"a", "b", "c"}
        # all released at last-arrival + latency
        assert all(t == 34 for _, t in released)

    def test_slowest_core_sets_release_time(self):
        """Barriers couple one slow core into everyone's runtime --
        the amplification mechanism behind Figure 4."""
        q = EventQueue()
        b = BarrierManager(2, q, release_latency=0)
        times = []
        b.arrive(0, now=5, resume=times.append)
        b.arrive(0, now=500, resume=times.append)
        q.run()
        assert times == [500, 500]

    def test_multiple_barriers_independent(self):
        q = EventQueue()
        b = BarrierManager(2, q)
        released = []
        b.arrive(0, 1, lambda t: released.append(0))
        b.arrive(1, 2, lambda t: released.append(1))
        assert b.open_barriers == 2
        b.arrive(1, 3, lambda t: released.append(1))
        b.arrive(0, 4, lambda t: released.append(0))
        q.run()
        assert sorted(released) == [0, 0, 1, 1]
        assert b.barriers_completed == 2

    def test_overflow_detected(self):
        q = EventQueue()
        b = BarrierManager(3, q)
        b.arrive(0, 1, lambda t: None)
        b.arrive(0, 2, lambda t: None)
        # a duplicate arrival before release must be caught: with 3
        # participants, 4 arrivals on one barrier is a bug
        b.arrive(0, 3, lambda t: None)  # releases
        b.arrive(0, 4, lambda t: None)  # re-opens (new epoch): fine
        b.arrive(0, 5, lambda t: None)
        b.arrive(0, 6, lambda t: None)  # releases again
        q.run()
        assert b.barriers_completed == 2

    def test_validation(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            BarrierManager(0, q)
        with pytest.raises(ValueError):
            BarrierManager(1, q, release_latency=-1)
