"""Full-system simulator tests: cores, back-pressure, determinism."""

import pytest

from repro.coherence.directory import Protocol
from repro.sim.config import NETWORK_CHOICES, SystemConfig, make_network
from repro.sim.system import ManycoreSystem
from repro.workloads.trace import BarrierOp, ComputeOp, CoreTrace, MemoryOp


def small_config(network="atac+", **kw):
    return SystemConfig(network=network, **kw).scaled(mesh_width=8)


def flat_traces(system, ops_fn):
    return {
        core: CoreTrace(core, ops_fn(core)) for core in system.compute_cores
    }


class TestConfig:
    def test_paper_defaults(self):
        cfg = SystemConfig()
        assert cfg.n_cores == 1024
        assert cfg.topology.n_clusters == 64
        assert cfg.flit_bits == 64
        assert cfg.l2_sets * cfg.l2_ways * 64 == 256 * 1024  # 256 KB L2
        assert cfg.l1_sets * cfg.l1_ways * 64 == 32 * 1024   # 32 KB L1
        assert cfg.mem_latency == 100
        assert cfg.hardware_sharers == 4

    def test_network_choices(self):
        for net in NETWORK_CHOICES:
            cfg = SystemConfig(network=net).scaled(8)
            make_network(cfg)  # must not raise

    def test_unknown_network_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(network="hypercube")

    def test_scaled_shrinks_caches(self):
        cfg = SystemConfig().scaled(8)
        assert cfg.l2_sets < SystemConfig().l2_sets
        assert cfg.n_cores == 64

    def test_atac_uses_bnet_and_cluster_routing(self):
        from repro.network.routing import ClusterRouting

        cfg = SystemConfig(network="atac").scaled(8)
        net = make_network(cfg)
        assert net.receive_net_kind == "bnet"
        assert isinstance(net.routing, ClusterRouting)


class TestExecution:
    def test_compute_only_trace(self):
        s = ManycoreSystem(small_config())
        res = s.run(flat_traces(s, lambda c: [ComputeOp(100)]), app="t")
        assert res.completion_cycles == 100
        assert res.total_instructions == 100 * len(s.compute_cores)

    def test_memory_op_blocks_core(self):
        """An L2 miss stalls the core for the full round trip."""
        s = ManycoreSystem(small_config())
        res = s.run(
            flat_traces(s, lambda c: [MemoryOp(5000 + c)]), app="t"
        )
        # DRAM latency alone is 100 cycles
        assert res.completion_cycles > 100
        assert res.stalled_cycles > 0

    def test_barrier_couples_cores(self):
        """One slow core delays everyone past a barrier."""
        s = ManycoreSystem(small_config())
        slowest = s.compute_cores[0]

        def ops(core):
            work = 1000 if core == slowest else 10
            return [ComputeOp(work), BarrierOp(0), ComputeOp(5)]

        res = s.run(flat_traces(s, ops), app="t")
        assert res.completion_cycles >= 1005
        assert res.barriers_completed == 1

    def test_missing_trace_rejected(self):
        s = ManycoreSystem(small_config())
        traces = flat_traces(s, lambda c: [ComputeOp(1)])
        del traces[s.compute_cores[0]]
        with pytest.raises(ValueError):
            s.run(traces)

    def test_trace_for_memctrl_position_rejected(self):
        s = ManycoreSystem(small_config())
        traces = flat_traces(s, lambda c: [ComputeOp(1)])
        traces[s.memctrl_positions[0]] = CoreTrace(
            s.memctrl_positions[0], [ComputeOp(1)]
        )
        with pytest.raises(ValueError):
            s.run(traces)

    def test_ipc_reflects_stalls(self):
        s1 = ManycoreSystem(small_config())
        r1 = s1.run(flat_traces(s1, lambda c: [ComputeOp(100)]), app="t")
        s2 = ManycoreSystem(small_config())
        r2 = s2.run(
            flat_traces(
                s2, lambda c: [ComputeOp(50), MemoryOp(9000 + c), ComputeOp(50)]
            ),
            app="t",
        )
        assert r1.ipc > r2.ipc

    def test_network_backpressure_reaches_runtime(self):
        """The paper's core methodological claim: identical instruction
        streams complete at different times on different networks,
        because miss latency flows back into the cores."""
        shared = list(range(64))

        def ops(core):
            out = []
            for i in range(12):
                out.append(ComputeOp(2))
                out.append(MemoryOp(shared[(core + i) % len(shared)],
                                    is_write=(i % 4 == 0)))
            out.append(BarrierOp(0))
            return out

        cycles = {}
        for net in ("atac+", "emesh-pure"):
            s = ManycoreSystem(small_config(network=net))
            res = s.run(flat_traces(s, ops), app="t")
            cycles[net] = res.completion_cycles
            assert res.total_instructions == sum(
                CoreTrace(c, ops(c)).n_instructions for c in s.compute_cores
            )
        assert cycles["atac+"] != cycles["emesh-pure"]


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        def run_once():
            s = ManycoreSystem(small_config())
            ops = lambda c: [
                ComputeOp(3), MemoryOp(100 + (c % 7), is_write=(c % 3 == 0)),
                MemoryOp(9000 + c), BarrierOp(0),
            ]
            return s.run(flat_traces(s, ops), app="t")

        a, b = run_once(), run_once()
        assert a.completion_cycles == b.completion_cycles
        assert a.network_stats.as_dict() == b.network_stats.as_dict()
        assert a.cache_counters == b.cache_counters


class TestHomeMapping:
    def test_homes_are_compute_cores(self):
        s = ManycoreSystem(small_config())
        for addr in range(200):
            assert s.home_of(addr) in s._compute_set

    def test_memctrl_for_is_same_cluster(self):
        s = ManycoreSystem(small_config())
        for core in s.compute_cores:
            mc = s.memctrl_for(core)
            assert s.topology.cluster_of(mc) == s.topology.cluster_of(core)

    def test_slices_are_clusters(self):
        s = ManycoreSystem(small_config())
        for core in s.compute_cores:
            assert s.slice_of_home(core) == s.topology.cluster_of(core)


class TestRunResult:
    def test_summary_fields(self):
        s = ManycoreSystem(small_config())
        res = s.run(flat_traces(s, lambda c: [ComputeOp(10)]), app="demo")
        summary = res.summary()
        assert summary["app"] == "demo"
        assert summary["network"] == "ATAC+"
        assert summary["cycles"] == 10

    def test_runtime_seconds(self):
        s = ManycoreSystem(small_config())
        res = s.run(flat_traces(s, lambda c: [ComputeOp(1000)]), app="t")
        assert res.runtime_s == pytest.approx(1e-6)  # 1000 cycles at 1 GHz


class TestDegenerateGeometries:
    def test_all_memctrl_topology_rejected(self):
        """cluster_width=1 makes every core a memory controller; the
        system must refuse with a clear message."""
        cfg = SystemConfig(mesh_width=4, cluster_width=1)
        with pytest.raises(ValueError, match="degenerate"):
            ManycoreSystem(cfg)

    def test_minimal_viable_chip(self):
        """The smallest sensible chip (2x2 clusters of 2x2 cores) runs."""
        cfg = SystemConfig(
            mesh_width=4, cluster_width=2, l1_sets=2, l2_sets=4,
        )
        s = ManycoreSystem(cfg)
        assert len(s.compute_cores) == 12
        res = s.run(
            {c: CoreTrace(c, [ComputeOp(5), MemoryOp(c)]) for c in s.compute_cores},
            app="mini",
        )
        assert res.completion_cycles > 5

    def test_wide_flit_single_flit_messages(self):
        """A 1024-bit flit swallows every message in one flit."""
        cfg = SystemConfig(flit_bits=1024).scaled(8)
        s = ManycoreSystem(cfg)
        res = s.run(
            {c: CoreTrace(c, [MemoryOp(9000 + c)]) for c in s.compute_cores},
            app="wide",
        )
        stats = res.network_stats
        assert stats.injected_flits == stats.packets_sent
