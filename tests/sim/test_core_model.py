"""Unit tests for the in-order core model."""

import pytest

from repro.sim.barrier import BarrierManager
from repro.sim.config import SystemConfig
from repro.sim.core_model import CoreModel
from repro.sim.eventq import EventQueue
from repro.sim.system import ManycoreSystem
from repro.workloads.trace import BarrierOp, ComputeOp, CoreTrace, MemoryOp


def make_core(trace_ops, core_id=None):
    """A real core wired into a tiny system (cache behaviour is real)."""
    system = ManycoreSystem(SystemConfig().scaled(mesh_width=4, cluster_width=2))
    core_id = core_id if core_id is not None else system.compute_cores[0]
    barriers = BarrierManager(1, system.eventq)
    core = CoreModel(
        core_id,
        CoreTrace(core_id, trace_ops),
        system.caches[core_id],
        barriers,
        system.eventq,
    )
    return system, core


class TestExecution:
    def test_pure_compute_runs_at_ipc_1(self):
        system, core = make_core([ComputeOp(500)])
        core.start()
        system.eventq.run()
        assert core.done
        assert core.done_at == 500
        assert core.ipc() == pytest.approx(1.0)

    def test_l1_hit_costs_one_cycle(self):
        system, core = make_core([MemoryOp(7), MemoryOp(7)])
        core.start()
        system.eventq.run()
        # first access misses (expensive), second hits in L1 (+1 cycle)
        assert core.done
        assert core.stalled_cycles > 50
        assert core.instructions == 2

    def test_miss_blocks_and_stall_is_accounted(self):
        system, core = make_core([ComputeOp(10), MemoryOp(42), ComputeOp(10)])
        core.start()
        system.eventq.run()
        assert core.done
        assert core.done_at >= 10 + core.stalled_cycles + 10
        assert core.stalled_cycles > 0

    def test_instruction_counting(self):
        system, core = make_core(
            [ComputeOp(5), MemoryOp(1), BarrierOp(0), ComputeOp(3)]
        )
        core.start()
        system.eventq.run()
        assert core.instructions == 5 + 1 + 1 + 3

    def test_barrier_parks_core(self):
        system = ManycoreSystem(SystemConfig().scaled(mesh_width=4, cluster_width=2))
        c0, c1 = system.compute_cores[:2]
        barriers = BarrierManager(2, system.eventq)
        cores = []
        for cid, work in ((c0, 10), (c1, 300)):
            cm = CoreModel(
                cid,
                CoreTrace(cid, [ComputeOp(work), BarrierOp(0), ComputeOp(1)]),
                system.caches[cid],
                barriers,
                system.eventq,
            )
            cores.append(cm)
            cm.start()
        system.eventq.run()
        assert all(c.done for c in cores)
        # the fast core waited for the slow one
        assert cores[0].done_at >= 300

    def test_trace_core_mismatch_rejected(self):
        system = ManycoreSystem(SystemConfig().scaled(mesh_width=4, cluster_width=2))
        c0 = system.compute_cores[0]
        with pytest.raises(ValueError):
            CoreModel(
                c0,
                CoreTrace(c0 + 1, [ComputeOp(1)]),
                system.caches[c0],
                BarrierManager(1, system.eventq),
                system.eventq,
            )

    def test_ipc_zero_before_done(self):
        system, core = make_core([ComputeOp(1)])
        assert core.ipc() == 0.0
        assert not core.done
