"""Unit tests for RunResult metrics and serialization."""

import pickle

import pytest

from repro.coherence.l2controller import CacheCounters
from repro.network.stats import NetworkStats
from repro.sim.results import RunResult


def make_result(**overrides):
    ns = NetworkStats()
    ns.injected_flits = 1000
    ns.received_unicast_flits = 600
    ns.received_broadcast_flits = 400
    ns.onet_unicasts = 90
    ns.onet_broadcasts = 3
    defaults = dict(
        app="demo",
        network="ATAC+",
        completion_cycles=10_000,
        n_cores=64,
        n_compute_cores=60,
        total_instructions=120_000,
        per_core_instructions=[2000] * 60,
        stalled_cycles=5000,
        network_stats=ns,
        cache_counters=CacheCounters(l1d_reads=500),
        dir_lookups=100,
        dir_updates=80,
        dir_inv_unicast=20,
        dir_inv_broadcast=3,
        mem_reads=50,
        mem_writes=10,
        barriers_completed=4,
        onet_utilization=0.15,
    )
    defaults.update(overrides)
    return RunResult(**defaults)


class TestMetrics:
    def test_runtime_seconds(self):
        assert make_result().runtime_s == pytest.approx(1e-5)

    def test_ipc(self):
        r = make_result()
        assert r.ipc == pytest.approx(120_000 / (10_000 * 60))

    def test_ipc_zero_cycles(self):
        assert make_result(completion_cycles=0).ipc == 0.0

    def test_offered_load(self):
        r = make_result()
        assert r.offered_load == pytest.approx(1000 / (10_000 * 64))

    def test_broadcast_fraction(self):
        assert make_result().receiver_broadcast_fraction == pytest.approx(0.4)

    def test_unicasts_per_broadcast(self):
        assert make_result().unicasts_per_broadcast == pytest.approx(30.0)

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            make_result(completion_cycles=-1)

    def test_summary_keys(self):
        s = make_result().summary()
        assert set(s) >= {"app", "network", "cycles", "ipc", "offered_load"}


class TestSerialization:
    def test_pickle_roundtrip(self):
        """The experiment cache pickles results; everything must survive."""
        r = make_result()
        r2 = pickle.loads(pickle.dumps(r))
        assert r2.completion_cycles == r.completion_cycles
        assert r2.network_stats.as_dict() == r.network_stats.as_dict()
        assert r2.cache_counters == r.cache_counters
        assert r2.summary() == r.summary()
