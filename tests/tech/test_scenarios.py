"""Unit tests for the Table IV technology scenarios."""

import pytest

from repro.tech.photonics import PhotonicParams
from repro.tech.scenarios import (
    ALL_SCENARIOS,
    SCENARIO_ATACP,
    SCENARIO_CONS,
    SCENARIO_IDEAL,
    SCENARIO_RINGTUNED,
    TechScenario,
)


class TestTableIV:
    def test_four_flavors_in_paper_order(self):
        assert [s.name for s in ALL_SCENARIOS] == [
            "ATAC+(Ideal)", "ATAC+", "ATAC+(RingTuned)", "ATAC+(Cons)",
        ]

    def test_ideal_row(self):
        s = SCENARIO_IDEAL
        assert s.ideal_devices and s.laser_power_gated and s.athermal_rings

    def test_atacp_row(self):
        s = SCENARIO_ATACP
        assert not s.ideal_devices and s.laser_power_gated and s.athermal_rings

    def test_ringtuned_row(self):
        s = SCENARIO_RINGTUNED
        assert not s.ideal_devices and s.laser_power_gated
        assert not s.athermal_rings

    def test_cons_row(self):
        s = SCENARIO_CONS
        assert not s.ideal_devices
        assert not s.laser_power_gated
        assert not s.athermal_rings

    def test_each_step_drops_exactly_one_feature(self):
        """Ideal -> ATAC+ -> RingTuned -> Cons: a feature ladder."""
        features = [
            (s.ideal_devices, s.athermal_rings, s.laser_power_gated)
            for s in ALL_SCENARIOS
        ]
        counts = [sum(f) for f in features]
        assert counts == [3, 2, 1, 0]


class TestParamResolution:
    def test_ideal_scenario_idealizes_devices(self):
        p = SCENARIO_IDEAL.photonic_params()
        assert p.laser_efficiency == 1.0
        assert p.waveguide_loss_db_per_cm == 0.0

    def test_practical_scenarios_keep_table_ii(self):
        base = PhotonicParams()
        for s in (SCENARIO_ATACP, SCENARIO_RINGTUNED, SCENARIO_CONS):
            p = s.photonic_params(base)
            assert p == base

    def test_custom_base_flows_through(self):
        lossy = PhotonicParams(waveguide_loss_db_per_cm=3.0)
        assert SCENARIO_ATACP.photonic_params(lossy) == lossy
        # Ideal overrides losses regardless of the base
        assert SCENARIO_IDEAL.photonic_params(lossy).waveguide_loss_db_per_cm == 0.0

    def test_invalid_base_rejected(self):
        bad = PhotonicParams(laser_efficiency=2.0)
        with pytest.raises(ValueError):
            SCENARIO_ATACP.photonic_params(bad)
