"""Unit tests for the 11 nm transistor model (paper Table III)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.tech.transistor import TransistorModel, TECH_11NM


class TestTableIIIParameters:
    """The default model must match Table III verbatim."""

    def test_supply_voltage(self):
        assert TECH_11NM.vdd_v == 0.6

    def test_gate_length(self):
        assert TECH_11NM.gate_length_nm == 14.0

    def test_contacted_gate_pitch(self):
        assert TECH_11NM.contacted_gate_pitch_nm == 44.0

    def test_gate_cap(self):
        assert TECH_11NM.gate_cap_ff_per_um == 2.420

    def test_drain_cap(self):
        assert TECH_11NM.drain_cap_ff_per_um == 1.150

    def test_on_currents(self):
        assert TECH_11NM.ion_n_ua_per_um == 739.0
        assert TECH_11NM.ion_p_ua_per_um == 668.0

    def test_off_current(self):
        assert TECH_11NM.ioff_na_per_um == 1.0

    def test_validate_passes(self):
        TECH_11NM.validate()


class TestDerivedQuantities:
    def test_cap_per_um(self):
        # 2.42 + 1.15 = 3.57 fF/um
        assert TECH_11NM.cap_per_um_f == pytest.approx(3.57e-15)

    def test_switch_energy(self):
        # C * V^2 = 3.57 fF * 0.36 V^2 = 1.285 fJ/um
        assert TECH_11NM.switch_energy_per_um_j == pytest.approx(1.2852e-15)

    def test_leakage_power(self):
        # 1 nA/um * 0.6 V = 0.6 nW/um
        assert TECH_11NM.leakage_power_per_um_w == pytest.approx(0.6e-9)

    def test_drive_resistance(self):
        # V / I_avg = 0.6 / 703.5 uA ~= 853 ohm*um
        r = TECH_11NM.drive_resistance_ohm_um
        assert 800 < r < 900

    def test_driver_resistance_scales_inversely_with_width(self):
        r1 = TECH_11NM.driver_resistance_ohm(1.0)
        r2 = TECH_11NM.driver_resistance_ohm(2.0)
        assert r1 == pytest.approx(2.0 * r2)

    def test_fo4_delay_is_a_few_picoseconds(self):
        # Deeply-scaled FO4 delays are in the low single-digit ps.
        fo4 = TECH_11NM.fo4_delay_s
        assert 1e-12 < fo4 < 20e-12

    def test_fo4_leaves_margin_at_1ghz(self):
        # A 1 GHz cycle (Table I) is hundreds of FO4s -- the paper's
        # "clock frequencies are relatively slow" premise.
        assert 1e-9 / TECH_11NM.fo4_delay_s > 50

    def test_gate_cap_scales_with_width(self):
        assert TECH_11NM.gate_cap_f(2.0) == pytest.approx(2 * TECH_11NM.gate_cap_f(1.0))


class TestValidation:
    def test_zero_width_driver_rejected(self):
        with pytest.raises(ValueError):
            TECH_11NM.driver_resistance_ohm(0.0)

    def test_negative_vdd_rejected(self):
        with pytest.raises(ValueError):
            TransistorModel(vdd_v=-0.1).validate()

    def test_negative_ioff_rejected(self):
        with pytest.raises(ValueError):
            TransistorModel(ioff_na_per_um=-1.0).validate()

    def test_pitch_below_gate_length_rejected(self):
        with pytest.raises(ValueError):
            TransistorModel(contacted_gate_pitch_nm=10.0).validate()


class TestProperties:
    @given(
        vdd=st.floats(0.3, 1.2),
        cg=st.floats(0.5, 5.0),
        cd=st.floats(0.2, 3.0),
    )
    def test_switch_energy_is_cv2(self, vdd, cg, cd):
        m = TransistorModel(vdd_v=vdd, gate_cap_ff_per_um=cg, drain_cap_ff_per_um=cd)
        expected = (cg + cd) * 1e-15 * vdd**2
        assert m.switch_energy_per_um_j == pytest.approx(expected)

    @given(vdd=st.floats(0.3, 1.2))
    def test_energy_monotonic_in_vdd(self, vdd):
        lo = TransistorModel(vdd_v=vdd)
        hi = TransistorModel(vdd_v=vdd * 1.1)
        assert hi.switch_energy_per_um_j > lo.switch_energy_per_um_j

    @given(w=st.floats(0.05, 100.0))
    def test_fo4_independentish_of_width_scaling(self, w):
        """FO4 is a ratio metric: scaling min width leaves it unchanged."""
        base = TransistorModel()
        scaled = TransistorModel(min_width_um=w)
        assert scaled.fo4_delay_s == pytest.approx(base.fo4_delay_s, rel=1e-9)
