"""Unit tests for McPAT-like cache models and the first-order core model."""

import pytest
from hypothesis import given, strategies as st

from repro.tech.caches import (
    CacheGeometry,
    CacheModel,
    directory_cache,
    l1d_cache,
    l1i_cache,
    l2_cache,
)
from repro.tech.core import CorePowerModel


class TestCacheGeometry:
    def test_table_i_l1(self):
        g = l1d_cache().geometry
        assert g.capacity_bytes == 32 * 1024
        assert g.line_bytes == 64

    def test_table_i_l2(self):
        g = l2_cache().geometry
        assert g.capacity_bytes == 256 * 1024

    def test_line_and_set_counts(self):
        g = CacheGeometry(capacity_bytes=64 * 1024, associativity=4, line_bytes=64)
        assert g.n_lines == 1024
        assert g.n_sets == 256

    def test_total_bits_includes_overhead(self):
        g = CacheGeometry(
            capacity_bytes=1024, associativity=1, line_bytes=64,
            overhead_bits_per_line=48,
        )
        assert g.total_bits == 16 * (512 + 48)

    def test_rejects_nonmultiple_capacity(self):
        with pytest.raises(ValueError):
            CacheGeometry(capacity_bytes=1000, line_bytes=64)

    def test_rejects_bad_associativity(self):
        with pytest.raises(ValueError):
            CacheGeometry(capacity_bytes=1024, associativity=0)
        with pytest.raises(ValueError):
            CacheGeometry(capacity_bytes=64 * 3, associativity=2, line_bytes=64)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            CacheGeometry(capacity_bytes=0)


class TestCacheModelEnergy:
    def test_l1_read_energy_few_pj(self):
        e = l1d_cache().read_energy_j(data_bits=64)
        assert 1e-12 < e < 20e-12

    def test_l2_read_energy_tens_of_pj(self):
        e = l2_cache().read_energy_j()
        assert 5e-12 < e < 100e-12

    def test_write_costs_more_than_read(self):
        c = l2_cache()
        assert c.write_energy_j() > c.read_energy_j()

    def test_tag_probe_cheaper_than_read(self):
        c = l2_cache()
        assert c.tag_probe_energy_j() < c.read_energy_j()

    def test_narrow_access_cheaper(self):
        c = l1d_cache()
        assert c.read_energy_j(data_bits=64) < c.read_energy_j(data_bits=512)

    def test_leakage_scales_with_capacity(self):
        small = CacheModel(CacheGeometry(32 * 1024))
        big = CacheModel(CacheGeometry(256 * 1024))
        ratio = big.leakage_power_w() / small.leakage_power_w()
        assert ratio == pytest.approx(8.0, rel=0.05)

    def test_area_scales_with_capacity(self):
        small = CacheModel(CacheGeometry(32 * 1024))
        big = CacheModel(CacheGeometry(256 * 1024))
        assert big.area_mm2() / small.area_mm2() == pytest.approx(8.0, rel=0.05)

    def test_chipwide_cache_area_dominates(self):
        """Paper Fig 10: caches dominate chip area (~90%).

        1024 cores x (L1I + L1D + L2) should land in the hundreds of
        mm^2 -- an order of magnitude above the ~40 mm^2 of photonics.
        """
        per_core = (
            l1i_cache().area_mm2() + l1d_cache().area_mm2() + l2_cache().area_mm2()
        )
        assert 100 < per_core * 1024 < 1000


class TestDirectoryCache:
    def test_entry_grows_with_sharers(self):
        d4 = directory_cache(1024, hardware_sharers=4)
        d1024 = directory_cache(1024, hardware_sharers=1024)
        assert d1024.geometry.total_bits > d4.geometry.total_bits

    def test_energy_grows_with_sharers(self):
        """Fig 16's mechanism: directory energy ~ linear in k."""
        d4 = directory_cache(1024, hardware_sharers=4)
        d1024 = directory_cache(1024, hardware_sharers=1024)
        assert d1024.read_energy_j(0) > 10 * d4.read_energy_j(0)
        assert d1024.leakage_power_w() > 10 * d4.leakage_power_w()

    def test_full_map_vs_ackwise4_area_factor(self):
        """ACKwise4 directory is far smaller than a full-map (bit-vector)
        directory for 1024 cores."""
        d4 = directory_cache(4096, hardware_sharers=4)
        dfull = directory_cache(4096, hardware_sharers=1024)
        assert dfull.area_mm2() / d4.area_mm2() > 5

    def test_full_map_caps_at_bit_vector(self):
        """Past n_cores presence bits, pointers stop growing: k=1024 and
        k=2048 directories are identical for a 1024-core chip."""
        a = directory_cache(4096, hardware_sharers=1024, n_cores=1024)
        b = directory_cache(4096, hardware_sharers=2048, n_cores=1024)
        assert a.geometry.total_bits == b.geometry.total_bits

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            directory_cache(1024, hardware_sharers=0)
        with pytest.raises(ValueError):
            directory_cache(0, hardware_sharers=4)


class TestCorePowerModel:
    def test_defaults_match_paper(self):
        m = CorePowerModel()
        assert m.peak_power_w == pytest.approx(20e-3)
        assert m.ndd_fraction == 0.10

    def test_power_partition(self):
        m = CorePowerModel(ndd_fraction=0.4)
        assert m.ndd_power_w == pytest.approx(8e-3)
        assert m.peak_dd_power_w == pytest.approx(12e-3)

    def test_dd_power_scales_with_ipc(self):
        """Paper: 'if the IPC is 0.25, the runtime DD power is 25% of peak DD'."""
        m = CorePowerModel()
        assert m.dd_power_w(0.25) == pytest.approx(0.25 * m.peak_dd_power_w)

    def test_dd_power_saturates_at_ipc_1(self):
        m = CorePowerModel()
        assert m.dd_power_w(2.0) == m.peak_dd_power_w

    def test_dd_energy_independent_of_runtime(self):
        """Same instruction count => same DD energy on any architecture."""
        m = CorePowerModel()
        assert m.dd_energy_j(10_000) == m.dd_energy_j(10_000)
        # equivalent formulations: P_dd(ipc) * T == E_dd(instructions)
        instructions, freq = 1_000_000, 1e9
        runtime = 4 * instructions / freq  # IPC = 0.25
        via_power = m.dd_power_w(0.25) * runtime
        assert m.dd_energy_j(instructions, freq) == pytest.approx(via_power)

    def test_ndd_energy_scales_with_runtime(self):
        """A slower architecture burns strictly more core NDD energy."""
        m = CorePowerModel()
        assert m.ndd_energy_j(2e-3) == pytest.approx(2 * m.ndd_energy_j(1e-3))

    def test_total_energy_composition(self):
        m = CorePowerModel()
        t, n = 1e-3, 500_000
        assert m.total_energy_j(t, n) == pytest.approx(
            m.ndd_energy_j(t) + m.dd_energy_j(n)
        )

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            CorePowerModel(peak_power_w=0.0)
        with pytest.raises(ValueError):
            CorePowerModel(ndd_fraction=1.5)
        with pytest.raises(ValueError):
            CorePowerModel().dd_power_w(-0.1)
        with pytest.raises(ValueError):
            CorePowerModel().ndd_energy_j(-1.0)
        with pytest.raises(ValueError):
            CorePowerModel().dd_energy_j(-5)

    @given(
        runtime_a=st.floats(1e-4, 1e-2),
        slowdown=st.floats(1.01, 5.0),
        ndd_frac=st.floats(0.05, 0.95),
    )
    def test_faster_network_always_saves_core_energy(
        self, runtime_a, slowdown, ndd_frac
    ):
        """The paper's closing insight as an invariant: with identical
        instruction counts, the architecture that finishes faster has
        strictly lower total core energy."""
        m = CorePowerModel(ndd_fraction=ndd_frac)
        instructions = 1_000_000
        fast = m.total_energy_j(runtime_a, instructions)
        slow = m.total_energy_j(runtime_a * slowdown, instructions)
        assert slow > fast
