"""Unit tests for photonic device/link models (Table II, Section II/IV-A)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.tech.photonics import (
    OnetGeometry,
    OpticalLinkModel,
    PhotonicParams,
    db_to_linear,
)


class TestTableIIParameters:
    def test_defaults_match_table_ii(self):
        p = PhotonicParams()
        assert p.laser_efficiency == 0.30
        assert p.waveguide_pitch_um == 4.0
        assert p.waveguide_loss_db_per_cm == 0.2
        assert p.waveguide_nonlinearity_limit_mw == 30.0
        assert p.ring_through_loss_db == 0.0001
        assert p.ring_drop_loss_db == 1.0
        assert p.ring_area_um2 == 100.0
        assert p.photodetector_responsivity_a_per_w == 1.1

    def test_validate_passes(self):
        PhotonicParams().validate()

    def test_validate_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            PhotonicParams(laser_efficiency=0.0).validate()
        with pytest.raises(ValueError):
            PhotonicParams(laser_efficiency=1.5).validate()

    def test_validate_rejects_negative_loss(self):
        with pytest.raises(ValueError):
            PhotonicParams(waveguide_loss_db_per_cm=-0.1).validate()

    def test_ideal_variant(self):
        ideal = PhotonicParams().ideal()
        assert ideal.laser_efficiency == 1.0
        assert ideal.waveguide_loss_db_per_cm == 0.0
        assert ideal.ring_drop_loss_db == 0.0
        ideal.validate()

    def test_receiver_sensitivity_conversion(self):
        p = PhotonicParams(receiver_sensitivity_ua=11.0)
        assert p.receiver_sensitivity_w == pytest.approx(10e-6, rel=1e-3)


class TestDbConversion:
    def test_zero_db_is_unity(self):
        assert db_to_linear(0.0) == 1.0

    def test_three_db_doubles(self):
        assert db_to_linear(3.0103) == pytest.approx(2.0, rel=1e-4)

    @given(a=st.floats(0, 20), b=st.floats(0, 20))
    def test_db_adds_linear_multiplies(self, a, b):
        assert db_to_linear(a + b) == pytest.approx(
            db_to_linear(a) * db_to_linear(b), rel=1e-9
        )


class TestOpticalLinkModel:
    def test_laser_power_linear_in_receivers(self):
        """Section IV: broadcast laser power ~ linear in receiver count."""
        link = OpticalLinkModel()
        p1 = link.optical_power_w(1)
        p63 = link.optical_power_w(63)
        assert p63 == pytest.approx(63 * p1)

    def test_zero_targets_zero_power(self):
        assert OpticalLinkModel().optical_power_w(0) == 0.0

    def test_rejects_out_of_range_targets(self):
        link = OpticalLinkModel(n_receivers=63)
        with pytest.raises(ValueError):
            link.optical_power_w(64)
        with pytest.raises(ValueError):
            link.optical_power_w(-1)

    def test_electrical_exceeds_optical_by_efficiency(self):
        link = OpticalLinkModel()
        assert link.electrical_laser_power_w(1) == pytest.approx(
            link.optical_power_w(1) / 0.30
        )

    def test_idle_power_zero_when_gated(self):
        assert OpticalLinkModel().idle_power_w(power_gated=True) == 0.0

    def test_idle_power_is_broadcast_power_ungated(self):
        """Cons scenario: idle laser stuck at worst-case broadcast power."""
        link = OpticalLinkModel()
        assert link.idle_power_w(power_gated=False) == pytest.approx(
            link.broadcast_power_w()
        )

    def test_on_chip_laser_avoids_coupling_loss(self):
        on = OpticalLinkModel(on_chip_laser=True)
        off = OpticalLinkModel(on_chip_laser=False)
        assert off.path_loss_db() - on.path_loss_db() == pytest.approx(
            PhotonicParams().coupling_loss_db
        )

    def test_ideal_devices_minimize_power(self):
        real = OpticalLinkModel()
        ideal = OpticalLinkModel(params=PhotonicParams().ideal())
        assert ideal.unicast_power_w() < real.unicast_power_w()

    def test_nonlinearity_check_default_geometry(self):
        assert OpticalLinkModel().check_nonlinearity()

    @given(loss=st.floats(0.0, 3.0))
    def test_power_monotonic_in_waveguide_loss(self, loss):
        base = OpticalLinkModel(params=PhotonicParams(waveguide_loss_db_per_cm=loss))
        more = OpticalLinkModel(
            params=PhotonicParams(waveguide_loss_db_per_cm=loss + 0.5)
        )
        assert more.unicast_power_w() > base.unicast_power_w()

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            OpticalLinkModel(n_receivers=0)
        with pytest.raises(ValueError):
            OpticalLinkModel(waveguide_length_cm=0.0)
        with pytest.raises(ValueError):
            OpticalLinkModel(n_rings_passed=-1)


class TestOnetGeometry:
    def test_ring_count_matches_paper(self):
        """Paper Section V-C: ~260K rings in the 64-hub, 64-bit ATAC+.

        Data rings alone: 64 hubs x 64 hubs x 64 waveguides = 262,144;
        our count adds the select-link rings on top.
        """
        g = OnetGeometry()
        data_rings = 64 * 64 * 64
        assert g.n_rings >= data_rings
        assert g.n_rings < data_rings * 1.2

    def test_select_width_is_log2_hubs(self):
        g = OnetGeometry(n_hubs=64)
        assert g.select_width_bits == math.ceil(math.log2(64))

    def test_ring_tuning_power_zero_when_athermal(self):
        assert OnetGeometry().ring_tuning_power_w(athermal=True) == 0.0

    def test_ring_tuning_power_scales_with_rings(self):
        g = OnetGeometry()
        expected = g.n_rings * 5e-6
        assert g.ring_tuning_power_w(athermal=False) == pytest.approx(expected)

    def test_photonics_area_near_paper_40mm2(self):
        """Paper Section V-D: waveguides + devices occupy ~40 mm^2."""
        area = OnetGeometry().photonics_area_mm2()
        assert 25 < area < 60

    def test_area_roughly_linear_in_flit_width(self):
        """Paper: 256-bit flit width -> ~160 mm^2 (4x the 64-bit area)."""
        a64 = OnetGeometry(data_width_bits=64).photonics_area_mm2()
        a256 = OnetGeometry(data_width_bits=256).photonics_area_mm2()
        assert 3.0 < a256 / a64 < 4.5

    def test_data_link_has_63_receivers(self):
        link = OnetGeometry().data_link()
        assert link.n_receivers == 63

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            OnetGeometry(n_hubs=1)
        with pytest.raises(ValueError):
            OnetGeometry(data_width_bits=0)


class TestNonlinearityAndTransitions:
    """Extensions: power-cap-aware broadcasts and laser settle energy."""

    def test_single_group_at_baseline_loss(self):
        link = OnetGeometry().data_link()
        assert link.broadcast_groups() == 1

    def test_splitting_kicks_in_at_high_loss(self):
        lossy = PhotonicParams(waveguide_loss_db_per_cm=8.0)
        link = OnetGeometry(params=lossy).data_link()
        assert link.broadcast_groups() > 1

    def test_groups_cover_all_receivers(self):
        for loss in (0.2, 2.0, 6.0):
            link = OnetGeometry(
                params=PhotonicParams(waveguide_loss_db_per_cm=loss)
            ).data_link()
            per_shot = link.max_receivers_per_transmission()
            groups = link.broadcast_groups()
            assert per_shot * groups >= link.n_receivers
            # each shot respects the nonlinearity limit
            limit_w = link.params.waveguide_nonlinearity_limit_mw * 1e-3
            assert link.optical_power_w(per_shot) <= limit_w + 1e-12

    def test_infeasible_link_degenerates_to_one_receiver(self):
        """Past the point where even one receiver exceeds the limit,
        the split floor is one receiver per shot (the link is simply
        infeasible at such losses; the model reports the floor)."""
        link = OnetGeometry(
            params=PhotonicParams(waveguide_loss_db_per_cm=10.0)
        ).data_link()
        assert link.max_receivers_per_transmission() == 1
        assert link.broadcast_groups() == link.n_receivers
        assert not link.check_nonlinearity()

    def test_max_receivers_never_exceeds_population(self):
        link = OnetGeometry(params=PhotonicParams().ideal()).data_link()
        assert link.max_receivers_per_transmission() <= link.n_receivers

    def test_transition_energy_positive_and_small(self):
        link = OnetGeometry().data_link()
        e = link.transition_energy_j()
        assert 0 < e < 1e-12  # well below a picojoule per channel
