"""Unit tests for the DSENT-like router/link/hub/receive-net models."""

import pytest
from hypothesis import given, strategies as st

from repro.tech.dsent import HubModel, LinkModel, ReceiveNetModel, RouterModel


class TestLinkModel:
    def test_energy_scales_linearly_with_width(self):
        e64 = LinkModel(width_bits=64).dynamic_energy_j()
        e128 = LinkModel(width_bits=128).dynamic_energy_j()
        assert e128 == pytest.approx(2 * e64)

    def test_energy_scales_linearly_with_length(self):
        e1 = LinkModel(length_mm=1.0).dynamic_energy_j()
        e2 = LinkModel(length_mm=2.0).dynamic_energy_j()
        assert e2 == pytest.approx(2 * e1)

    def test_flit_energy_magnitude(self):
        """A 64-bit flit over a sub-mm mesh hop costs ~0.1-10 pJ."""
        e = LinkModel().dynamic_energy_j()
        assert 0.1e-12 < e < 10e-12

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            LinkModel(width_bits=0)

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            LinkModel(length_mm=-1.0)

    def test_leakage_and_area_positive(self):
        l = LinkModel()
        assert l.leakage_power_w() > 0
        assert l.area_mm2() > 0


class TestRouterModel:
    def test_flit_energy_decomposition(self):
        r = RouterModel()
        assert r.flit_energy_j() == pytest.approx(
            r.buffer_write_energy_j() + r.buffer_read_energy_j() + r.crossbar_energy_j()
        )

    def test_flit_energy_magnitude(self):
        """Router traversal ~0.1-5 pJ per 64-bit flit at 11 nm."""
        assert 0.05e-12 < RouterModel().flit_energy_j() < 5e-12

    def test_buffer_read_cheaper_than_write(self):
        r = RouterModel()
        assert r.buffer_read_energy_j() < r.buffer_write_energy_j()

    def test_clock_power_ungated_by_default(self):
        r = RouterModel()
        assert r.clock_power_w() > 0

    def test_clock_gating_reduces_power(self):
        r = RouterModel()
        assert r.clock_power_w(gated_fraction=0.9) == pytest.approx(
            0.1 * r.clock_power_w()
        )

    def test_full_gating_zeroes_clock(self):
        assert RouterModel().clock_power_w(gated_fraction=1.0) == 0.0

    def test_invalid_gated_fraction(self):
        with pytest.raises(ValueError):
            RouterModel().clock_power_w(gated_fraction=1.5)

    def test_wider_router_costs_more(self):
        assert (
            RouterModel(width_bits=128).flit_energy_j()
            > RouterModel(width_bits=64).flit_energy_j()
        )

    def test_higher_radix_costs_more(self):
        assert (
            RouterModel(n_ports=8).crossbar_energy_j()
            > RouterModel(n_ports=5).crossbar_energy_j()
        )

    def test_buffer_bits_accounting(self):
        r = RouterModel(n_ports=5, width_bits=64, buffer_depth_flits=4)
        assert r.n_buffer_bits == 5 * 4 * 64

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            RouterModel(n_ports=1)
        with pytest.raises(ValueError):
            RouterModel(buffer_depth_flits=0)
        with pytest.raises(ValueError):
            RouterModel(width_bits=-1)

    @given(depth=st.integers(1, 16))
    def test_ndd_costs_scale_with_buffering(self, depth):
        shallow = RouterModel(buffer_depth_flits=1)
        r = RouterModel(buffer_depth_flits=depth)
        assert r.clock_power_w() >= shallow.clock_power_w()
        assert r.leakage_power_w() >= shallow.leakage_power_w()


class TestHubModel:
    def test_hub_cheaper_than_mesh_router(self):
        """The 3-port hub datapath costs less per flit than a 5-port router."""
        assert HubModel().flit_energy_j() < RouterModel(n_ports=5).flit_energy_j()

    def test_hub_ndd_positive(self):
        h = HubModel()
        assert h.clock_power_w() > 0
        assert h.leakage_power_w() > 0
        assert h.area_mm2() > 0


class TestReceiveNetModel:
    """The Section IV-B BNet vs StarNet energy relationships."""

    def test_starnet_unicast_much_cheaper_than_bnet(self):
        bnet = ReceiveNetModel(kind="bnet")
        star = ReceiveNetModel(kind="starnet")
        ratio = bnet.unicast_energy_j() / star.unicast_energy_j()
        # paper: StarNet unicast ~ 1/8th of BNet
        assert ratio == pytest.approx(8.0, rel=0.05)

    def test_starnet_broadcast_twice_bnet(self):
        bnet = ReceiveNetModel(kind="bnet")
        star = ReceiveNetModel(kind="starnet")
        ratio = star.broadcast_energy_j() / bnet.broadcast_energy_j()
        # paper: StarNet broadcast ~ 2x BNet
        assert ratio == pytest.approx(2.0, rel=0.05)

    def test_bnet_unicast_equals_bnet_broadcast(self):
        """A fanout tree burns the same energy regardless of recipients."""
        bnet = ReceiveNetModel(kind="bnet")
        assert bnet.unicast_energy_j() == pytest.approx(bnet.broadcast_energy_j())

    def test_starnet_broadcast_is_cluster_size_unicasts(self):
        star = ReceiveNetModel(kind="starnet", cluster_size=16)
        assert star.broadcast_energy_j() == pytest.approx(16 * star.unicast_energy_j())

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            ReceiveNetModel(kind="busnet")

    def test_rejects_empty_cluster(self):
        with pytest.raises(ValueError):
            ReceiveNetModel(cluster_size=0)

    def test_area_negligible_vs_caches(self):
        """Paper: replacing BNet with StarNet has negligible area cost."""
        star = ReceiveNetModel(kind="starnet")
        bnet = ReceiveNetModel(kind="bnet")
        assert abs(star.area_mm2() - bnet.area_mm2()) < 0.2
