"""Unit tests for electrical circuit primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.tech.electrical import (
    DEFAULT_ACTIVITY,
    InverterModel,
    RegisterModel,
    WireModel,
    arbiter_energy_j,
    crossbar_energy_per_bit_j,
    demux_energy_per_bit_j,
)


class TestWireModel:
    def test_energy_per_bit_mm_magnitude(self):
        """Repeated-wire energy at 11nm/0.6V should be tens of fJ/bit/mm."""
        e = WireModel().energy_per_bit_mm_j()
        assert 5e-15 < e < 100e-15

    def test_energy_scales_with_activity(self):
        w = WireModel()
        assert w.energy_per_bit_mm_j(0.5) == pytest.approx(
            2 * w.energy_per_bit_mm_j(0.25)
        )

    def test_zero_activity_zero_energy(self):
        assert WireModel().energy_per_bit_mm_j(0.0) == 0.0

    def test_leakage_positive(self):
        assert WireModel().leakage_power_per_bit_mm_w() > 0

    def test_area_uses_pitch(self):
        w = WireModel(wire_pitch_um=0.2)
        assert w.area_per_bit_mm_um2() == pytest.approx(200.0)

    @given(length_scale=st.floats(0.1, 10.0))
    def test_repeater_overhead_increases_energy(self, length_scale):
        bare = WireModel(repeater_overhead=0.0)
        repeated = WireModel(repeater_overhead=0.35)
        assert repeated.energy_per_bit_mm_j() > bare.energy_per_bit_mm_j()


class TestInverterModel:
    def test_energy_scales_with_width(self):
        small = InverterModel(width_um=0.15)
        big = InverterModel(width_um=1.5)
        assert big.switch_energy_j() == pytest.approx(10 * small.switch_energy_j())

    def test_leakage_half_width(self):
        inv = InverterModel(width_um=1.0)
        assert inv.leakage_power_w() == pytest.approx(0.5 * 1.0 * 0.6e-9)

    def test_area_positive(self):
        assert InverterModel().area_um2() > 0


class TestRegisterModel:
    def test_clock_energy_burned_every_cycle(self):
        """Clock energy must be nonzero -- it is the NDD archetype."""
        assert RegisterModel().clock_energy_per_cycle_j() > 0

    def test_write_energy_positive(self):
        assert RegisterModel().write_energy_j() > 0

    def test_clock_fraction_partitions_width(self):
        r = RegisterModel(width_um=1.0, clock_cap_fraction=0.3)
        # clock part: full-swing on 0.3 um; data part: half-swing avg on 0.7 um
        assert r.clock_energy_per_cycle_j() == pytest.approx(0.3 * 1.2852e-15)
        assert r.write_energy_j() == pytest.approx(0.5 * 0.7 * 1.2852e-15)

    def test_register_costs_more_than_inverter(self):
        assert RegisterModel().write_energy_j() > InverterModel().switch_energy_j()


class TestCombinational:
    def test_crossbar_energy_grows_with_ports(self):
        e5 = crossbar_energy_per_bit_j(5)
        e10 = crossbar_energy_per_bit_j(10)
        assert e10 > e5

    def test_crossbar_rejects_single_port(self):
        with pytest.raises(ValueError):
            crossbar_energy_per_bit_j(1)

    def test_arbiter_energy_grows_with_requests(self):
        assert arbiter_energy_j(16) > arbiter_energy_j(2)

    def test_arbiter_rejects_zero(self):
        with pytest.raises(ValueError):
            arbiter_energy_j(0)

    def test_demux_cheaper_than_crossbar(self):
        """A 1-to-16 demux branch is far cheaper than a 16-port crossbar."""
        assert demux_energy_per_bit_j(16) < crossbar_energy_per_bit_j(16)

    def test_demux_rejects_zero_fanout(self):
        with pytest.raises(ValueError):
            demux_energy_per_bit_j(0)

    @given(fanout=st.integers(1, 1024))
    def test_demux_energy_grows_slowly(self, fanout):
        """Demux select cost is logarithmic: 1024-way < 8x the 2-way cost."""
        assert demux_energy_per_bit_j(fanout) <= 8 * demux_energy_per_bit_j(2)
