"""Runner / spec / store tests: determinism, versioning, accounting."""

import json

import pytest

from repro.experiments import runspec as runspec_mod
from repro.experiments.runner import Runner, default_jobs, run_specs
from repro.experiments.runspec import CACHE_SCHEMA_VERSION, LoadPointSpec, RunSpec
from repro.experiments.store import ResultStore, cache_enabled
from repro.sim.results import RunResult

#: tiny grid: 2 apps x 2 networks, small mesh, short traces
APPS = ("lu_contig", "barnes")
NETS = ("atac+", "emesh-bcast")


def tiny_specs():
    return [
        RunSpec(app=a, network=n, mesh_width=8, scale=0.1)
        for a in APPS for n in NETS
    ]


@pytest.fixture(autouse=True)
def isolated_cache(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    return tmp_path


def canonical(results):
    return [json.dumps(r.to_dict(), sort_keys=True) for r in results]


class TestRunSpec:
    def test_hash_is_deterministic(self):
        a = RunSpec(app="barnes", mesh_width=8, scale=0.1)
        b = RunSpec(app="barnes", mesh_width=8, scale=0.1)
        assert a.content_hash() == b.content_hash()

    def test_hash_distinguishes_every_field(self):
        base = RunSpec(app="barnes", mesh_width=8, scale=0.1)
        variants = [
            RunSpec(app="radix", mesh_width=8, scale=0.1),
            RunSpec(app="barnes", network="emesh-pure", mesh_width=8, scale=0.1),
            RunSpec(app="barnes", mesh_width=16, scale=0.1),
            RunSpec(app="barnes", mesh_width=8, scale=0.2),
            RunSpec(app="barnes", mesh_width=8, scale=0.1, protocol="dirkb"),
            RunSpec(app="barnes", mesh_width=8, scale=0.1, hardware_sharers=8),
            RunSpec(app="barnes", mesh_width=8, scale=0.1, rthres=0),
            RunSpec(app="barnes", mesh_width=8, scale=0.1, flit_bits=32),
            RunSpec(app="barnes", mesh_width=8, scale=0.1, receive_net="bnet"),
            RunSpec(app="barnes", mesh_width=8, scale=0.1, seed=7),
        ]
        hashes = {base.content_hash()} | {v.content_hash() for v in variants}
        assert len(hashes) == len(variants) + 1

    def test_hash_includes_schema_version(self, monkeypatch):
        before = RunSpec(app="barnes", mesh_width=8, scale=0.1).content_hash()
        monkeypatch.setattr(runspec_mod, "CACHE_SCHEMA_VERSION",
                            CACHE_SCHEMA_VERSION + 1)
        after = RunSpec(app="barnes", mesh_width=8, scale=0.1).content_hash()
        assert before != after

    def test_hash_includes_package_version(self, monkeypatch):
        before = RunSpec(app="barnes", mesh_width=8, scale=0.1).content_hash()
        monkeypatch.setattr(runspec_mod, "__version__", "0.0.0-test")
        after = RunSpec(app="barnes", mesh_width=8, scale=0.1).content_hash()
        assert before != after

    def test_roundtrip_dict(self):
        spec = RunSpec(app="barnes", mesh_width=8, scale=0.1, protocol="dirkb")
        again = RunSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.content_hash() == spec.content_hash()

    def test_validation(self):
        with pytest.raises(KeyError):
            RunSpec(app="doom")
        with pytest.raises(ValueError):
            RunSpec(app="barnes", network="tin-cans")
        with pytest.raises(ValueError):
            RunSpec(app="barnes", scale=0.0)

    def test_protocol_string_normalized(self):
        from repro.coherence.directory import Protocol

        spec = RunSpec(app="barnes", mesh_width=8, scale=0.1, protocol="ackwise")
        assert spec.protocol is Protocol.ACKWISE


class TestStore:
    def test_roundtrip(self, tmp_path):
        spec = RunSpec(app="lu_contig", mesh_width=8, scale=0.1)
        result = spec.execute()
        store = ResultStore()
        store.save(spec, result)
        loaded = store.load(spec)
        assert isinstance(loaded, RunResult)
        assert canonical([loaded]) == canonical([result])

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        spec = RunSpec(app="lu_contig", mesh_width=8, scale=0.1)
        store = ResultStore()
        path = store.save(spec, spec.execute())
        doc = json.loads(path.read_text())
        doc["schema_version"] = -1
        path.write_text(json.dumps(doc))
        assert store.load(spec) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        spec = RunSpec(app="lu_contig", mesh_width=8, scale=0.1)
        store = ResultStore()
        path = store.save(spec, spec.execute())
        path.write_text("{not json")
        assert store.load(spec) is None

    def test_legacy_pickle_blobs_ignored(self, tmp_path):
        # a stale entry from the old pickle cache must not be loaded
        (tmp_path / "run_deadbeef.pkl").write_bytes(b"\x80\x04oops")
        spec = RunSpec(app="lu_contig", mesh_width=8, scale=0.1)
        store = ResultStore()
        assert store.load(spec) is None
        assert store.entries() == []

    def test_cache_disabled_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert not cache_enabled()


class TestRunnerDeterminism:
    def test_parallel_results_identical_to_serial(self, monkeypatch, tmp_path):
        specs = tiny_specs()
        serial = Runner(jobs=1, store=ResultStore(tmp_path / "a"),
                        progress=False).run(specs)
        parallel = Runner(jobs=4, store=ResultStore(tmp_path / "b"),
                          progress=False).run(specs)
        assert canonical(serial) == canonical(parallel)

    def test_parallel_store_entries_identical_to_serial(self, tmp_path):
        """Byte-level check: the persisted JSON files match exactly."""
        specs = tiny_specs()
        a, b = ResultStore(tmp_path / "a"), ResultStore(tmp_path / "b")
        Runner(jobs=1, store=a, progress=False).run(specs)
        Runner(jobs=4, store=b, progress=False).run(specs)

        def payload_bytes(store):
            out = {}
            for path in store.entries():
                doc = json.loads(path.read_text())
                doc.pop("elapsed_s")  # wall clock differs, content must not
                out[path.name] = json.dumps(doc, sort_keys=True)
            return out

        assert payload_bytes(a) == payload_bytes(b)

    def test_loadpoint_parallel_identical_to_serial(self, tmp_path):
        specs = [
            LoadPointSpec(routing=r, load=l, mesh_width=8,
                          cycles=300, warmup_cycles=50)
            for r in ("cluster", "distance-5", "distance-all")
            for l in (0.02, 0.10)
        ]
        serial = Runner(jobs=1, store=ResultStore(tmp_path / "a"),
                        progress=False).run(specs)
        parallel = Runner(jobs=3, store=ResultStore(tmp_path / "b"),
                          progress=False).run(specs)
        assert serial == parallel


class TestRunnerAccounting:
    def test_miss_then_hit(self):
        specs = tiny_specs()
        r1 = Runner(jobs=2, progress=False)
        r1.run(specs)
        assert r1.last_report.misses == len(specs)
        assert r1.last_report.hits == 0
        assert set(r1.last_report.timings) == {s.content_hash() for s in specs}
        r2 = Runner(jobs=2, progress=False)
        r2.run(specs)
        assert r2.last_report.hits == len(specs)
        assert r2.last_report.misses == 0
        assert r2.last_report.timings == {}

    def test_duplicates_execute_once(self):
        spec = RunSpec(app="lu_contig", mesh_width=8, scale=0.1)
        runner = Runner(jobs=2, progress=False)
        results = runner.run([spec, spec, spec])
        assert runner.last_report.misses == 1
        assert len(results) == 3
        assert canonical(results) == canonical([results[0]] * 3)

    def test_results_align_with_input_order(self):
        specs = tiny_specs()
        results = run_specs(specs, jobs=4, progress=False)
        for spec, res in zip(specs, results):
            assert res.app == spec.app
            # RunResult.network holds the display name (e.g. "ATAC+")
            assert res.network.lower() == spec.network.lower()

    def test_cache_disabled_skips_store(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", "0")
        runner = Runner(jobs=1, progress=False)
        runner.run([RunSpec(app="lu_contig", mesh_width=8, scale=0.1)])
        assert runner.last_report.misses == 1
        assert ResultStore().entries() == []

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            Runner(jobs=0)

    def test_default_jobs_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3
        monkeypatch.delenv("REPRO_JOBS")
        assert default_jobs() >= 1


class TestTraceDeterminism:
    def test_trace_digest_stable_across_calls(self):
        from repro.sim.config import SystemConfig
        from repro.workloads.splash import APP_PROFILES, generate_traces
        from repro.workloads.trace import trace_digest

        config = SystemConfig(network="atac+").scaled(mesh_width=8)
        digests = {
            trace_digest(generate_traces(
                APP_PROFILES["barnes"], config.topology,
                l2_lines=config.l2_sets * config.l2_ways,
                scale=0.1, seed=42,
            ))
            for _ in range(3)
        }
        assert len(digests) == 1
