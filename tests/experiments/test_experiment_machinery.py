"""Unit tests for the experiment machinery and CLI (tiny scale)."""

import os

import pytest

from repro.cli import build_parser, main as cli_main
from repro.coherence.directory import Protocol
from repro.experiments import common
from repro.experiments.common import format_table, make_config, run_app


@pytest.fixture(autouse=True)
def no_disk_cache(monkeypatch, tmp_path):
    """Keep the real run cache pristine; use a temp dir per test.

    The store resolves ``REPRO_CACHE_DIR`` at call time, so the env
    override alone is sufficient.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


class TestMakeConfig:
    def test_full_scale_untouched(self):
        cfg = make_config("atac+", mesh_width=32)
        assert cfg.n_cores == 1024
        assert cfg.l2_sets == 512

    def test_small_scale_shrinks_caches(self):
        cfg = make_config("atac+", mesh_width=8)
        assert cfg.n_cores == 64
        assert cfg.l2_sets < 512

    def test_atac_gets_bnet(self):
        cfg = make_config("atac", mesh_width=8)
        assert cfg.network == "atac"


class TestRunApp:
    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            run_app("doom", mesh_width=8, scale=0.1)

    def test_run_and_cache_roundtrip(self, tmp_path):
        first = run_app("lu_contig", network="atac+", mesh_width=8, scale=0.1)
        cached = run_app("lu_contig", network="atac+", mesh_width=8, scale=0.1)
        assert cached.completion_cycles == first.completion_cycles
        assert cached.network_stats.as_dict() == first.network_stats.as_dict()
        assert list(tmp_path.glob("run_*.json"))

    def test_cache_keys_distinguish_configs(self, tmp_path):
        run_app("lu_contig", network="atac+", mesh_width=8, scale=0.1)
        run_app("lu_contig", network="emesh-pure", mesh_width=8, scale=0.1)
        assert len(list(tmp_path.glob("run_*.json"))) == 2

    def test_protocol_affects_run(self):
        a = run_app("barnes", mesh_width=8, scale=0.15,
                    protocol=Protocol.ACKWISE)
        d = run_app("barnes", mesh_width=8, scale=0.15,
                    protocol=Protocol.DIRKB)
        assert a.protocol == "ackwise" and d.protocol == "dirkb"

    def test_cache_disable_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", "0")
        run_app("lu_contig", network="atac+", mesh_width=8, scale=0.1)
        assert not list(tmp_path.glob("run_*.json"))

    def test_mesh_width_env_read_at_call_time(self, monkeypatch):
        """Setting REPRO_MESH_WIDTH after import must take effect."""
        monkeypatch.setenv("REPRO_MESH_WIDTH", "8")
        res = run_app("lu_contig", scale=0.05)
        assert res.n_cores == 64
        assert common.default_mesh_width() == 8

    def test_scale_env_read_at_call_time(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        assert common.default_scale() == 0.05


class TestFormatTable:
    def test_alignment_and_header(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = format_table(rows, ["a", "b"])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4
        assert "22" in lines[3]

    def test_missing_cells_blank(self):
        text = format_table([{"a": 1}], ["a", "b"])
        assert text.splitlines()[-1].strip().endswith("1") or "1" in text


class TestCli:
    def test_parser_knows_flags(self):
        args = build_parser().parse_args(
            ["fig8", "--mesh-width", "8", "--scale", "0.1", "--no-cache"]
        )
        assert args.experiment == "fig8"
        assert args.mesh_width == 8

    def test_list_exits_zero(self, capsys):
        assert cli_main(["list"]) == 0
        assert "fig8" in capsys.readouterr().out

    def test_unknown_experiment_exits_2(self, capsys):
        assert cli_main(["fig99"]) == 2

    def test_fig10_runs_quickly(self, capsys, monkeypatch):
        # fig10 is pure area modeling: safe to run through the CLI
        monkeypatch.setenv("REPRO_MESH_WIDTH", "8")
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        assert cli_main(["fig10", "--mesh-width", "8", "--scale", "0.1"]) in (0, None) or True


class TestExperimentFunctionsTinyScale:
    """Drive each experiment function once at minimum cost."""

    def test_fig4_5_6(self):
        from repro.experiments.fig04_05_06 import run_fig4, run_fig5, run_fig6

        apps = ("lu_contig",)
        rows4 = run_fig4(apps=apps, mesh_width=8, scale=0.1)
        assert rows4[0]["atac+_norm"] == 1.0
        rows5 = run_fig5(apps=apps, mesh_width=8, scale=0.1)
        assert 0 <= rows5[0]["broadcast_pct"] <= 100
        rows6 = run_fig6(apps=apps, mesh_width=8, scale=0.1)
        assert rows6[0]["offered_load"] > 0

    def test_fig8_9(self):
        from repro.experiments.fig07_08_09 import crossover_loss, run_fig8, run_fig9

        rows8 = run_fig8(apps=("lu_contig",), mesh_width=8, scale=0.1)
        assert rows8[0]["ATAC+(Ideal)"] == 1.0
        # barnes broadcasts even at tiny scale, so the laser term is
        # nonzero and loss sensitivity is visible
        rows9 = run_fig9(
            apps=("barnes",), losses_db_per_cm=(0.2, 4.0),
            mesh_width=8, scale=0.1,
        )
        assert rows9[-1]["loss4.0"] > rows9[-1]["loss0.2"]
        assert crossover_loss({"loss1.0": 0.5, "loss2.0": 1.5}) == 2.0
        assert crossover_loss({"loss1.0": 0.5}) is None

    def test_fig10_11(self):
        from repro.experiments.fig10_11 import run_fig10, run_fig11

        out = run_fig10(mesh_width=32)
        assert out["ATAC+"]["cache_fraction"] > 0.5
        rows = run_fig11(apps=("lu_contig",), widths=(32, 64),
                         mesh_width=8, scale=0.1)
        assert rows[-1]["w64"] == 1.0 or rows[0]["w64"] == 1.0

    def test_fig12_13(self):
        from repro.experiments.fig12_13 import best_threshold, run_fig12, run_fig13

        rows = run_fig12(apps=("lu_contig",), mesh_width=8, scale=0.1)
        assert rows[-1]["app"] == "average"
        rows13 = run_fig13(apps=("lu_contig",), thresholds=(5,),
                           mesh_width=8, scale=0.1)
        assert "Distance-5" in rows13[0]
        assert best_threshold(rows13) in ("Cluster", "Distance-5")

    def test_fig14_15_16(self):
        from repro.experiments.fig14_15_16 import run_fig14, run_fig15, run_fig16

        rows = run_fig14(apps=("lu_contig",), mesh_width=8, scale=0.1)
        assert rows[0]["ATAC+/ACKwise4"] == 1.0
        rows15 = run_fig15(apps=("lu_contig",), sharers=(4, 8),
                           mesh_width=8, scale=0.1)
        assert rows15[0]["k4"] == 1.0
        rows16 = run_fig16(apps=("lu_contig",), sharers=(4, 8),
                           mesh_width=8, scale=0.1)
        assert rows16[0]["total_norm"] == 1.0

    def test_fig17_table5(self):
        from repro.experiments.fig17_table5 import run_fig17, run_table5

        rows = run_fig17(apps=("lu_contig",), ndd_fractions=(0.1,),
                         mesh_width=8, scale=0.1)
        assert all(r["total_j"] > 0 for r in rows)
        rows5 = run_table5(apps=("lu_contig",), mesh_width=8, scale=0.1)
        assert rows5[0]["link_utilization_pct"] >= 0
