"""Unit tests for the ASCII chart renderers."""

import pytest

from repro.experiments.report import bar_chart, curve_chart, stacked_bar_chart


class TestBarChart:
    def test_renders_all_labels(self):
        out = bar_chart({"alpha": 1.0, "beta": 2.0})
        assert "alpha" in out and "beta" in out

    def test_longest_bar_is_max(self):
        out = bar_chart({"a": 1.0, "b": 4.0}, width=40)
        lines = {l.split()[0]: l.count("#") for l in out.splitlines()}
        assert lines["b"] == 40
        assert lines["a"] == 10

    def test_title(self):
        out = bar_chart({"a": 1.0}, title="My Chart")
        assert out.splitlines()[0] == "My Chart"

    def test_zero_values_safe(self):
        out = bar_chart({"a": 0.0})
        assert "a" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"a": 1.0}, width=0)


class TestStackedBarChart:
    def test_symbols_per_component(self):
        out = stacked_bar_chart(
            {"row": {"x": 1.0, "y": 1.0}}, components=["x", "y"], width=20
        )
        bar_line = out.splitlines()[0]
        assert "#" in bar_line and "@" in bar_line

    def test_legend_present(self):
        out = stacked_bar_chart(
            {"row": {"x": 1.0}}, components=["x"],
        )
        assert "legend: #=x" in out

    def test_totals_shown(self):
        out = stacked_bar_chart(
            {"row": {"x": 1.5, "y": 0.5}}, components=["x", "y"],
        )
        assert "2.000" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            stacked_bar_chart({}, components=["x"])
        with pytest.raises(ValueError):
            stacked_bar_chart(
                {"r": {}}, components=list("abcdefghijklmnop"),
            )


class TestCurveChart:
    def test_renders_bounds_and_legend(self):
        out = curve_chart({"s1": [(0, 1), (1, 5)], "s2": [(0, 2), (1, 3)]})
        assert "legend: o=s1  x=s2" in out
        assert "x: 0..1" in out

    def test_y_cap_applied(self):
        out = curve_chart({"s": [(0, 1), (1, 10_000)]}, y_cap=100.0)
        assert "100.0" in out
        assert "capped" in out

    def test_flat_series_safe(self):
        out = curve_chart({"s": [(0, 5), (1, 5)]})
        assert "|" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            curve_chart({})
        with pytest.raises(ValueError):
            curve_chart({"s": [(0, 1)]}, height=1)
