"""Unit tests for the perf-regression harness (`repro bench`)."""

import json

import pytest

from repro.experiments import bench


class TestSpecs:
    def test_full_specs(self):
        specs = bench.bench_specs()
        assert [(s.app, s.network) for s in specs] == list(bench.BENCH_APPS)
        assert all(s.mesh_width == 16 and s.scale == 0.6 for s in specs)

    def test_small_specs(self):
        specs = bench.bench_specs(small=True)
        assert all(s.mesh_width == 8 and s.scale == 0.2 for s in specs)


def _record(rev, created_at, small=False, wall=1.0):
    return {
        "rev": rev,
        "created_at": created_at,
        "small": small,
        "results": {"barnes@atac+/w16": {"wall_s": wall}},
    }


class TestRecords:
    def test_load_sorts_by_created_at(self, tmp_path):
        (tmp_path / "BENCH_bbb.json").write_text(
            json.dumps(_record("bbb", "2026-02-01T00:00:00"))
        )
        (tmp_path / "BENCH_aaa.json").write_text(
            json.dumps(_record("aaa", "2026-01-01T00:00:00"))
        )
        assert [r["rev"] for r in bench.load_records(tmp_path)] == ["aaa", "bbb"]

    def test_load_skips_malformed_files(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text("{not json")
        (tmp_path / "BENCH_list.json").write_text("[1, 2]")
        (tmp_path / "BENCH_ok.json").write_text(
            json.dumps(_record("ok", "2026-01-01T00:00:00"))
        )
        assert [r["rev"] for r in bench.load_records(tmp_path)] == ["ok"]

    def test_load_empty_dir(self, tmp_path):
        assert bench.load_records(tmp_path) == []
        assert bench.load_records(tmp_path / "missing") == []

    def test_previous_record_skips_own_rev_and_other_size(self):
        records = [
            _record("old", "2026-01-01T00:00:00"),
            _record("small", "2026-01-02T00:00:00", small=True),
            _record("cur", "2026-01-03T00:00:00"),
        ]
        prev = bench.previous_record(records, rev="cur", small=False)
        assert prev["rev"] == "old"
        assert bench.previous_record(records, rev="old", small=True)["rev"] == "small"
        assert bench.previous_record([], rev="cur", small=False) is None


class TestCompare:
    def test_flags_regression_past_threshold(self):
        cur = _record("cur", "2026-01-02T00:00:00", wall=2.0)
        base = _record("base", "2026-01-01T00:00:00", wall=1.0)
        lines, regressions = bench.compare(cur, base, max_regression=1.5)
        assert regressions == ["barnes@atac+/w16"]
        assert "REGRESSION" in lines[0]

    def test_within_threshold_is_ok(self):
        cur = _record("cur", "2026-01-02T00:00:00", wall=1.4)
        base = _record("base", "2026-01-01T00:00:00", wall=1.0)
        lines, regressions = bench.compare(cur, base, max_regression=1.5)
        assert regressions == []
        assert "ok" in lines[0]

    def test_speedup_reported_as_improved(self):
        cur = _record("cur", "2026-01-02T00:00:00", wall=0.4)
        base = _record("base", "2026-01-01T00:00:00", wall=1.0)
        lines, _ = bench.compare(cur, base, max_regression=1.5)
        assert "improved" in lines[0]

    def test_missing_baseline_entry_is_not_a_regression(self):
        cur = _record("cur", "2026-01-02T00:00:00")
        base = _record("base", "2026-01-01T00:00:00")
        base["results"] = {}
        lines, regressions = bench.compare(cur, base, max_regression=1.5)
        assert regressions == []
        assert "no baseline" in lines[0]


class TestMeasure:
    def test_measure_spec_rejects_bad_reps(self):
        spec = bench.bench_specs(small=True)[0]
        with pytest.raises(ValueError):
            bench.measure_spec(spec, reps=0)

    def test_peak_rss_positive(self):
        assert bench.peak_rss_kb() > 0


class TestMainFlow:
    """End-to-end at smoke scale: record, then check against it."""

    def test_record_then_regression_check(self, tmp_path, capsys):
        out = str(tmp_path / "perf")
        root = tmp_path / "root"
        root.mkdir()
        assert bench.main(
            ["--small", "--reps", "1", "--rev", "base", "--out-dir", out,
             "--root-dir", str(root)]
        ) == 0
        record_path = tmp_path / "perf" / "BENCH_base.json"
        assert record_path.exists()
        # the perf-trajectory copy lands at the (here: fake) repo root
        assert (root / "BENCH_base.json").read_text() == record_path.read_text()
        record = json.loads(record_path.read_text())
        assert record["rev"] == "base"
        assert record["small"] is True
        assert record["peak_rss_kb"] > 0
        for label, res in record["results"].items():
            assert res["events"] > 0
            assert res["events_per_sec"] > 0
            assert res["wall_s"] >= res["sim_s"]

        # A second rev on the same machine at the same scale is nowhere
        # near 1000x slower, so --check passes and compares vs "base".
        assert bench.main(
            ["--small", "--reps", "1", "--rev", "next", "--out-dir", out,
             "--check", "--max-regression", "1000", "--root-dir", "none"]
        ) == 0
        assert not (root / "BENCH_next.json").exists()
        assert "vs rev base" in capsys.readouterr().out

    def test_write_record_skips_root_copy_without_root(self, tmp_path):
        record = _record("solo", "2026-01-01T00:00:00")
        written = bench.write_record(
            record, "solo", tmp_path / "perf", root_dir=None
        )
        assert written == [tmp_path / "perf" / "BENCH_solo.json"]

    def test_check_fails_on_regression(self, tmp_path, capsys):
        out = str(tmp_path)
        # Plant a baseline claiming the benchmarks once took ~0 seconds:
        # any real run then exceeds the regression threshold.
        fake = {
            label: {"wall_s": 1e-9}
            for label in (s.label() for s in bench.bench_specs(small=True))
        }
        (tmp_path / "BENCH_fast.json").write_text(json.dumps({
            "rev": "fast",
            "created_at": "2026-01-01T00:00:00",
            "small": True,
            "results": fake,
        }))
        assert bench.main(
            ["--small", "--reps", "1", "--rev", "cur", "--out-dir", out,
             "--check", "--no-write"]
        ) == 1
        assert not (tmp_path / "BENCH_cur.json").exists()

    def test_bad_flags(self):
        assert bench.main(["--reps", "0", "--no-write"]) == 2
        assert bench.main(["--max-regression", "1.0", "--no-write"]) == 2
