"""Structured logging for the repro toolchain.

Every long-running entry point (the experiment runner, the fuzzer, the
telemetry CLI) used to hand-roll ``print(..., file=sys.stderr,
flush=True)``.  This module replaces those with one tiny structured
logger so that

* verbosity is controlled in exactly one place (``--quiet`` / ``-v`` on
  the CLI, or ``REPRO_LOG=debug|info|warning|error|silent``),
* every line carries its subsystem (``[repro.runner] ...``) and any
  ambient run context (run id, spec label) as ``key=value`` pairs that
  are trivially greppable, and
* libraries stay import-light: no handlers, no configuration objects,
  no stdlib ``logging`` tree -- a logger is a name and four methods.

Usage::

    from repro import log

    _LOG = log.get_logger("runner")
    _LOG.info("run complete", run=h[:10], elapsed_s=12.4)

    with log.context(run=spec.content_hash()[:10]):
        ...  # every line emitted in here carries run=...

Levels resolve lazily at emit time, so a CLI flag parsed after import
still takes effect.  Output goes to stderr (stdout is reserved for the
experiments' tables and machine-readable output).
"""

from __future__ import annotations

import os
import sys
from contextlib import contextmanager

DEBUG = 10
INFO = 20
WARNING = 30
ERROR = 40
SILENT = 100

_LEVEL_NAMES = {
    "debug": DEBUG,
    "info": INFO,
    "warning": WARNING,
    "error": ERROR,
    "silent": SILENT,
}

#: Explicitly-set level; ``None`` defers to ``REPRO_LOG`` at emit time.
_level: int | None = None
#: Ambient key=value pairs appended to every line (see :func:`context`).
_context: dict = {}
_loggers: dict[str, "Logger"] = {}


def level() -> int:
    """The effective threshold: explicit setting, else ``REPRO_LOG``."""
    if _level is not None:
        return _level
    name = os.environ.get("REPRO_LOG", "info").strip().lower()
    return _LEVEL_NAMES.get(name, INFO)


def set_level(value: int | str | None) -> None:
    """Set (or, with ``None``, clear) the explicit threshold."""
    global _level
    if isinstance(value, str):
        try:
            value = _LEVEL_NAMES[value.strip().lower()]
        except KeyError:
            raise ValueError(
                f"unknown log level {value!r}; choose from "
                f"{tuple(_LEVEL_NAMES)}"
            ) from None
    _level = value


def set_verbosity(verbose: int = 0, quiet: bool = False) -> None:
    """Map the CLI's ``-v`` / ``--quiet`` flags onto a level.

    ``--quiet`` wins over ``-v``; without either, the explicit level is
    cleared so ``REPRO_LOG`` (default ``info``) applies.
    """
    if quiet:
        set_level(WARNING)
    elif verbose > 0:
        set_level(DEBUG)
    else:
        set_level(None)


@contextmanager
def context(**fields):
    """Ambient fields appended to every line inside the ``with`` block."""
    global _context
    saved = _context
    _context = {**saved, **fields}
    try:
        yield
    finally:
        _context = saved


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    text = str(value)
    if " " in text or not text:
        return repr(text)
    return text


class Logger:
    """A named emitter; construction is free, emission checks the level."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    # ------------------------------------------------------------------
    def _emit(self, threshold: int, message: str, fields: dict) -> None:
        if threshold < level():
            return
        parts = [f"[repro.{self.name}]", message]
        merged = {**_context, **fields} if (_context or fields) else None
        if merged:
            parts.extend(f"{k}={_format_value(v)}" for k, v in merged.items())
        print(" ".join(parts), file=sys.stderr, flush=True)

    def debug(self, message: str, **fields) -> None:
        self._emit(DEBUG, message, fields)

    def info(self, message: str, **fields) -> None:
        self._emit(INFO, message, fields)

    def warning(self, message: str, **fields) -> None:
        self._emit(WARNING, message, fields)

    def error(self, message: str, **fields) -> None:
        self._emit(ERROR, message, fields)


def get_logger(name: str) -> Logger:
    """The (cached) logger for a subsystem name."""
    logger = _loggers.get(name)
    if logger is None:
        logger = _loggers[name] = Logger(name)
    return logger
