"""DSENT-like energy/area models for electrical network blocks.

The paper uses DSENT [26] to obtain per-event energies, static power and
area for on-chip routers, links and hubs, at the 11 nm node of Table
III.  This module rebuilds those models compositionally from the
primitives in :mod:`repro.tech.electrical`:

* :class:`RouterModel` -- a wormhole input-buffered router (buffer write
  + read, crossbar traversal, switch arbitration, clock, leakage).
* :class:`LinkModel`  -- a repeated point-to-point electrical link of a
  given physical length.
* :class:`HubModel`   -- the ATAC cluster hub: the electrical-side
  buffering and muxing between ENet / ONet / StarNet-BNet.

All ``*_energy_j`` values are **per flit** unless suffixed ``_per_bit``.
Static/clock power is reported in watts so callers can multiply by the
measured completion time (this is exactly the paper's toolflow: Graphite
event counts x DSENT per-event energies + static power x runtime).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tech.electrical import (
    DEFAULT_ACTIVITY,
    RegisterModel,
    WireModel,
    arbiter_energy_j,
    crossbar_energy_per_bit_j,
    demux_energy_per_bit_j,
)
from repro.tech.transistor import TransistorModel, TECH_11NM


@dataclass(frozen=True)
class LinkModel:
    """A repeated electrical point-to-point link.

    Attributes
    ----------
    width_bits:
        Datapath width (flit size), Table I: 64 bits.
    length_mm:
        Physical length of one hop.
    """

    width_bits: int = 64
    length_mm: float = 0.625
    tech: TransistorModel = TECH_11NM
    wire: WireModel = field(default_factory=WireModel)

    def __post_init__(self) -> None:
        if self.width_bits <= 0:
            raise ValueError(f"width_bits must be positive, got {self.width_bits}")
        if self.length_mm <= 0:
            raise ValueError(f"length_mm must be positive, got {self.length_mm}")

    def dynamic_energy_j(self) -> float:
        """Energy for one flit to traverse the link (J)."""
        per_bit = self.wire.energy_per_bit_mm_j() * self.length_mm
        return per_bit * self.width_bits

    def leakage_power_w(self) -> float:
        """Repeater leakage of the whole link (W)."""
        return (
            self.wire.leakage_power_per_bit_mm_w()
            * self.length_mm
            * self.width_bits
        )

    def area_mm2(self) -> float:
        """Routing area of the link (mm^2)."""
        um2 = self.wire.area_per_bit_mm_um2() * self.length_mm * self.width_bits
        return um2 * 1e-6


@dataclass(frozen=True)
class RouterModel:
    """An input-buffered wormhole router (single virtual channel).

    The per-flit cost decomposes exactly the way DSENT reports it:
    ``buffer write + buffer read + crossbar + (per-packet) arbitration``.
    Clock power covers the input-buffer flip-flops and pipeline
    registers and is burned every cycle (non-data-dependent); leakage
    likewise.

    Attributes
    ----------
    n_ports:
        Router radix (5 for a mesh: N/S/E/W + local).
    width_bits:
        Flit width.
    buffer_depth_flits:
        FIFO depth per input port.
    """

    n_ports: int = 5
    width_bits: int = 64
    buffer_depth_flits: int = 4
    tech: TransistorModel = TECH_11NM
    register: RegisterModel = field(default_factory=RegisterModel)

    def __post_init__(self) -> None:
        if self.n_ports < 2:
            raise ValueError(f"n_ports must be >= 2, got {self.n_ports}")
        if self.width_bits <= 0:
            raise ValueError(f"width_bits must be positive, got {self.width_bits}")
        if self.buffer_depth_flits < 1:
            raise ValueError(
                f"buffer_depth_flits must be >= 1, got {self.buffer_depth_flits}"
            )

    # -- per-event energies -------------------------------------------
    def buffer_write_energy_j(self) -> float:
        """Energy to write one flit into an input FIFO (J)."""
        return self.register.write_energy_j() * self.width_bits

    def buffer_read_energy_j(self) -> float:
        """Energy to read one flit out of an input FIFO (J).

        Reads are mux traversals, cheaper than writes by ~2x.
        """
        return 0.5 * self.register.write_energy_j() * self.width_bits

    def crossbar_energy_j(self) -> float:
        """Energy for one flit through the switch fabric (J)."""
        return crossbar_energy_per_bit_j(self.n_ports, tech=self.tech) * self.width_bits

    def arbitration_energy_j(self) -> float:
        """Energy for one switch-allocation decision (per packet) (J)."""
        return arbiter_energy_j(self.n_ports, tech=self.tech)

    def flit_energy_j(self) -> float:
        """Total per-flit traversal energy (buffer wr+rd, crossbar) (J)."""
        return (
            self.buffer_write_energy_j()
            + self.buffer_read_energy_j()
            + self.crossbar_energy_j()
        )

    # -- non-data-dependent costs --------------------------------------
    @property
    def n_buffer_bits(self) -> int:
        """Total storage bits in the router."""
        return self.n_ports * self.buffer_depth_flits * self.width_bits

    def clock_power_w(self, freq_hz: float = 1e9, gated_fraction: float = 0.0) -> float:
        """Clock-tree power of the router's sequential state (W).

        ``gated_fraction`` models clock gating: the fraction of cycles
        on which the clock to idle buffers is suppressed.  The paper
        treats ungated clocks as a primary NDD consumer, so the default
        is fully ungated.
        """
        if not 0.0 <= gated_fraction <= 1.0:
            raise ValueError(f"gated_fraction must be in [0,1], got {gated_fraction}")
        per_cycle = self.register.clock_energy_per_cycle_j() * self.n_buffer_bits
        return per_cycle * freq_hz * (1.0 - gated_fraction)

    def leakage_power_w(self) -> float:
        """Static leakage of buffers + crossbar + control (W)."""
        buffer_leak = self.register.leakage_power_w() * self.n_buffer_bits
        # crossbar + allocator logic: ~40% of buffer transistor count.
        return buffer_leak * 1.4

    def area_mm2(self) -> float:
        """Router footprint (mm^2): buffers + crossbar + control."""
        buffer_um2 = self.register.area_um2() * self.n_buffer_bits
        xbar_um2 = (self.n_ports * 50.0) ** 2 * 0.02  # sparse matrix xbar
        return (buffer_um2 * 1.4 + xbar_um2) * 1e-6


@dataclass(frozen=True)
class HubModel:
    """The electrical side of an ATAC cluster hub.

    The hub receives flits from the ENet (to be modulated onto the
    ONet), and from the ONet photodetectors (to be forwarded onto the
    StarNet/BNet).  Electrically it is a pair of FIFOs plus muxing; we
    model it as a 3-port router of the same flit width with shallow
    buffers, which matches DSENT's treatment of simple interface blocks.
    """

    width_bits: int = 64
    buffer_depth_flits: int = 8
    tech: TransistorModel = TECH_11NM

    def _router(self) -> RouterModel:
        return RouterModel(
            n_ports=3,
            width_bits=self.width_bits,
            buffer_depth_flits=self.buffer_depth_flits,
            tech=self.tech,
        )

    def flit_energy_j(self) -> float:
        """Energy per flit crossing the hub in either direction (J)."""
        return self._router().flit_energy_j()

    def clock_power_w(self, freq_hz: float = 1e9) -> float:
        """Hub sequential clock power (W)."""
        return self._router().clock_power_w(freq_hz)

    def leakage_power_w(self) -> float:
        """Hub leakage (W)."""
        return self._router().leakage_power_w()

    def area_mm2(self) -> float:
        """Hub electrical footprint (mm^2)."""
        return self._router().area_mm2()


@dataclass(frozen=True)
class ReceiveNetModel:
    """Energy model for the cluster receive network (BNet or StarNet).

    Both networks deliver a flit from the hub to core(s) of a 16-core
    cluster within one cycle (Section IV-B: "The performance of the
    StarNet is exactly the same as the BNet").  They differ *only* in
    energy:

    * **BNet**: a fanout tree -- every delivery (unicast or broadcast)
      drives all 16 leaves.
    * **StarNet**: a 1-to-16 demux + 16 dedicated point-to-point links
      -- a unicast drives one link (~1/8 the BNet energy); a broadcast
      drives all 16 links (~2x the BNet tree, which shares trunk
      segments).

    The constants below realize exactly those paper-stated ratios.
    """

    kind: str = "starnet"  # "starnet" | "bnet"
    width_bits: int = 64
    cluster_size: int = 16
    #: physical length of one hub->core link (mm); cluster is ~2.5mm across.
    link_length_mm: float = 1.25
    tech: TransistorModel = TECH_11NM
    wire: WireModel = field(default_factory=WireModel)

    def __post_init__(self) -> None:
        if self.kind not in ("starnet", "bnet"):
            raise ValueError(f"kind must be 'starnet' or 'bnet', got {self.kind!r}")
        if self.cluster_size < 1:
            raise ValueError(f"cluster_size must be >= 1, got {self.cluster_size}")

    def _one_link_energy_j(self) -> float:
        wire_e = self.wire.energy_per_bit_mm_j() * self.link_length_mm
        demux_e = demux_energy_per_bit_j(self.cluster_size, tech=self.tech)
        return (wire_e + demux_e) * self.width_bits

    def unicast_energy_j(self) -> float:
        """Energy to deliver one flit to a single core (J)."""
        one = self._one_link_energy_j()
        if self.kind == "starnet":
            return one
        # BNet: the fanout tree lights up regardless of the recipient.
        # Trunk sharing makes the tree ~ cluster_size/2 links of wire,
        # hence a unicast costs ~8x the StarNet's single link.
        return one * (self.cluster_size / 2.0)

    def broadcast_energy_j(self) -> float:
        """Energy to deliver one flit to every core in the cluster (J)."""
        one = self._one_link_energy_j()
        if self.kind == "starnet":
            return one * self.cluster_size
        return one * (self.cluster_size / 2.0)

    def leakage_power_w(self) -> float:
        """Repeater leakage of all links/branches (W)."""
        per_link = (
            self.wire.leakage_power_per_bit_mm_w()
            * self.link_length_mm
            * self.width_bits
        )
        n_links = self.cluster_size if self.kind == "starnet" else self.cluster_size // 2
        return per_link * max(1, n_links)

    def area_mm2(self) -> float:
        """Wiring area (mm^2)."""
        per_link_um2 = (
            self.wire.area_per_bit_mm_um2() * self.link_length_mm * self.width_bits
        )
        n_links = self.cluster_size if self.kind == "starnet" else self.cluster_size // 2
        return per_link_um2 * max(1, n_links) * 1e-6
