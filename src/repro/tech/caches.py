"""McPAT-like SRAM cache energy/area models at the 11 nm node.

The paper obtains L1-I, L1-D, L2 and directory-cache power/area from
McPAT [27] fed with the Table III transistor parameters.  We rebuild
the essentials analytically:

* **Area**: bitcell area x bits x peripheral overhead.
* **Dynamic energy per access**: the energy to cycle the accessed
  subarray -- wordline + ``line_bits`` bitline swings + sense amps +
  decode, all scaling with the access width and (weakly) capacity.
* **Leakage**: per-bit cell leakage (HVT) + peripheral leakage,
  proportional to capacity.  This is non-data-dependent energy, the
  quantity Figure 7's analysis hinges on (the L2's energy is "evenly
  split between the leakage and dynamic components").

Calibration targets at 1 GHz / 0.6 V / 11 nm HVT: a 32 KB L1 read costs
a few pJ; a 256 KB private L2 leaks a fraction of a milliwatt and, at
typical L2 access rates, burns a comparable dynamic power.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.tech.transistor import TransistorModel, TECH_11NM


@dataclass(frozen=True)
class CacheGeometry:
    """Physical organization of one cache instance."""

    capacity_bytes: int
    associativity: int = 4
    line_bytes: int = 64
    #: extra bits per line for tag + state (directory caches override).
    overhead_bits_per_line: int = 48

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive, got {self.capacity_bytes}")
        if self.line_bytes <= 0 or self.capacity_bytes % self.line_bytes:
            raise ValueError(
                f"capacity {self.capacity_bytes} not a multiple of line size {self.line_bytes}"
            )
        if self.associativity < 1:
            raise ValueError(f"associativity must be >= 1, got {self.associativity}")
        if self.n_lines % self.associativity:
            raise ValueError(
                f"{self.n_lines} lines not divisible by associativity {self.associativity}"
            )

    @property
    def n_lines(self) -> int:
        """Total cache lines."""
        return self.capacity_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        """Number of sets (lines / associativity)."""
        return self.n_lines // self.associativity

    @property
    def total_bits(self) -> int:
        """Data + tag/state bits."""
        return self.n_lines * (self.line_bytes * 8 + self.overhead_bits_per_line)


@dataclass(frozen=True)
class CacheModel:
    """Energy/area model for one cache (or directory) instance.

    Attributes
    ----------
    geometry:
        The cache organization.
    tech:
        Transistor node (for V_DD and leakage currents).
    bitcell_area_um2:
        6T SRAM cell footprint; ~0.04 um^2 projected at 11 nm.
    periphery_area_factor:
        Multiplier over raw cell area for decoders/sense/IO.
    bitline_energy_fj_per_bit:
        Energy to swing one bitline pair + sense one bit.
    decode_energy_fj:
        Fixed per-access decode + wordline energy.
    cell_leakage_pw:
        Leakage per bitcell (pW), HVT; periphery adds
        ``periphery_leakage_factor`` on top.
    """

    geometry: CacheGeometry
    tech: TransistorModel = TECH_11NM
    bitcell_area_um2: float = 0.04
    periphery_area_factor: float = 2.0
    bitline_energy_fj_per_bit: float = 25.0
    decode_energy_fj: float = 400.0
    cell_leakage_pw: float = 500.0
    periphery_leakage_factor: float = 0.5

    # ------------------------------------------------------------------
    def area_mm2(self) -> float:
        """Total macro area (mm^2)."""
        cells_um2 = self.geometry.total_bits * self.bitcell_area_um2
        return cells_um2 * self.periphery_area_factor * 1e-6

    # ------------------------------------------------------------------
    def _access_bits(self, data_bits: int | None) -> int:
        """Bits cycled per access: all ways' tags + the data width read."""
        g = self.geometry
        tag_bits = g.overhead_bits_per_line * g.associativity
        if data_bits is None:
            data_bits = g.line_bytes * 8
        return tag_bits + data_bits

    def read_energy_j(self, data_bits: int | None = None) -> float:
        """Dynamic energy for one read access (J).

        ``data_bits`` defaults to a full line (the common case for L2
        fills and coherence transfers); L1 word accesses may pass 64.
        """
        bits = self._access_bits(data_bits)
        return (self.decode_energy_fj + bits * self.bitline_energy_fj_per_bit) * 1e-15

    def write_energy_j(self, data_bits: int | None = None) -> float:
        """Dynamic energy for one write access (J); writes swing full rails."""
        bits = self._access_bits(data_bits)
        return (self.decode_energy_fj + bits * self.bitline_energy_fj_per_bit * 1.2) * 1e-15

    def tag_probe_energy_j(self) -> float:
        """Energy for a tag-only probe (e.g. an invalidation lookup) (J)."""
        g = self.geometry
        bits = g.overhead_bits_per_line * g.associativity
        return (self.decode_energy_fj + bits * self.bitline_energy_fj_per_bit) * 1e-15

    # ------------------------------------------------------------------
    def leakage_power_w(self) -> float:
        """Static leakage of the whole macro (W)."""
        cells = self.geometry.total_bits * self.cell_leakage_pw * 1e-12
        return cells * (1.0 + self.periphery_leakage_factor)


def l1i_cache(capacity_bytes: int = 32 * 1024) -> CacheModel:
    """Per-core private L1 instruction cache (Table I: 32 KB)."""
    return CacheModel(CacheGeometry(capacity_bytes, associativity=4))


def l1d_cache(capacity_bytes: int = 32 * 1024) -> CacheModel:
    """Per-core private L1 data cache (Table I: 32 KB)."""
    return CacheModel(CacheGeometry(capacity_bytes, associativity=4))


def l2_cache(capacity_bytes: int = 256 * 1024) -> CacheModel:
    """Per-core private L2 cache (Table I: 256 KB)."""
    return CacheModel(CacheGeometry(capacity_bytes, associativity=8))


def directory_cache(
    n_lines_tracked: int,
    hardware_sharers: int,
    n_cores: int = 1024,
) -> CacheModel:
    """Per-core directory slice for an ACKwise_k / Dir_kB protocol.

    A directory entry stores the tag/state plus ``k`` hardware pointers
    of log2(n_cores) bits each (plus the global bit / sharer count).
    Entry width -- and hence directory area and energy -- grows linearly
    with ``k``, which is what drives the 2x energy growth from 4 to 1024
    sharers in Figure 16.
    """
    if hardware_sharers < 1:
        raise ValueError(f"hardware_sharers must be >= 1, got {hardware_sharers}")
    if n_lines_tracked < 1:
        raise ValueError(f"n_lines_tracked must be >= 1, got {n_lines_tracked}")
    ptr_bits = max(1, math.ceil(math.log2(max(2, n_cores))))
    # Pointer storage caps at a full-map bit vector: past n_cores bits,
    # pointers are strictly worse than one presence bit per core.
    sharer_bits = min(hardware_sharers * ptr_bits, n_cores)
    entry_bits = 48 + sharer_bits + ptr_bits + 1
    # Model the directory as a "cache" whose line is one entry of pure
    # overhead bits (minimal 1-byte payload granule).
    geometry = CacheGeometry(
        capacity_bytes=n_lines_tracked,
        associativity=4,
        line_bytes=1,
        overhead_bits_per_line=entry_bits,
    )
    return CacheModel(geometry)
