"""Projected 11 nm tri-gate transistor model (paper Table III).

The paper derives an 11 nm electrical technology from the virtual-source
transport model of Khakifirooz et al. [29] and the parasitic-capacitance
model of Wei et al. [30], then feeds the resulting parameters to both
McPAT and DSENT.  We capture the *published outputs* of that derivation
(Table III) and expose the first-order circuit quantities every other
model in this package needs: switching energy per unit width, effective
drive resistance, FO4 delay, and leakage power per unit width.

High-threshold (HVT) devices are assumed throughout, as in the paper
("As clock frequencies are relatively slow, high threshold (HVT)
transistors are assumed for lower leakage").
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TransistorModel:
    """First-order MOSFET model parameterized per Table III.

    All per-width quantities are expressed per micron of gate width; the
    circuit models in :mod:`repro.tech.electrical` size devices in
    microns and multiply through.

    Attributes
    ----------
    name:
        Human-readable node name.
    vdd_v:
        Process supply voltage (V).
    gate_length_nm:
        Physical gate length (nm).
    contacted_gate_pitch_nm:
        Contacted gate pitch (nm); sets standard-cell density.
    gate_cap_ff_per_um:
        Gate capacitance per unit width (fF/um), parasitics included.
    drain_cap_ff_per_um:
        Drain/junction capacitance per unit width (fF/um).
    ion_n_ua_per_um / ion_p_ua_per_um:
        Effective on-current per unit width (uA/um) for NMOS / PMOS.
    ioff_na_per_um:
        Off-state leakage current per unit width (nA/um), HVT.
    min_width_um:
        Minimum drawn device width (um); used to size unit gates.
    """

    name: str = "11nm-trigate-hvt"
    vdd_v: float = 0.6
    gate_length_nm: float = 14.0
    contacted_gate_pitch_nm: float = 44.0
    gate_cap_ff_per_um: float = 2.420
    drain_cap_ff_per_um: float = 1.150
    ion_n_ua_per_um: float = 739.0
    ion_p_ua_per_um: float = 668.0
    ioff_na_per_um: float = 1.0
    min_width_um: float = 0.05

    # ------------------------------------------------------------------
    # Derived per-width quantities
    # ------------------------------------------------------------------
    @property
    def cap_per_um_f(self) -> float:
        """Total switched capacitance per micron of device width (F)."""
        return (self.gate_cap_ff_per_um + self.drain_cap_ff_per_um) * 1e-15

    @property
    def switch_energy_per_um_j(self) -> float:
        """Full-swing C*V^2 switching energy per micron of width (J).

        This is the energy drawn from the supply for one rising output
        transition; average dynamic energy models multiply by an
        activity factor (typically 0.5 * alpha for random data).
        """
        return self.cap_per_um_f * self.vdd_v**2

    @property
    def leakage_power_per_um_w(self) -> float:
        """Static leakage power per micron of transistor width (W).

        One of the two stacked devices in a CMOS gate leaks at any time;
        we charge I_off * V_DD per micron of *total* width and let the
        circuit models decide how much width is in the leak path (they
        pass effective width, so no double counting here).
        """
        return self.ioff_na_per_um * 1e-9 * self.vdd_v

    @property
    def ion_avg_ua_per_um(self) -> float:
        """N/P-averaged effective on current (uA/um)."""
        return 0.5 * (self.ion_n_ua_per_um + self.ion_p_ua_per_um)

    @property
    def drive_resistance_ohm_um(self) -> float:
        """Effective switching resistance * width (ohm * um).

        R_eff ~= V_DD / I_on_eff; dividing by device width in um gives
        the resistance of a sized driver.
        """
        return self.vdd_v / (self.ion_avg_ua_per_um * 1e-6)

    def driver_resistance_ohm(self, width_um: float) -> float:
        """Switching resistance of a driver of the given width (ohm)."""
        if width_um <= 0:
            raise ValueError(f"driver width must be positive, got {width_um}")
        return self.drive_resistance_ohm_um / width_um

    def gate_cap_f(self, width_um: float) -> float:
        """Gate capacitance of a device of the given width (F)."""
        return self.gate_cap_ff_per_um * 1e-15 * width_um

    def drain_cap_f(self, width_um: float) -> float:
        """Drain capacitance of a device of the given width (F)."""
        return self.drain_cap_ff_per_um * 1e-15 * width_um

    @property
    def fo4_delay_s(self) -> float:
        """Fanout-of-4 inverter delay (s), the canonical logic-speed unit.

        tau = 0.69 * R_drv * (C_self + 4 * C_gate) for a minimum inverter
        (NMOS width W, PMOS width 2W -> total 3W per input).
        """
        w = self.min_width_um * 3.0  # inverter total width (N + 2x P)
        r = self.driver_resistance_ohm(w)
        c_self = self.drain_cap_f(w)
        c_load = 4.0 * self.gate_cap_f(w)
        return 0.69 * r * (c_self + c_load)

    def validate(self) -> None:
        """Raise ``ValueError`` if any parameter is physically nonsensical."""
        checks = {
            "vdd_v": self.vdd_v,
            "gate_length_nm": self.gate_length_nm,
            "contacted_gate_pitch_nm": self.contacted_gate_pitch_nm,
            "gate_cap_ff_per_um": self.gate_cap_ff_per_um,
            "drain_cap_ff_per_um": self.drain_cap_ff_per_um,
            "ion_n_ua_per_um": self.ion_n_ua_per_um,
            "ion_p_ua_per_um": self.ion_p_ua_per_um,
            "min_width_um": self.min_width_um,
        }
        for key, value in checks.items():
            if value <= 0:
                raise ValueError(f"{key} must be positive, got {value}")
        if self.ioff_na_per_um < 0:
            raise ValueError("ioff_na_per_um must be non-negative")
        if self.contacted_gate_pitch_nm < self.gate_length_nm:
            raise ValueError("contacted gate pitch cannot be below gate length")


#: The projected 11 nm tri-gate HVT node used throughout the paper (Table III).
TECH_11NM = TransistorModel()
