"""Photonic device and link models (paper Table II + Section II).

Models the nanophotonic communication fabric of the ONet: a
multi-wavelength laser source, waveguides, modulator rings, filter
rings, and photodetectors/receivers.  The central computation is the
**laser power budget**: starting from the optical power the receiver
needs to resolve a bit, walk backwards through the drop loss, the
through losses of every ring the wavelength passes, the waveguide
propagation loss, and the 1/N broadcast power split, then divide by the
laser wall-plug efficiency to get electrical laser power.

The adaptive SWMR link (Section IV-A) scales the laser between three
modes:

* ``idle``      -- laser off (0 W) if power gating is available, else
  stuck at broadcast power,
* ``unicast``   -- power for exactly one receiver,
* ``broadcast`` -- power for all receivers (linear in receiver count).

Ring thermal tuning (when rings are not athermal) is a constant power
per ring, the "Ring Heating" wedge of Figure 7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace


def db_to_linear(db: float) -> float:
    """Convert a dB loss (positive number) to a linear power ratio >= 1."""
    return 10.0 ** (db / 10.0)


@dataclass(frozen=True)
class PhotonicParams:
    """Optical technology parameters, defaults per paper Table II."""

    laser_efficiency: float = 0.30  # wall-plug
    waveguide_pitch_um: float = 4.0
    waveguide_loss_db_per_cm: float = 0.2
    waveguide_nonlinearity_limit_mw: float = 30.0
    ring_through_loss_db: float = 0.0001
    ring_drop_loss_db: float = 1.0
    ring_area_um2: float = 100.0
    photodetector_responsivity_a_per_w: float = 1.1
    #: coupler loss when light enters/exits the chip (off-chip laser only)
    coupling_loss_db: float = 1.0
    #: photocurrent the receiver front-end needs to resolve a bit (A).
    receiver_sensitivity_ua: float = 5.0
    #: thermal tuning power per ring when rings are NOT athermal (W).
    #: (electrically-assisted thermal tuning per Georgas et al. [28])
    ring_tuning_uw_per_ring: float = 5.0
    #: modulator driver energy per bit (J)
    modulator_energy_fj_per_bit: float = 40.0
    #: receiver (TIA + clocking) energy per bit (J)
    receiver_energy_fj_per_bit: float = 50.0
    #: time for an on-chip Ge laser to power up/down or retarget (s)
    laser_switch_time_ns: float = 1.0
    #: time for a receive ring to tune in or out electrically (s)
    ring_tune_time_ns: float = 1.0

    def validate(self) -> None:
        """Raise ``ValueError`` on nonsensical parameters."""
        if not 0.0 < self.laser_efficiency <= 1.0:
            raise ValueError(
                f"laser_efficiency must be in (0,1], got {self.laser_efficiency}"
            )
        for name in (
            "waveguide_pitch_um",
            "waveguide_nonlinearity_limit_mw",
            "photodetector_responsivity_a_per_w",
            "receiver_sensitivity_ua",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in (
            "waveguide_loss_db_per_cm",
            "ring_through_loss_db",
            "ring_drop_loss_db",
            "coupling_loss_db",
            "ring_tuning_uw_per_ring",
            "modulator_energy_fj_per_bit",
            "receiver_energy_fj_per_bit",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def receiver_sensitivity_w(self) -> float:
        """Optical power needed at the photodetector to resolve a bit (W)."""
        return (
            self.receiver_sensitivity_ua * 1e-6
            / self.photodetector_responsivity_a_per_w
        )

    def ideal(self) -> "PhotonicParams":
        """The ATAC+(Ideal) device set: lossless optics, 100 % laser."""
        return replace(
            self,
            laser_efficiency=1.0,
            waveguide_loss_db_per_cm=0.0,
            ring_through_loss_db=0.0,
            ring_drop_loss_db=0.0,
            coupling_loss_db=0.0,
        )


@dataclass(frozen=True)
class OpticalLinkModel:
    """End-to-end power model of one SWMR wavelength channel.

    One channel = one (wavelength, waveguide) pair: a single writer hub
    modulating, and ``n_receivers`` candidate reader hubs around the
    ring.

    Attributes
    ----------
    n_receivers:
        Hubs that can receive on this channel (63 for a 64-hub ONet:
        everyone but the sender).
    waveguide_length_cm:
        Physical length of the ring waveguide the light traverses.
    n_rings_passed:
        Ring resonators the wavelength passes *through* (off-resonance)
        on its worst-case trip; each contributes the tiny through loss.
    on_chip_laser:
        On-chip Ge laser (no coupling loss, power-gateable) vs off-chip
        source (coupling loss, cannot be gated).
    """

    params: PhotonicParams = field(default_factory=PhotonicParams)
    n_receivers: int = 63
    waveguide_length_cm: float = 8.0
    n_rings_passed: int = 4096
    on_chip_laser: bool = True

    def __post_init__(self) -> None:
        if self.n_receivers < 1:
            raise ValueError(f"n_receivers must be >= 1, got {self.n_receivers}")
        if self.waveguide_length_cm <= 0:
            raise ValueError("waveguide_length_cm must be positive")
        if self.n_rings_passed < 0:
            raise ValueError("n_rings_passed must be non-negative")

    # ------------------------------------------------------------------
    # Loss budget
    # ------------------------------------------------------------------
    def path_loss_db(self) -> float:
        """Worst-case optical path loss, excluding the broadcast split (dB)."""
        p = self.params
        loss = p.waveguide_loss_db_per_cm * self.waveguide_length_cm
        loss += p.ring_through_loss_db * self.n_rings_passed
        loss += p.ring_drop_loss_db  # the receiver's own drop filter
        if not self.on_chip_laser:
            loss += p.coupling_loss_db
        return loss

    def optical_power_w(self, n_targets: int) -> float:
        """Optical power the laser must emit to reach ``n_targets`` receivers (W).

        Laser power is ~linear in the number of receivers (Section IV):
        each tuned-in receiver must be delivered the full sensitivity
        power after path loss.
        """
        if n_targets < 0 or n_targets > self.n_receivers:
            raise ValueError(
                f"n_targets must be in [0, {self.n_receivers}], got {n_targets}"
            )
        if n_targets == 0:
            return 0.0
        per_rx = self.params.receiver_sensitivity_w
        return per_rx * n_targets * db_to_linear(self.path_loss_db())

    def electrical_laser_power_w(self, n_targets: int) -> float:
        """Electrical (wall-plug) laser power for ``n_targets`` receivers (W)."""
        return self.optical_power_w(n_targets) / self.params.laser_efficiency

    # -- the three SWMR modes ------------------------------------------
    def unicast_power_w(self) -> float:
        """Electrical laser power while transmitting to one receiver (W)."""
        return self.electrical_laser_power_w(1)

    def broadcast_power_w(self) -> float:
        """Electrical laser power while transmitting to all receivers (W)."""
        return self.electrical_laser_power_w(self.n_receivers)

    def idle_power_w(self, power_gated: bool) -> float:
        """Electrical laser power while the channel is idle (W).

        With fast on-chip laser gating the idle power is zero; without
        it the laser must be provisioned at worst-case (broadcast) power
        at all times -- the ATAC+(Cons) scenario.
        """
        if power_gated:
            return 0.0
        return self.broadcast_power_w()

    def check_nonlinearity(self) -> bool:
        """True if the broadcast optical power respects the waveguide limit."""
        limit_w = self.params.waveguide_nonlinearity_limit_mw * 1e-3
        return self.optical_power_w(self.n_receivers) <= limit_w

    def max_receivers_per_transmission(self) -> int:
        """Receivers reachable in one transmission under the 30 mW
        waveguide nonlinearity limit (Table II).

        When losses grow (Figure 9's sweep) the power needed to reach
        all receivers can exceed what a silicon waveguide carries
        linearly; a broadcast must then be split into sequential
        receiver groups.
        """
        limit_w = self.params.waveguide_nonlinearity_limit_mw * 1e-3
        per_target = self.optical_power_w(1)
        if per_target <= 0:
            return self.n_receivers
        return max(1, min(self.n_receivers, int(limit_w / per_target)))

    def broadcast_groups(self) -> int:
        """Sequential transmissions needed to broadcast to everyone
        under the nonlinearity limit (1 = a single shot suffices)."""
        per_shot = self.max_receivers_per_transmission()
        return -(-self.n_receivers // per_shot)

    def transition_energy_j(self) -> float:
        """Energy of one laser mode transition (power-up / re-bias).

        The Ge laser settles within ``laser_switch_time_ns``; during
        that window it burns roughly half its target (unicast-scale)
        power without carrying data.  Charged per mode transition by
        the energy accounting.
        """
        settle_s = self.params.laser_switch_time_ns * 1e-9
        return 0.5 * self.unicast_power_w() * settle_s


@dataclass(frozen=True)
class OnetGeometry:
    """Physical inventory of the ONet photonics for area & tuning power.

    For a ``n_hubs``-hub, ``data_width``-waveguide ONet, each hub places
    one modulator ring per waveguide (its own wavelength) and one filter
    ring per waveguide per *other* wavelength, giving ``n_hubs * n_hubs``
    rings per waveguide column, i.e. ~260 K rings for the 64-hub,
    64-bit ATAC+ (matching the paper's "~260K rings").
    """

    n_hubs: int = 64
    data_width_bits: int = 64
    select_width_bits: int = 6  # log2(64 hubs)
    params: PhotonicParams = field(default_factory=PhotonicParams)
    #: physical length of one ring waveguide loop (cm).  The paper's own
    #: area accounting (Section V-D: waveguides + devices ~= 40 mm^2 at
    #: 64-bit width with ~260K rings of 100 um^2 = 26 mm^2 of rings)
    #: implies ~5 cm of routed waveguide, so that is the default.
    waveguide_length_cm: float = 5.0

    def __post_init__(self) -> None:
        if self.n_hubs < 2:
            raise ValueError(f"n_hubs must be >= 2, got {self.n_hubs}")
        if self.data_width_bits < 1:
            raise ValueError("data_width_bits must be >= 1")
        if self.waveguide_length_cm <= 0:
            raise ValueError("waveguide_length_cm must be positive")

    @property
    def n_waveguides(self) -> int:
        """Data + select waveguides."""
        return self.data_width_bits + self.select_width_bits

    @property
    def n_rings(self) -> int:
        """Total ring resonator count (modulators + filters)."""
        # per waveguide: each hub has 1 modulator + (n_hubs-1) filters
        per_wg = self.n_hubs * (1 + (self.n_hubs - 1))
        return per_wg * self.n_waveguides

    @property
    def rings_passed_worst_case(self) -> int:
        """Rings a wavelength passes through on a full loop of one waveguide."""
        return self.n_hubs * self.n_hubs

    def ring_tuning_power_w(self, athermal: bool) -> float:
        """Total thermal tuning power for every ring on the chip (W)."""
        if athermal:
            return 0.0
        return self.n_rings * self.params.ring_tuning_uw_per_ring * 1e-6

    def photonics_area_mm2(self) -> float:
        """Active-area footprint of waveguides + rings (mm^2).

        The paper reports ~40 mm^2 at 64-bit flit width and ~160 mm^2 at
        256 bits (Section V-D) -- i.e. linear in waveguide count, which
        this model reproduces via pitch x length x count + ring areas.
        """
        wg_area = (
            self.n_waveguides
            * self.params.waveguide_pitch_um * 1e-3      # pitch in mm
            * self.waveguide_length_cm * 10.0            # length in mm
        )
        ring_area = self.n_rings * self.params.ring_area_um2 * 1e-6
        return wg_area + ring_area

    def data_link(self, on_chip_laser: bool = True) -> OpticalLinkModel:
        """The per-channel power model for this geometry's data links."""
        return OpticalLinkModel(
            params=self.params,
            n_receivers=self.n_hubs - 1,
            waveguide_length_cm=self.waveguide_length_cm,
            n_rings_passed=self.rings_passed_worst_case,
            on_chip_laser=on_chip_laser,
        )
