"""Technology models: transistors, electrical circuits, photonic devices.

This package reimplements (analytically, in pure Python) the modeling
stack the paper obtains from DSENT [26], McPAT [27], the 11 nm tri-gate
virtual-source transistor projections [29][30], and the photonic link
models of Georgas et al. [28].  The public entry points are:

* :class:`repro.tech.transistor.TransistorModel` -- Table III parameters
  and first-order derived circuit quantities.
* :class:`repro.tech.electrical.WireModel`, ``InverterModel`` -- wires,
  repeaters, registers.
* :class:`repro.tech.dsent.RouterModel`, ``LinkModel``, ``HubModel`` --
  DSENT-like per-event energies and leakage for on-chip network blocks.
* :class:`repro.tech.photonics.PhotonicParams`, ``OpticalLinkModel`` --
  Table II device parameters and end-to-end laser power budgets.
* :class:`repro.tech.scenarios.TechScenario` -- the four ATAC+ flavors of
  Table IV (Ideal / ATAC+ / RingTuned / Cons).
* :class:`repro.tech.caches.CacheModel` -- McPAT-like SRAM energy/area.
* :class:`repro.tech.core.CorePowerModel` -- Section V-G first-order
  core power model.
"""

from repro.tech.transistor import TransistorModel, TECH_11NM
from repro.tech.electrical import WireModel, InverterModel, RegisterModel
from repro.tech.dsent import RouterModel, LinkModel, HubModel, ReceiveNetModel
from repro.tech.photonics import PhotonicParams, OpticalLinkModel, OnetGeometry
from repro.tech.scenarios import (
    TechScenario,
    SCENARIO_IDEAL,
    SCENARIO_ATACP,
    SCENARIO_RINGTUNED,
    SCENARIO_CONS,
    ALL_SCENARIOS,
)
from repro.tech.caches import (
    CacheModel,
    CacheGeometry,
    l1i_cache,
    l1d_cache,
    l2_cache,
    directory_cache,
)
from repro.tech.core import CorePowerModel

__all__ = [
    "ReceiveNetModel",
    "OnetGeometry",
    "l1i_cache",
    "l1d_cache",
    "l2_cache",
    "directory_cache",
    "TransistorModel",
    "TECH_11NM",
    "WireModel",
    "InverterModel",
    "RegisterModel",
    "RouterModel",
    "LinkModel",
    "HubModel",
    "PhotonicParams",
    "OpticalLinkModel",
    "TechScenario",
    "SCENARIO_IDEAL",
    "SCENARIO_ATACP",
    "SCENARIO_RINGTUNED",
    "SCENARIO_CONS",
    "ALL_SCENARIOS",
    "CacheModel",
    "CacheGeometry",
    "CorePowerModel",
]
