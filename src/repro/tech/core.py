"""First-order core power model (paper Section V-G).

The paper assumes a 20 mW peak in-order single-issue core at 11 nm
(obtained by scaling the FPU energy/flop of Galal & Horowitz [31] and
dividing by the FPU's typical share of core power), then splits power
into:

* **Non-data-dependent (NDD)**: leakage + ungated clocks, burned for the
  entire wall-clock runtime regardless of activity.  Two scenarios are
  studied: NDD = 10 % and 40 % of peak.
* **Data-dependent (DD)**: scales with achieved IPC -- "if the IPC is
  0.25, the runtime data-dependent power is 25 % of the peak
  data-dependent power".

The punchline the model exists to demonstrate: a faster network shrinks
runtime, and with it the *core's* NDD energy -- the dominant term -- so
an "uncore" component can win system energy without being efficient
itself.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CorePowerModel:
    """Per-core first-order power model.

    Attributes
    ----------
    peak_power_w:
        Peak core power (20 mW in the paper).
    ndd_fraction:
        Fraction of peak that is non-data-dependent (0.10 or 0.40).
    """

    peak_power_w: float = 20e-3
    ndd_fraction: float = 0.10

    def __post_init__(self) -> None:
        if self.peak_power_w <= 0:
            raise ValueError(f"peak_power_w must be positive, got {self.peak_power_w}")
        if not 0.0 <= self.ndd_fraction <= 1.0:
            raise ValueError(
                f"ndd_fraction must be in [0,1], got {self.ndd_fraction}"
            )

    @property
    def ndd_power_w(self) -> float:
        """Power burned every second of runtime, active or not (W)."""
        return self.peak_power_w * self.ndd_fraction

    @property
    def peak_dd_power_w(self) -> float:
        """Data-dependent power at IPC = 1 (W)."""
        return self.peak_power_w * (1.0 - self.ndd_fraction)

    def dd_power_w(self, ipc: float) -> float:
        """Data-dependent power at the measured IPC (W)."""
        if ipc < 0:
            raise ValueError(f"ipc must be non-negative, got {ipc}")
        return self.peak_dd_power_w * min(1.0, ipc)

    def ndd_energy_j(self, runtime_s: float) -> float:
        """NDD energy over a run (J)."""
        if runtime_s < 0:
            raise ValueError(f"runtime_s must be non-negative, got {runtime_s}")
        return self.ndd_power_w * runtime_s

    def dd_energy_j(self, instructions: int, freq_hz: float = 1e9) -> float:
        """DD energy for a run that retired ``instructions`` (J).

        DD energy is activity-proportional, so it depends only on the
        retired instruction count, not on how long the run took:
        E = P_dd_peak * (instructions / freq) because IPC * runtime =
        instructions / freq.  This is why the paper observes "core
        data-dependent energies are roughly identical between
        architectures".
        """
        if instructions < 0:
            raise ValueError(f"instructions must be non-negative, got {instructions}")
        return self.peak_dd_power_w * instructions / freq_hz

    def total_energy_j(
        self, runtime_s: float, instructions: int, freq_hz: float = 1e9
    ) -> float:
        """NDD + DD energy for one core over one run (J)."""
        return self.ndd_energy_j(runtime_s) + self.dd_energy_j(instructions, freq_hz)
