"""The four ATAC+ technology scenarios of paper Table IV.

============================  ==============  ============  ===========
Flavor                        Optical devices Laser         Rings
============================  ==============  ============  ===========
ATAC+(Ideal)                  Ideal (lossless) Power-gated  Athermal
ATAC+                         Practical        Power-gated  Athermal
ATAC+(RingTuned)              Practical        Power-gated  Tuned
ATAC+(Cons)                   Practical        Standard     Tuned
============================  ==============  ============  ===========

A scenario is pure *energy post-processing*: all four flavors share one
performance run (the network behaves identically; only the laser/ring
power accounting differs), exactly as in the paper's Section V-C.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tech.photonics import PhotonicParams


@dataclass(frozen=True)
class TechScenario:
    """One row of Table IV.

    Attributes
    ----------
    name:
        Paper's label for the flavor.
    ideal_devices:
        Lossless optics and a 100 %-efficient laser.
    laser_power_gated:
        On-chip Ge lasers that switch on/off (and re-bias between
        unicast and broadcast power) within 1 ns.  Without this the
        laser burns worst-case broadcast power continuously.
    athermal_rings:
        Rings needing no thermal tuning.  Without this every ring burns
        its tuning power continuously ("Ring Heating").
    """

    name: str
    ideal_devices: bool
    laser_power_gated: bool
    athermal_rings: bool

    def photonic_params(self, base: PhotonicParams | None = None) -> PhotonicParams:
        """Resolve the device parameter set this scenario uses."""
        base = base if base is not None else PhotonicParams()
        base.validate()
        return base.ideal() if self.ideal_devices else base


SCENARIO_IDEAL = TechScenario(
    name="ATAC+(Ideal)", ideal_devices=True, laser_power_gated=True,
    athermal_rings=True,
)
SCENARIO_ATACP = TechScenario(
    name="ATAC+", ideal_devices=False, laser_power_gated=True,
    athermal_rings=True,
)
SCENARIO_RINGTUNED = TechScenario(
    name="ATAC+(RingTuned)", ideal_devices=False, laser_power_gated=True,
    athermal_rings=False,
)
SCENARIO_CONS = TechScenario(
    name="ATAC+(Cons)", ideal_devices=False, laser_power_gated=False,
    athermal_rings=False,
)

#: Table IV, in the paper's presentation order.
ALL_SCENARIOS = (SCENARIO_IDEAL, SCENARIO_ATACP, SCENARIO_RINGTUNED, SCENARIO_CONS)
