"""Electrical circuit primitives: wires, inverters/repeaters, registers.

These are the building blocks the DSENT-like network models in
:mod:`repro.tech.dsent` compose into routers, links and hubs.  Each
primitive exposes

* ``dynamic_energy_j(...)`` -- energy per *event* (a bit transition, a
  register write, a wire traversal),
* ``leakage_power_w`` -- static power burned whether or not the block is
  used (a *non-data-dependent* cost in the paper's vocabulary), and
* ``area_um2`` where meaningful.

Conventions
-----------
* Energies are per **bit** unless stated otherwise; callers multiply by
  bus width.
* A switching-activity factor ``activity`` (default 0.25 = random data,
  half the bits toggle, half of those charge) converts full-swing C*V^2
  into average energy per transported bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.tech.transistor import TransistorModel, TECH_11NM

#: Default switching activity: for random payloads, a bit toggles with
#: probability 1/2 and only rising transitions draw supply energy.
DEFAULT_ACTIVITY = 0.25


@dataclass(frozen=True)
class WireModel:
    """Repeated global wire at minimum-energy repeater sizing.

    On-chip global/semi-global wires at deeply scaled nodes are
    dominated by wire capacitance; repeaters add ~30-40 % more switched
    capacitance.  We model energy as ``(1 + repeater_overhead) * C_wire
    * V^2`` per mm per full transition, and delay as a fixed repeated-
    wire velocity (mm per cycle is set by the network configuration, so
    delay here is informational).

    Attributes
    ----------
    cap_per_mm_f:
        Wire capacitance per mm (F/mm).  0.15 pF/mm is representative of
        a semi-global layer at the 11 nm node.
    repeater_overhead:
        Extra switched capacitance contributed by repeaters, as a
        fraction of the wire capacitance.
    repeater_spacing_mm:
        Distance between repeaters (mm); sets leakage per mm.
    repeater_width_um:
        Total transistor width of one repeater (um).
    """

    tech: TransistorModel = TECH_11NM
    cap_per_mm_f: float = 0.15e-12
    repeater_overhead: float = 0.35
    repeater_spacing_mm: float = 0.25
    repeater_width_um: float = 2.0
    wire_pitch_um: float = 0.1

    def energy_per_bit_mm_j(self, activity: float = DEFAULT_ACTIVITY) -> float:
        """Average energy to move one bit one mm (J)."""
        c_total = self.cap_per_mm_f * (1.0 + self.repeater_overhead)
        return activity * c_total * self.tech.vdd_v**2

    def leakage_power_per_bit_mm_w(self) -> float:
        """Repeater leakage per bit-lane per mm of wire (W)."""
        repeaters_per_mm = 1.0 / self.repeater_spacing_mm
        return (
            repeaters_per_mm
            * self.repeater_width_um
            * self.tech.leakage_power_per_um_w
        )

    def area_per_bit_mm_um2(self) -> float:
        """Routing area of one bit-lane per mm (um^2), at the wire pitch."""
        return self.wire_pitch_um * 1000.0  # pitch (um) x 1 mm (=1000 um)


@dataclass(frozen=True)
class InverterModel:
    """A sized CMOS inverter / buffer stage."""

    tech: TransistorModel = TECH_11NM
    width_um: float = 0.15  # N + P total width

    def switch_energy_j(self) -> float:
        """Energy for one full output transition (J)."""
        return self.width_um * self.tech.switch_energy_per_um_j

    def leakage_power_w(self) -> float:
        """Static leakage (W); half the width leaks at any given time."""
        return 0.5 * self.width_um * self.tech.leakage_power_per_um_w

    def area_um2(self) -> float:
        """Layout footprint (um^2): width x contacted gate pitch."""
        return self.width_um * self.tech.contacted_gate_pitch_nm * 1e-3


@dataclass(frozen=True)
class RegisterModel:
    """One flip-flop bit: the unit of buffers, pipeline stages and FIFOs.

    Flip-flops have two energy components the paper's NDD analysis cares
    about: the *data* energy of capturing a new value, and the *clock*
    energy burned every cycle whether or not data changes (an ungated
    clock is a canonical non-data-dependent consumer).
    """

    tech: TransistorModel = TECH_11NM
    #: total transistor width of one FF bit (um); ~24 minimum devices.
    width_um: float = 1.2
    #: fraction of FF width on the clock network (internal clock buffers).
    clock_cap_fraction: float = 0.30

    def write_energy_j(self) -> float:
        """Energy to capture one changed data bit (J)."""
        data_width = self.width_um * (1.0 - self.clock_cap_fraction)
        return 0.5 * data_width * self.tech.switch_energy_per_um_j

    def clock_energy_per_cycle_j(self) -> float:
        """Clock energy per cycle per bit, gated or not (J)."""
        clk_width = self.width_um * self.clock_cap_fraction
        return clk_width * self.tech.switch_energy_per_um_j

    def leakage_power_w(self) -> float:
        """Static leakage of one FF bit (W)."""
        return 0.5 * self.width_um * self.tech.leakage_power_per_um_w

    def area_um2(self) -> float:
        """Layout footprint of one FF bit (um^2)."""
        return self.width_um * self.tech.contacted_gate_pitch_nm * 1e-3 * 2.0


def crossbar_energy_per_bit_j(
    n_ports: int,
    port_span_um: float = 50.0,
    tech: TransistorModel = TECH_11NM,
    activity: float = DEFAULT_ACTIVITY,
) -> float:
    """Energy for one bit to traverse an ``n_ports``-port crossbar (J).

    Modeled as a matrix crossbar: a bit drives an output wire spanning
    all input ports plus the tri-state drivers hanging off it.  Wire
    length grows linearly with port count.
    """
    if n_ports < 2:
        raise ValueError(f"crossbar needs >= 2 ports, got {n_ports}")
    wire_len_mm = n_ports * port_span_um * 1e-3
    wire = WireModel(tech=tech, cap_per_mm_f=0.20e-12)
    wire_energy = activity * wire.cap_per_mm_f * wire_len_mm * tech.vdd_v**2
    driver_energy = activity * n_ports * tech.switch_energy_per_um_j * 0.3
    return wire_energy + driver_energy


def arbiter_energy_j(
    n_requests: int,
    tech: TransistorModel = TECH_11NM,
) -> float:
    """Energy of one round of matrix arbitration among ``n_requests`` (J).

    A matrix arbiter has O(n^2) grant/priority cells; each decision
    toggles ~n of them.
    """
    if n_requests < 1:
        raise ValueError(f"arbiter needs >= 1 request, got {n_requests}")
    cells_toggled = max(1, n_requests)
    cell_width_um = 0.3
    return cells_toggled * cell_width_um * tech.switch_energy_per_um_j


def demux_energy_per_bit_j(
    fanout: int,
    tech: TransistorModel = TECH_11NM,
    activity: float = DEFAULT_ACTIVITY,
) -> float:
    """Energy per bit through a 1-to-``fanout`` demultiplexer (J).

    Only the selected branch toggles; the select tree is log2(fanout)
    gate stages.  This is the heart of the StarNet's energy advantage:
    a unicast pays one branch, not the whole fanout tree.
    """
    if fanout < 1:
        raise ValueError(f"fanout must be >= 1, got {fanout}")
    select_stages = max(1, math.ceil(math.log2(max(2, fanout))))
    gate_width_um = 0.15
    return activity * (1 + select_stages) * gate_width_um * tech.switch_energy_per_um_j
