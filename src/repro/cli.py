"""Command-line interface: regenerate any paper figure or table.

Usage::

    python -m repro list                 # show available experiments
    python -m repro fig3                 # latency vs load curves
    python -m repro fig8 --mesh-width 32 --scale 1.0
    python -m repro table5
    python -m repro all                  # everything, in figure order
    python -m repro ablations
    python -m repro run --apps barnes,radix --networks atac+ --jobs 4
    python -m repro run --apps barnes --profile   # cProfile the simulator
    python -m repro run --apps barnes --sanitize  # runtime invariant checking
    python -m repro sweep --jobs 4       # (apps x networks) design sweep
    python -m repro bench --check        # perf-regression harness
    python -m repro fuzz --budget 120s   # differential invariant fuzzer
    python -m repro run --apps radix --telemetry   # record windows + trace
    python -m repro top latest           # windowed time-series table
    python -m repro trace latest         # export Perfetto trace JSON

``--jobs`` bounds the runner's worker processes for every experiment
(it exports ``REPRO_JOBS``, which the figure drivers honour); scale
flags map onto the same knobs as the benchmark suite's environment
variables.  ``--sanitize`` (or ``REPRO_SANITIZE=1``) runs every
simulation under :mod:`repro.sanitizer`, which raises a structured
``InvariantViolation`` on any cross-layer inconsistency (~2x cost;
see DESIGN.md section 10).  ``--telemetry`` (or ``REPRO_TELEMETRY=1``)
records windowed counter deltas and a bounded event trace per run (see
DESIGN.md section 12); ``repro top`` / ``repro trace`` read them back.
``-v`` / ``--quiet`` raise or silence :mod:`repro.log` stderr output.
"""

from __future__ import annotations

import argparse
import os
import sys


def _experiment_mains() -> dict[str, callable]:
    # imported lazily so `--help` stays fast
    from repro.experiments import (
        ablations,
        fig03,
        fig04_05_06,
        fig07_08_09,
        fig10_11,
        fig12_13,
        fig14_15_16,
        fig17_table5,
    )

    return {
        "fig3": fig03.main,
        "fig4": fig04_05_06.main,
        "fig5": fig04_05_06.main,
        "fig6": fig04_05_06.main,
        "fig7": fig07_08_09.main,
        "fig8": fig07_08_09.main,
        "fig9": fig07_08_09.main,
        "fig10": fig10_11.main,
        "fig11": fig10_11.main,
        "fig12": fig12_13.main,
        "fig13": fig12_13.main,
        "fig14": fig14_15_16.main,
        "fig15": fig14_15_16.main,
        "fig16": fig14_15_16.main,
        "fig17": fig17_table5.main,
        "table5": fig17_table5.main,
        "ablations": ablations.main,
    }


#: experiments grouped by the driver module that prints them, so `all`
#: runs each driver exactly once.
_DRIVER_ORDER = (
    "fig3", "fig4", "fig7", "fig10", "fig12", "fig14", "fig17", "ablations",
)


def build_parser() -> argparse.ArgumentParser:
    """The `python -m repro` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the tables and figures of 'Cross-layer Energy and "
            "Performance Evaluation of a Nanophotonic Manycore Processor "
            "System' (IPDPS 2012)."
        ),
    )
    parser.add_argument(
        "experiment",
        help="fig3..fig17, table5, ablations, run, sweep, all, or list",
    )
    parser.add_argument(
        "--mesh-width", type=int, default=None,
        help="cores per mesh edge (32 = the paper's 1024 cores; default 16)",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="trace-length multiplier (default 0.6; paper scale 1.0)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not write the on-disk run cache",
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=None, metavar="N",
        help="worker processes for the experiment runner "
             "(default: REPRO_JOBS env or all cores)",
    )
    parser.add_argument(
        "--apps", default=None, metavar="A,B,...",
        help="comma-separated app list for 'run'/'sweep' "
             "(default: all 8 paper apps)",
    )
    parser.add_argument(
        "--networks", default=None, metavar="N,M,...",
        help="comma-separated networks for 'run'/'sweep' "
             "(default: atac+ for 'run', the registry's sweep axis for "
             "'sweep'; 'repro list' shows every registered network)",
    )
    parser.add_argument(
        "--seed", type=int, default=42,
        help="trace-generation seed for 'run'/'sweep' (default 42)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="for 'run': cProfile the batch in-process (forces --jobs 1, "
             "disables the run cache) and print the top 25 functions by "
             "cumulative time to stderr",
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help="run under the runtime invariant checker (repro.sanitizer): "
             "~2-3x slower, raises InvariantViolation on any cross-layer "
             "inconsistency; equivalent to REPRO_SANITIZE=1",
    )
    parser.add_argument(
        "--telemetry", action="store_true",
        help="record windowed metrics + an event trace per run "
             "(repro.telemetry) under the telemetry root; inspect with "
             "'repro top'/'repro trace'; equivalent to REPRO_TELEMETRY=1",
    )
    _add_verbosity_flags(parser)
    return parser


def _add_verbosity_flags(parser: argparse.ArgumentParser) -> None:
    """``-v``/``--quiet``, shared by the main parser and sub-tools."""
    parser.add_argument(
        "--verbose", "-v", action="count", default=0,
        help="more repro.log stderr output (-v: debug)",
    )
    parser.add_argument(
        "--quiet", "-q", action="store_true",
        help="suppress repro.log progress output (warnings still print)",
    )


def _sweep(args, networks_default: tuple[str, ...]) -> int:
    """Shared implementation of the `run` and `sweep` experiments."""
    from repro.energy.accounting import EnergyModel
    from repro.experiments.common import (
        Runner, format_table, spec_for,
    )
    from repro.workloads.splash import APP_ORDER

    apps = tuple(args.apps.split(",")) if args.apps else APP_ORDER
    networks = (
        tuple(args.networks.split(",")) if args.networks else networks_default
    )
    try:
        specs = [
            spec_for(
                app, network=net, mesh_width=args.mesh_width,
                scale=args.scale, seed=args.seed, sanitize=args.sanitize,
                telemetry=args.telemetry,
            )
            for app in apps for net in networks
        ]
    except (KeyError, ValueError) as exc:
        msg = exc.args[0] if exc.args else exc
        print(msg, file=sys.stderr)
        return 2
    runner = Runner(jobs=args.jobs)
    results = runner.run(specs)
    report = runner.last_report
    # one energy model per network: the registry's descriptor supplies
    # the architecture-specific wedges, so this works for any network
    models = {spec.network: EnergyModel(spec.config()) for spec in specs}
    rows = []
    for spec, result in zip(specs, results):
        row = result.summary()
        breakdown = models[spec.network].evaluate(result)
        row["chip_energy_j"] = f"{breakdown.chip_energy_j:.3e}"
        rows.append(row)
    print(format_table(rows, list(rows[0].keys())))
    print(
        f"\n{report.total} run(s): {report.hits} cached, {report.misses} "
        f"executed on {report.jobs} worker(s) in {report.elapsed_s:.1f}s"
    )
    return 0


def _profiled_sweep(args, networks_default: tuple[str, ...]) -> int:
    """`run --profile`: cProfile the whole batch in this process.

    Profiling across pool workers would attribute everything to
    ``ProcessPoolExecutor`` plumbing, so the batch is forced onto one
    in-process worker and the cache is bypassed (a cache hit profiles
    JSON decoding, not the simulator).
    """
    import cProfile
    import pstats

    os.environ["REPRO_JOBS"] = "1"
    os.environ["REPRO_CACHE"] = "0"
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        code = _sweep(args, networks_default)
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.strip_dirs().sort_stats("cumulative").print_stats(25)
    return code


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench":
        # bench has its own flag set (reps/check/regression threshold),
        # so it parses its own argv instead of sharing the main parser.
        from repro.experiments.bench import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "fuzz":
        # fuzz likewise owns its flags (budget/seed/fault injection).
        from repro.sanitizer.fuzz import main as fuzz_main

        return fuzz_main(argv[1:])
    if argv and argv[0] in ("trace", "top"):
        # telemetry inspection verbs: read recorded artifacts, never
        # import the simulator.
        from repro.telemetry.inspect import main as inspect_main

        return inspect_main(argv)
    args = build_parser().parse_args(argv)
    from repro.log import set_verbosity

    set_verbosity(verbose=args.verbose, quiet=args.quiet)
    if args.mesh_width is not None:
        os.environ["REPRO_MESH_WIDTH"] = str(args.mesh_width)
    if args.scale is not None:
        os.environ["REPRO_SCALE"] = str(args.scale)
    if args.no_cache:
        os.environ["REPRO_CACHE"] = "0"
    if args.jobs is not None:
        if args.jobs < 1:
            print("--jobs must be >= 1", file=sys.stderr)
            return 2
        os.environ["REPRO_JOBS"] = str(args.jobs)
    if args.sanitize:
        # Exported so figure drivers (which build their own specs) and
        # pool workers inherit the setting, not just 'run'/'sweep'.
        os.environ["REPRO_SANITIZE"] = "1"
    if args.telemetry:
        # Same export rationale as --sanitize.
        os.environ["REPRO_TELEMETRY"] = "1"

    if args.experiment in ("run", "sweep"):
        # imported lazily so `--help` stays fast
        from repro.network.registry import DEFAULT_NETWORK, experiment_axis

        defaults = (
            (DEFAULT_NETWORK,)
            if args.experiment == "run"
            else experiment_axis("sweep")
        )
        if args.experiment == "run" and args.profile:
            return _profiled_sweep(args, networks_default=defaults)
        return _sweep(args, networks_default=defaults)

    mains = _experiment_mains()
    if args.experiment == "list":
        from repro.network.registry import REGISTRY

        print("available experiments:")
        for name in sorted(mains, key=lambda n: (len(n), n)):
            print(f"  {name}")
        print("  run    (explicit app/network batch through the runner)")
        print("  sweep  (apps x networks design sweep through the runner)")
        print("  bench  (perf-regression harness; see 'bench --help')")
        print("  fuzz   (differential invariant fuzzer; see 'fuzz --help')")
        print("  top    (windowed telemetry time series; see 'top --help')")
        print("  trace  (export a recorded run as Perfetto JSON)")
        print("  all")
        print("\nregistered networks (--networks):")
        for descriptor in REGISTRY.values():
            print(f"  {descriptor.name:12s} {descriptor.summary}")
        return 0
    if args.experiment == "all":
        for name in _DRIVER_ORDER:
            print(f"\n########## {name} ##########")
            mains[name]()
        return 0
    runner = mains.get(args.experiment)
    if runner is None:
        print(
            f"unknown experiment {args.experiment!r}; "
            "try 'python -m repro list'",
            file=sys.stderr,
        )
        return 2
    runner()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
