"""Instrumentation shims installed by the sanitizer.

Everything here exists only inside a sanitized system: an unsanitized
:class:`~repro.sim.system.ManycoreSystem` never constructs these
objects, so the sanitizer's cost is strictly zero when disabled (the
perf harness' ``--check`` gate holds this to <1.1x of the recorded
baseline).

* :class:`SanitizedEventQueue` -- drop-in :class:`EventQueue` that
  keeps a ring buffer of dispatched events, enforces monotonic
  simulation time, and calls back into the sanitizer around every
  schedule/dispatch so messages can be tracked in flight.
* :class:`L2CacheProxy` / :class:`L1CacheProxy` -- transparent wrappers
  around :class:`~repro.coherence.cache.SetAssocCache` that report
  every state change, letting the sanitizer maintain a cross-cache
  holder index (the basis of the SWMR and directory-consistency
  checks) in O(1) per change instead of O(cores) per check.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.coherence.cache import CacheState
from repro.sim.eventq import _NO_ARG, EventQueue


class SanitizedEventQueue(EventQueue):
    """Event queue with dispatch tracing and in-flight accounting.

    Behaviourally identical to :class:`EventQueue` -- same
    ``(time, seq)`` tie-breaking, same ``max_events`` semantics -- so a
    sanitized run produces byte-identical results to an unsanitized
    one (``tests/sanitizer`` locks this in).
    """

    __slots__ = ("_san",)

    def __init__(self, sanitizer) -> None:
        super().__init__()
        self._san = sanitizer

    def schedule(
        self, time: int, callback: Callable, arg: Any = _NO_ARG
    ) -> None:
        super().schedule(time, callback, arg)
        if arg is not _NO_ARG:
            self._san.on_schedule(time, callback, arg)

    def run(self, max_events: int | None = None) -> int:
        import heapq

        san = self._san
        heap = self._heap
        no_arg = _NO_ARG
        heappop = heapq.heappop
        processed = 0
        try:
            while heap:
                time, _, callback, arg = heappop(heap)
                if time < self.now:
                    san.violation(
                        "time-travel",
                        f"event at t={time} dispatched after t={self.now}",
                        details={"event_time": time, "now": self.now},
                    )
                self.now = time
                san.record_event(time, callback, arg)
                if arg is no_arg:
                    callback(time)
                else:
                    callback(arg, time)
                san.on_dispatch(time, callback, arg)
                processed += 1
                if max_events is not None and processed > max_events:
                    raise RuntimeError(
                        f"event budget exceeded ({max_events}); "
                        "possible protocol livelock"
                    )
        finally:
            self.events_processed += processed
        return self.now


class _CacheProxy:
    """Delegating wrapper base; unknown attributes fall through."""

    __slots__ = ("inner", "san", "core")

    def __init__(self, inner, sanitizer, core: int) -> None:
        self.inner = inner
        self.san = sanitizer
        self.core = core

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def lookup(self, line: int, touch: bool = True) -> CacheState:
        return self.inner.lookup(line, touch)


class L2CacheProxy(_CacheProxy):
    """Reports every L2 MSI state change to the sanitizer."""

    __slots__ = ()

    def install(self, line: int, state: CacheState):
        victim = self.inner.install(line, state)
        san, core = self.san, self.core
        san.l2_changed(core, line, state)
        if victim is not None:
            san.l2_removed(core, victim[0])
        return victim

    def set_state(self, line: int, state: CacheState) -> None:
        self.inner.set_state(line, state)
        if state is CacheState.INVALID:
            self.san.l2_removed(self.core, line)
        else:
            self.san.l2_changed(self.core, line, state)

    def invalidate(self, line: int) -> CacheState:
        prev = self.inner.invalidate(line)
        if prev is not CacheState.INVALID:
            self.san.l2_removed(self.core, line)
        return prev


class L1CacheProxy(_CacheProxy):
    """Checks L1-in-L2 containment on every L1 fill.

    The L1s are write-through and private, so every resident L1 line
    must also be resident in the same core's L2, and an L1 line can
    only be MODIFIED if the L2 copy is.
    """

    __slots__ = ("l2",)

    def __init__(self, inner, sanitizer, core: int, l2) -> None:
        super().__init__(inner, sanitizer, core)
        self.l2 = l2  # the *unwrapped* L2 cache of the same core

    def install(self, line: int, state: CacheState):
        l2_state = self.l2.lookup(line, touch=False)
        if l2_state is CacheState.INVALID:
            self.san.violation(
                "l1-containment",
                f"core {self.core} filled L1 line {line} absent from its L2",
                details={"core": self.core, "address": line},
            )
        if state is CacheState.MODIFIED and l2_state is not CacheState.MODIFIED:
            self.san.violation(
                "l1-containment",
                f"core {self.core} holds L1 line {line} MODIFIED over a "
                f"{l2_state.name} L2 copy",
                details={"core": self.core, "address": line,
                         "l2_state": l2_state.name},
            )
        return self.inner.install(line, state)
