"""Structured invariant-violation reporting.

A sanitized run that trips an invariant raises
:class:`InvariantViolation` carrying everything needed to triage the
failure without re-running under a debugger: the invariant's name, the
simulation time, a small key/value detail map (addresses, cores,
expected-vs-actual counts), and the tail of the event log -- the last
few dispatched events, formatted lazily so the hot path only ever
stores raw references.
"""

from __future__ import annotations

from typing import Any


def describe_event(time: int, callback: Any, arg: Any) -> str:
    """One human-readable line for a dispatched event."""
    name = getattr(callback, "__qualname__", repr(callback))
    if arg is None or arg.__class__ is not tuple and not hasattr(arg, "mtype"):
        detail = "" if arg is None else f" arg={arg!r:.60}"
    elif hasattr(arg, "mtype"):
        detail = (
            f" {arg.mtype.name} addr={arg.address}"
            f" {arg.sender}->{arg.dest} seq={arg.seq}"
        )
    else:  # (msg, cores) broadcast batch
        msg, cores = arg
        detail = (
            f" {msg.mtype.name} addr={msg.address} from={msg.sender}"
            f" batch={list(cores)[:8]}{'...' if len(cores) > 8 else ''}"
        )
    return f"t={time} {name}{detail}"


class InvariantViolation(Exception):
    """A cross-layer simulation invariant failed.

    Attributes
    ----------
    invariant:
        Stable machine-readable name (e.g. ``"swmr"``, ``"flit-conservation"``).
    time:
        Simulation time at which the violation was detected.
    details:
        Minimal structured context: addresses, cores, expected/actual
        values.  JSON-serializable by construction (plain scalars,
        lists, dicts).
    events:
        The most recent dispatched events, oldest first, already
        formatted as strings.
    telemetry:
        When the run also carried a telemetry collector
        (:mod:`repro.telemetry`): the last counter windows and the
        trace ring-buffer tail at the moment of the violation, as
        returned by ``TelemetryCollector.violation_context``.  ``None``
        when telemetry was off.
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        time: int = 0,
        details: dict | None = None,
        events: tuple[str, ...] = (),
        telemetry: dict | None = None,
    ) -> None:
        self.invariant = invariant
        self.time = time
        self.details = details or {}
        self.events = events
        self.telemetry = telemetry
        lines = [f"[{invariant}] {message} (t={time})"]
        for key, value in self.details.items():
            lines.append(f"  {key}: {value}")
        if events:
            lines.append("  recent events:")
            lines.extend(f"    {e}" for e in events)
        if telemetry is not None:
            lines.append(
                f"  telemetry: {len(telemetry.get('windows', []))} window(s), "
                f"{len(telemetry.get('trace_tail', []))} trace event(s) "
                "attached (see .telemetry)"
            )
        super().__init__("\n".join(lines))

    def to_dict(self) -> dict:
        """JSON payload for fuzz reproducers and CI artifacts."""
        doc = {
            "invariant": self.invariant,
            "time": self.time,
            "details": self.details,
            "events": list(self.events),
        }
        if self.telemetry is not None:
            doc["telemetry"] = self.telemetry
        return doc
