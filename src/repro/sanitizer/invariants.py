"""Stateless cross-layer consistency checks.

These functions inspect a finished (or quiescent) simulation object
graph and return a list of problem descriptions -- empty means the
invariant holds.  The :class:`~repro.sanitizer.core.Sanitizer` turns a
non-empty list into an :class:`InvariantViolation`; keeping the checks
pure makes them directly testable without running a simulation.
"""

from __future__ import annotations

from math import isclose

from repro.coherence.cache import CacheState
from repro.coherence.directory import DirState, Protocol


def directory_line_problem(
    entry,
    holders: dict[int, CacheState],
    protocol: Protocol,
) -> str | None:
    """Check one *quiescent* line's directory entry against the caches.

    ``holders`` maps core -> L2 state for every cache actually holding
    the line.  The admissible relations differ per protocol (DESIGN.md):
    ACKwise announces clean evictions so its view is exact; Dir_kB
    allows silent evictions, so its pointers may be stale supersets.
    """
    writers = [c for c, s in holders.items() if s is CacheState.MODIFIED]
    if len(writers) > 1:
        return f"multiple writers {sorted(writers)}"
    state = DirState.UNCACHED if entry is None else entry.state
    if state is DirState.UNCACHED:
        if holders:
            return f"uncached line held by cores {sorted(holders)}"
        return None
    if state is DirState.MODIFIED:
        if writers != [entry.owner]:
            return (
                f"owner is {entry.owner} but writers are {sorted(writers)} "
                f"(holders {sorted(holders)})"
            )
        if len(holders) != 1:
            return f"modified line also held by {sorted(set(holders) - {entry.owner})}"
        return None
    # DirState.SHARED
    if writers:
        return f"shared at the directory but core {writers[0]} holds it modified"
    held = set(holders)
    if protocol is Protocol.ACKWISE:
        if entry.global_bit:
            if entry.count != len(held):
                return (
                    f"ACKwise global count {entry.count} != "
                    f"{len(held)} actual sharers {sorted(held)}"
                )
        elif set(entry.sharers) != held:
            return (
                f"ACKwise sharer list {sorted(entry.sharers)} != "
                f"actual holders {sorted(held)}"
            )
    else:  # Dir_kB: silent evictions leave stale pointers (a superset)
        if not entry.global_bit and not held <= set(entry.sharers):
            return (
                f"Dir_kB holders {sorted(held)} not covered by pointers "
                f"{sorted(entry.sharers)} (broadcast bit clear)"
            )
        if not held:
            # With every copy silently evicted the entry may stay S, but
            # then nobody can hold it modified either -- nothing to check.
            return None
    return None


def port_problems(network) -> list[str]:
    """Reservation-accounting checks over every network port resource.

    A port's accumulated ``busy_cycles`` can never exceed the span it
    has been reserved to (``free_at``); an overlap -- a double
    reservation -- breaks that bound.  Duck-typed so it covers
    :class:`PortResource`, :class:`MultiPortResource`, the mesh's flat
    port arrays, and the ONet links alike.
    """
    problems: list[str] = []

    def check(label: str, free, busy) -> None:
        cap = sum(free) if isinstance(free, list) else free
        if cap < 0:
            problems.append(f"{label}: negative free_at {cap}")
        if busy is not None and busy < 0:
            problems.append(f"{label}: negative busy_cycles {busy}")
        if busy is not None and busy > cap >= 0:
            problems.append(
                f"{label}: busy_cycles {busy} exceeds reserved span {cap} "
                "(double-reserved port)"
            )

    free_arr = getattr(network, "_free_at", None)
    busy_arr = getattr(network, "_busy", None)
    if free_arr is not None and busy_arr is not None:
        for i, (f, b) in enumerate(zip(free_arr, busy_arr)):
            if b < 0 or f < 0 or b > f:
                check(f"mesh port {i}", f, b)
    for i, link in enumerate(getattr(network, "onet_links", ())):
        check(f"onet link {i}", getattr(link, "free_at", 0), None)
    for i, rnet in enumerate(getattr(network, "receive_nets", ())):
        for j, port in enumerate(getattr(rnet, "_ports", ())):
            check(f"receive net {i} port {j}", port.free_at, port.busy_cycles)
    return problems


def result_problems(result) -> list[str]:
    """Internal-consistency checks on a :class:`RunResult`."""
    problems: list[str] = []
    ns = result.network_stats
    cc = result.cache_counters

    if result.total_instructions != sum(result.per_core_instructions):
        problems.append(
            f"total_instructions {result.total_instructions} != "
            f"sum(per_core) {sum(result.per_core_instructions)}"
        )
    if result.n_compute_cores != len(result.per_core_instructions):
        problems.append(
            f"n_compute_cores {result.n_compute_cores} != "
            f"{len(result.per_core_instructions)} per-core entries"
        )
    for name, value in ns.as_dict().items():
        if value < 0:
            problems.append(f"network_stats.{name} negative: {value}")
    for name, value in cc.as_dict().items():
        if value < 0:
            problems.append(f"cache_counters.{name} negative: {value}")
    accesses = cc.l1d_reads + cc.l1d_writes
    outcomes = cc.l1_hits + cc.l2_hits + cc.l2_misses
    if accesses != outcomes:
        problems.append(
            f"L1-D accesses {accesses} != hit/miss outcomes {outcomes}"
        )
    if ns.latency_count > 0 and ns.latency_sum > ns.latency_count * ns.latency_max:
        problems.append(
            f"latency_sum {ns.latency_sum} exceeds count*max "
            f"{ns.latency_count * ns.latency_max}"
        )
    if result.stalled_cycles < 0:
        problems.append(f"negative stalled_cycles {result.stalled_cycles}")
    for name in ("dir_lookups", "dir_updates", "dir_inv_unicast",
                 "dir_inv_broadcast", "mem_reads", "mem_writes",
                 "barriers_completed"):
        if getattr(result, name) < 0:
            problems.append(f"negative {name}: {getattr(result, name)}")
    return problems


def energy_problems(result, config) -> list[str]:
    """Per-component energies must sum to every reported total."""
    from repro.energy.accounting import (
        ALL_KEYS, CACHE_KEYS, CORE_KEYS, NETWORK_KEYS, EnergyModel,
    )

    problems: list[str] = []
    breakdown = EnergyModel(config).evaluate(result)
    comp = breakdown.components

    def total(keys) -> float:
        return sum(comp.get(k, 0.0) for k in keys)

    pairs = (
        ("network_energy_j", breakdown.network_energy_j, total(NETWORK_KEYS)),
        ("cache_energy_j", breakdown.cache_energy_j, total(CACHE_KEYS)),
        ("core_energy_j", breakdown.core_energy_j, total(CORE_KEYS)),
        ("chip_energy_j", breakdown.chip_energy_j,
         total(NETWORK_KEYS) + total(CACHE_KEYS)),
        ("total_energy_j", breakdown.total_energy_j,
         total(NETWORK_KEYS) + total(CACHE_KEYS) + total(CORE_KEYS)),
        ("sum(components)", sum(comp.values()), total(ALL_KEYS)),
    )
    for name, reported, expected in pairs:
        if not isclose(reported, expected, rel_tol=1e-12, abs_tol=1e-18):
            problems.append(
                f"energy {name} = {reported!r} but components sum to {expected!r}"
            )
    if not isclose(breakdown.runtime_s, result.runtime_s,
                   rel_tol=1e-12, abs_tol=0.0):
        problems.append(
            f"energy runtime {breakdown.runtime_s!r} != "
            f"result runtime {result.runtime_s!r}"
        )
    edp = breakdown.edp()
    if not isclose(edp, breakdown.chip_energy_j * breakdown.runtime_s,
                   rel_tol=1e-12, abs_tol=1e-30):
        problems.append(f"edp {edp!r} inconsistent with chip energy x runtime")
    return problems
