"""The cross-layer runtime sanitizer.

One :class:`Sanitizer` attaches to one :class:`ManycoreSystem` at
construction time (``ManycoreSystem(config, sanitize=True)``) and
checks invariants *while the simulation runs*:

================== ====================================================
invariant           meaning
================== ====================================================
``swmr``            single-writer/multiple-reader: at most one MODIFIED
                    copy of a line, and never alongside SHARED copies
``l1-containment``  every L1 line resident (and state-compatible) in L2
``directory-\
consistency``       sharer lists / counts / owner match the actual
                    cache states whenever a line is quiescent
``ack-count``       a broadcast invalidation expects acks from exactly
                    the tracked sharers (ACKwise_k) or every core
                    (Dir_kB)
``seq-continuity``  per-slice broadcast sequence numbers increment by
                    one, mod 2^16, with no gaps
``delivery-order``  broadcast deliveries per (sender, receiver) arrive
                    in send order, so sequence numbers arrive in order
``broadcast-\
coverage``          a broadcast reaches every core except the sender,
                    exactly once
``time-travel``     events never dispatch before the current time and
                    packets never arrive at or before their send time
``message-\
conservation``      every scheduled protocol message is dispatched
                    exactly once; none remain at completion
``flit-\
conservation``      independently-counted injected/delivered flits
                    match the network's own statistics
``transaction-\
leak``              every SH/EX request sees a reply, every DIRTY_WB a
                    WB_ACK
``quiescence``      MSHRs, writeback buffers, sequencing buffers,
                    directory queues all empty at completion
``port-\
accounting``        no port's busy cycles exceed its reserved span
                    (catches double reservations)
``result-\
consistency``       RunResult counters internally consistent
``energy-\
accounting``        per-component energies sum to each reported total
``deadlock`` /
``livelock``        structured versions of the run-level failures
================== ====================================================

The sanitizer costs roughly 2-3x simulation wall-clock when enabled
and exactly nothing when disabled: an unsanitized system never
constructs, calls, or branches on any of this (see hooks.py).
"""

from __future__ import annotations

from collections import deque

from repro.coherence.cache import CacheState
from repro.coherence.directory import Protocol
from repro.coherence.messages import CoherenceMsg, MsgType
from repro.coherence.sequencing import SEQ_MOD
from repro.network.types import BROADCAST
from repro.sanitizer.hooks import (
    L1CacheProxy, L2CacheProxy, SanitizedEventQueue,
)
from repro.sanitizer.invariants import (
    directory_line_problem, energy_problems, port_problems, result_problems,
)
from repro.sanitizer.violations import InvariantViolation, describe_event
from repro.sim.eventq import _NO_ARG

#: Shadow-counted NetworkStats fields compared at end of run.
_SHADOW_KEYS = (
    "packets_sent", "unicasts_sent", "broadcasts_sent", "injected_flits",
    "received_unicast_flits", "received_broadcast_flits", "latency_count",
)

_RING_DEPTH = 10


class Sanitizer:
    """Attached per-system invariant checker (see module docstring)."""

    def __init__(self, system) -> None:
        self.system = system
        self._ring: deque = deque(maxlen=_RING_DEPTH)
        #: address -> protocol messages scheduled but not yet dispatched
        self._inflight: dict[int, int] = {}
        #: address -> outstanding SH_REQ/EX_REQ without a dispatched reply
        self._open_txn: dict[int, int] = {}
        #: address -> outstanding DIRTY_WB without a dispatched WB_ACK
        self._wb_open: dict[int, int] = {}
        #: line -> {core: L2 CacheState} for every actual holder
        self._holders: dict[int, dict[int, CacheState]] = {}
        #: slice -> last broadcast seq this sanitizer saw leave the slice
        self._bcast_sent: dict[int, int] = {}
        #: src*n_cores+dst -> last broadcast arrival time on that pair
        self._bcast_arrival: dict[int, int] = {}
        #: (address, home, expected acks) checked at end of the event
        self._deferred_acks: list[tuple[int, int, int]] = []
        #: addresses touched by the current event, checked when quiescent
        self._dirty: list[int] = []
        self._shadow = dict.fromkeys(_SHADOW_KEYS, 0)
        self._n_cores = system.topology.n_cores
        self._all_cores = frozenset(range(self._n_cores))
        self._inject_func = type(system)._inject
        self._deliver_func = type(system)._deliver_broadcast_group
        self._orig_run = None
        self._orig_send_msg = None
        self._orig_net_send = None

    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Install every hook on the owning system (idempotence not
        needed: called exactly once, from ``ManycoreSystem.__init__``)."""
        system = self.system
        self._orig_run = system.run
        self._orig_send_msg = system.send_msg
        self._orig_net_send = system.network.send
        system.eventq = SanitizedEventQueue(self)
        system.send_msg = self._send_msg
        system.network.send = self._net_send
        for core, ctrl in system.caches.items():
            inner_l2 = ctrl.l2
            ctrl.l2 = L2CacheProxy(inner_l2, self, core)
            ctrl.l1d = L1CacheProxy(ctrl.l1d, self, core, inner_l2)
        system.run = self._run

    # ------------------------------------------------------------------
    # Violation plumbing
    # ------------------------------------------------------------------
    def violation(self, invariant: str, message: str,
                  details: dict | None = None) -> None:
        raise InvariantViolation(
            invariant, message,
            time=self.system.eventq.now,
            details=details,
            events=tuple(
                describe_event(t, cb, a) for t, cb, a in self._ring
            ),
            telemetry=self._telemetry_context(),
        )

    def _telemetry_context(self) -> dict | None:
        """The co-attached telemetry collector's window/trace tail, when
        the run carries one (``--sanitize --telemetry``)."""
        collector = getattr(self.system, "telemetry", None)
        if collector is None:
            return None
        try:
            return collector.violation_context()
        except Exception:  # never mask the real violation
            return None

    def record_event(self, time: int, callback, arg) -> None:
        self._ring.append((time, callback, None if arg is _NO_ARG else arg))

    # ------------------------------------------------------------------
    # Event-queue hooks (SanitizedEventQueue)
    # ------------------------------------------------------------------
    def on_schedule(self, time: int, callback, arg) -> None:
        if arg.__class__ is CoherenceMsg:
            addr = arg.address
            self._inflight[addr] = self._inflight.get(addr, 0) + 1
        elif arg.__class__ is tuple and len(arg) == 2 \
                and arg[0].__class__ is CoherenceMsg:
            addr = arg[0].address
            self._inflight[addr] = self._inflight.get(addr, 0) + 1

    def on_dispatch(self, time: int, callback, arg) -> None:
        if arg.__class__ is CoherenceMsg:
            self._consume_inflight(arg.address)
            if getattr(callback, "__func__", None) is not self._inject_func:
                mt = arg.mtype
                if mt is MsgType.SH_REP or mt is MsgType.EX_REP:
                    self._close(self._open_txn, arg.address, "transaction-leak",
                                f"{mt.name} delivered with no open transaction")
                elif mt is MsgType.WB_ACK:
                    self._close(self._wb_open, arg.address, "transaction-leak",
                                "WB_ACK delivered with no outstanding DIRTY_WB")
        elif arg.__class__ is tuple and len(arg) == 2 \
                and arg[0].__class__ is CoherenceMsg:
            self._consume_inflight(arg[0].address)
        if self._deferred_acks:
            self._check_deferred_acks()
        if self._dirty:
            dirty, self._dirty = self._dirty, []
            for addr in dirty:
                self._check_quiescent_line(addr)

    def _consume_inflight(self, addr: int) -> None:
        n = self._inflight.get(addr, 0) - 1
        if n < 0:
            self.violation(
                "message-conservation",
                f"message for line {addr} dispatched more often than scheduled",
                details={"address": addr},
            )
        elif n == 0:
            del self._inflight[addr]
        else:
            self._inflight[addr] = n
        self._dirty.append(addr)

    def _close(self, table: dict[int, int], addr: int,
               invariant: str, message: str) -> None:
        n = table.get(addr, 0) - 1
        if n < 0:
            self.violation(invariant, message, details={"address": addr})
        elif n == 0:
            del table[addr]
        else:
            table[addr] = n

    # ------------------------------------------------------------------
    # send_msg hook (fabric level)
    # ------------------------------------------------------------------
    def _send_msg(self, msg: CoherenceMsg, time: int) -> None:
        mt = msg.mtype
        if mt is MsgType.SH_REQ or mt is MsgType.EX_REQ:
            self._open_txn[msg.address] = self._open_txn.get(msg.address, 0) + 1
        elif mt is MsgType.DIRTY_WB:
            self._wb_open[msg.address] = self._wb_open.get(msg.address, 0) + 1
        elif mt is MsgType.INV_BCAST:
            self._check_broadcast_send(msg)
        self._orig_send_msg(msg, time)

    def _check_broadcast_send(self, msg: CoherenceMsg) -> None:
        system = self.system
        home = msg.sender
        directory = system.directories[home]
        if system.config.sequencing:
            sl = system.slice_of_home(home)
            want = (self._bcast_sent.get(sl, 0) + 1) % SEQ_MOD
            stamped = system.sequencer.current_seq(sl)
            if msg.seq != want or msg.seq != stamped:
                self.violation(
                    "seq-continuity",
                    f"slice {sl} broadcast carries seq {msg.seq}; expected "
                    f"{want} (sequencer says {stamped})",
                    details={"slice": sl, "seq": msg.seq, "expected": want,
                             "address": msg.address},
                )
            self._bcast_sent[sl] = msg.seq
        if directory.protocol is Protocol.ACKWISE:
            entry = directory.entries.get(msg.address)
            expected = entry.count if entry is not None else 0
        else:
            expected = system.n_broadcast_ackers(home)
        self._deferred_acks.append((msg.address, home, expected))

    def _check_deferred_acks(self) -> None:
        # pending_acks is assigned *after* the send inside
        # _start_exclusive, so the comparison runs once the surrounding
        # event finishes (nothing else can interleave in between).
        deferred, self._deferred_acks = self._deferred_acks, []
        for addr, home, expected in deferred:
            txn = self.system.directories[home].busy.get(addr)
            if txn is None or not txn.broadcast:
                self.violation(
                    "ack-count",
                    f"broadcast for line {addr} sent outside a busy "
                    "broadcast transaction",
                    details={"address": addr, "home": home},
                )
            elif txn.pending_acks != expected:
                self.violation(
                    "ack-count",
                    f"home {home} expects {txn.pending_acks} acks for line "
                    f"{addr}; true accounting says {expected}",
                    details={"address": addr, "home": home,
                             "pending_acks": txn.pending_acks,
                             "expected": expected},
                )

    # ------------------------------------------------------------------
    # network.send hook
    # ------------------------------------------------------------------
    def _net_send(self, pkt):
        t = pkt.time
        src = pkt.src
        dst = pkt.dst
        deliveries = self._orig_net_send(pkt)
        n_flits = self.system.network._n_flits_cache[pkt.size_bits]
        sh = self._shadow
        sh["packets_sent"] += 1
        sh["injected_flits"] += n_flits
        if dst == BROADCAST:
            sh["broadcasts_sent"] += 1
            sh["received_broadcast_flits"] += n_flits * len(deliveries)
            sh["latency_count"] += len(deliveries)
            got = [c for c, _ in deliveries]
            expected = self._all_cores - {src}
            if len(got) != len(expected) or set(got) != expected:
                missing = sorted(expected - set(got))[:8]
                self.violation(
                    "broadcast-coverage",
                    f"broadcast from {src} delivered to {len(got)} cores, "
                    f"expected {len(expected)} (missing e.g. {missing})",
                    details={"src": src, "delivered": len(got),
                             "expected": len(expected)},
                )
            arrivals = self._bcast_arrival
            n = self._n_cores
            for core, arrival in deliveries:
                if arrival <= t:
                    self.violation(
                        "time-travel",
                        f"broadcast sent at t={t} arrives at core {core} "
                        f"at t={arrival}",
                        details={"src": src, "dst": core, "arrival": arrival},
                    )
                key = src * n + core
                prev = arrivals.get(key, -1)
                if arrival < prev:
                    self.violation(
                        "delivery-order",
                        f"broadcast {src}->{core} arrives at t={arrival}, "
                        f"before the previous broadcast on that pair "
                        f"(t={prev}): sequence numbers would arrive out of "
                        "order",
                        details={"src": src, "dst": core,
                                 "arrival": arrival, "previous": prev},
                    )
                arrivals[key] = arrival
        else:
            sh["unicasts_sent"] += 1
            sh["received_unicast_flits"] += n_flits
            sh["latency_count"] += 1
            if len(deliveries) != 1 or deliveries[0][0] != dst:
                self.violation(
                    "broadcast-coverage",
                    f"unicast {src}->{dst} produced deliveries {deliveries!r}",
                    details={"src": src, "dst": dst},
                )
            if deliveries[0][1] <= t:
                self.violation(
                    "time-travel",
                    f"unicast sent at t={t} arrives at t={deliveries[0][1]}",
                    details={"src": src, "dst": dst,
                             "arrival": deliveries[0][1]},
                )
        return deliveries

    # ------------------------------------------------------------------
    # Cache-proxy hooks: continuous SWMR over the holder index
    # ------------------------------------------------------------------
    def _buffered_bcast(self, core: int, line: int) -> bool:
        # A cache with a buffered broadcast invalidation for this line
        # (racing its own SH_REQ) may transiently disagree with the rest
        # of the system; the buffered invalidation is applied
        # synchronously right after the install (see _handle_sh_rep), so
        # the exemption never leaves an unchecked window.
        return line in self.system.caches[core]._pending_bcasts

    def l2_changed(self, core: int, line: int, state: CacheState) -> None:
        holders = self._holders.get(line)
        if holders is None:
            holders = self._holders[line] = {}
        if state is CacheState.MODIFIED:
            for other, s in holders.items():
                if other != core and not self._buffered_bcast(other, line):
                    self.violation(
                        "swmr",
                        f"core {core} takes line {line} MODIFIED while core "
                        f"{other} still holds it {s.name}",
                        details={"address": line, "writer": core,
                                 "holder": other, "holder_state": s.name},
                    )
        else:
            for other, s in holders.items():
                if (other != core and s is CacheState.MODIFIED
                        and not self._buffered_bcast(core, line)):
                    self.violation(
                        "swmr",
                        f"core {core} takes line {line} SHARED while core "
                        f"{other} holds it MODIFIED",
                        details={"address": line, "reader": core,
                                 "writer": other},
                    )
        holders[core] = state

    def l2_removed(self, core: int, line: int) -> None:
        holders = self._holders.get(line)
        if holders is not None:
            holders.pop(core, None)
            if not holders:
                del self._holders[line]

    # ------------------------------------------------------------------
    # Quiescent-line directory consistency
    # ------------------------------------------------------------------
    def _check_quiescent_line(self, addr: int) -> None:
        if (addr in self._inflight or addr in self._open_txn
                or addr in self._wb_open):
            return
        system = self.system
        directory = system.directories[system.home_of(addr)]
        if addr in directory.busy or addr in directory.queues:
            return
        holders = self._holders.get(addr) or {}
        problem = directory_line_problem(
            directory.entries.get(addr), holders, directory.protocol,
        )
        if problem is not None:
            self.violation(
                "directory-consistency",
                f"line {addr} (home {directory.core}): {problem}",
                details={"address": addr, "home": directory.core},
            )

    # ------------------------------------------------------------------
    # Run wrapper + end-of-run checks
    # ------------------------------------------------------------------
    def _run(self, traces, app: str = "workload",
             max_events: int | None = None):
        try:
            result = self._orig_run(traces, app=app, max_events=max_events)
        except InvariantViolation:
            raise
        except RuntimeError as exc:
            text = str(exc)
            if text.startswith("deadlock"):
                kind = "deadlock"
            elif text.startswith("event budget exceeded"):
                kind = "livelock"
            else:
                raise
            raise InvariantViolation(
                kind, text,
                time=self.system.eventq.now,
                details=self._stuck_details(),
                events=tuple(
                    describe_event(t, cb, a) for t, cb, a in self._ring
                ),
                telemetry=self._telemetry_context(),
            ) from exc
        self.check_end_of_run(result)
        return result

    def _stuck_details(self) -> dict:
        system = self.system
        busy = {}
        for d in system.directories.values():
            for addr, txn in d.busy.items():
                if len(busy) >= 4:
                    break
                busy[addr] = (
                    f"home={d.core} {txn.mtype.name} from {txn.requester} "
                    f"acks={txn.pending_acks} mem={txn.waiting_mem} "
                    f"owner={txn.waiting_owner}"
                )
        mshrs = [
            f"core {core} line {c.mshr.address}"
            f"{' (write)' if c.mshr.is_write else ''}"
            for core, c in system.caches.items() if c.mshr is not None
        ]
        return {
            "busy_lines": busy,
            "open_mshrs": mshrs[:8],
            "messages_in_flight": sum(self._inflight.values()),
        }

    def check_end_of_run(self, result) -> None:
        system = self.system
        if self._inflight:
            self.violation(
                "message-conservation",
                f"{sum(self._inflight.values())} protocol messages still in "
                f"flight at completion (e.g. line {next(iter(self._inflight))})",
            )
        if self._open_txn:
            self.violation(
                "transaction-leak",
                f"{len(self._open_txn)} line(s) with requests that never saw "
                f"a reply (e.g. line {next(iter(self._open_txn))})",
            )
        if self._wb_open:
            self.violation(
                "transaction-leak",
                f"{len(self._wb_open)} dirty writeback(s) never acknowledged "
                f"(e.g. line {next(iter(self._wb_open))})",
            )
        for core, cache in system.caches.items():
            leftovers = {
                "an open MSHR": cache.mshr is not None,
                "a non-empty writeback buffer": bool(cache.wb_buffer),
                "buffered broadcast invalidations": bool(cache._pending_bcasts),
                "buffered early unicasts": bool(cache._early_unicasts),
            }
            for what, bad in leftovers.items():
                if bad:
                    self.violation(
                        "quiescence",
                        f"core {core} finished with {what}",
                        details={"core": core},
                    )
        for core, directory in system.directories.items():
            if directory.busy or directory.queues:
                self.violation(
                    "quiescence",
                    f"directory at core {core} finished with "
                    f"{len(directory.busy)} busy and "
                    f"{len(directory.queues)} queued line(s)",
                    details={"core": core},
                )
        if system.config.sequencing:
            self._check_trackers()
        stats = system.network.stats.as_dict()
        for key, counted in self._shadow.items():
            if stats[key] != counted:
                self.violation(
                    "flit-conservation",
                    f"network reports {key}={stats[key]} but the sanitizer "
                    f"counted {counted}",
                    details={"counter": key, "reported": stats[key],
                             "counted": counted},
                )
        for problem in port_problems(system.network):
            self.violation("port-accounting", problem)
        for problem in result_problems(result):
            self.violation("result-consistency", problem)
        for problem in energy_problems(result, system.config):
            self.violation("energy-accounting", problem)

    def _check_trackers(self) -> None:
        # Every broadcast reaches every compute core (delivery or local
        # loopback) and is processed or stale-dropped -- both advance
        # the receiver's tracker -- so at completion each tracker must
        # agree with the sending side's final counter, wrap included.
        system = self.system
        for sl in range(system.topology.n_clusters):
            sent = system.sequencer.current_seq(sl)
            for core, cache in system.caches.items():
                seen = cache.tracker.last_seen(sl)
                if seen != sent:
                    self.violation(
                        "delivery-order",
                        f"core {core} processed broadcasts from slice {sl} "
                        f"up to seq {seen}, but the slice sent up to {sent}: "
                        "a broadcast was lost or missed",
                        details={"core": core, "slice": sl,
                                 "seen": seen, "sent": sent},
                    )
