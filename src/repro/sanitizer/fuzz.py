"""``repro fuzz``: seeded randomized invariant + differential fuzzer.

Each case is a tiny random workload (randomized per-core traces with
shared addresses and barriers) on a randomized small architecture
(mesh width, network, protocol, hardware sharer count).  Every case is
checked two ways:

1. **sanitized** -- the batched fast-path simulator runs under the
   runtime invariant checker (:mod:`repro.sanitizer`), which raises
   :class:`~repro.sanitizer.InvariantViolation` on any cross-layer
   inconsistency;
2. **differential** -- the same case re-runs on the unbatched
   reference path (``batch_broadcasts=False``, the PR-2 oracle) and
   the two :class:`RunResult` payloads are compared field by field.

On failure the trace is shrunk (greedy delta debugging: drop whole
cores, then halving chunks of ops, then simplify surviving ops) to a
minimal reproducer written to ``benchmarks/fuzz/repro_<seed>.json``,
replayable with ``repro fuzz --replay <file>``.

``--inject`` arms one of the deterministic faults from
:mod:`repro.sanitizer.faults` in every case, turning the fuzzer into a
sanitizer *detector* test: it succeeds (exit 1 + reproducer) when the
sanitizer catches the corruption.

Cases are valid JSON end to end -- op encoding: ``["c", cycles]``,
``["m", address, is_write]``, ``["b", barrier_id]``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.coherence.directory import Protocol
from repro.log import get_logger, set_verbosity
from repro.network.registry import (
    UnknownNetworkError,
    get_network,
    networks_for_fuzzing,
)
from repro.sanitizer import InvariantViolation
from repro.sanitizer.faults import FAULTS, inject_fault
from repro.sim.config import SystemConfig
from repro.workloads.trace import BarrierOp, ComputeOp, CoreTrace, MemoryOp

_logger = get_logger("fuzz")

#: Ceiling on events per fuzz run: converts protocol livelocks into
#: structured ``livelock`` violations instead of hanging the fuzzer.
MAX_EVENTS = 2_000_000

#: Reproducer file format version.
REPRO_SCHEMA = 1

DEFAULT_OUT_DIR = Path("benchmarks/fuzz")


# ----------------------------------------------------------------------
# case generation
# ----------------------------------------------------------------------

def generate_case(
    seed: int, fault: str | None = None,
    networks: tuple[str, ...] | None = None,
) -> dict:
    """A random, self-contained, JSON-serializable fuzz case.

    Generation is fully determined by ``(seed, networks)``.  Addresses
    are drawn from a deliberately tiny pool so that sharing,
    invalidation broadcasts and directory pressure happen even in
    ~20-op traces, and every barrier id appears in every compute core's
    trace (anything else deadlocks by construction).  ``networks``
    restricts the architecture pool (CI matrix rows fuzz one family at
    a time); by default every network the registry says is instantiable
    at the chosen mesh width is eligible.
    """
    import random

    rng = random.Random(seed)
    # favour the smallest machine: shrink throughput beats coverage.
    # Optical layers need >= 2 clusters, so the one-cluster w4 machine
    # only runs the electrical meshes (the registry's min_clusters).
    mesh_width = rng.choice((4, 4, 8, 8))
    if networks is not None and not any(
        n in networks_for_fuzzing(4) for n in networks
    ):
        # the requested networks all need clusters: w4 can't host any
        mesh_width = 8
    pool = tuple(
        n for n in networks_for_fuzzing(mesh_width)
        if networks is None or n in networks
    )
    case = {
        "seed": seed,
        "mesh_width": mesh_width,
        "network": rng.choice(pool),
        # a stale sharer pointer is architecturally legal under Dir_kB
        # (silent evictions), so that fault only fires on ACKwise
        "protocol": "ackwise" if fault == "stale-sharer"
        else rng.choice(("ackwise", "dirkb")),
        "hardware_sharers": rng.choice((2, 3, 4)),
    }
    config = case_config(case)
    compute = config.topology.compute_cores()
    pool = rng.sample(range(4096), rng.randint(2, 8))
    n_barriers = rng.randint(0, 2)
    traces: dict[str, list] = {}
    for core in compute:
        ops: list[list] = []
        for phase in range(n_barriers + 1):
            for _ in range(rng.randint(0, 8)):
                r = rng.random()
                if r < 0.60:
                    ops.append(["m", rng.choice(pool), int(rng.random() < 0.4)])
                elif r < 0.90:
                    ops.append(["c", rng.randint(1, 12)])
                # else: an empty slot -- varies trace lengths
            if phase < n_barriers:
                ops.append(["b", phase])
        traces[str(core)] = ops
    case["traces"] = traces
    return case


def case_config(case: dict) -> SystemConfig:
    """The (scaled) architecture a case runs on."""
    base = SystemConfig(
        network=case["network"],
        protocol=Protocol(case["protocol"]),
        hardware_sharers=case["hardware_sharers"],
    )
    return base.scaled(mesh_width=case["mesh_width"])


def _decode_op(op: list):
    tag = op[0]
    if tag == "c":
        return ComputeOp(cycles=op[1])
    if tag == "m":
        return MemoryOp(address=op[1], is_write=bool(op[2]))
    if tag == "b":
        return BarrierOp(barrier_id=op[1])
    raise ValueError(f"bad op tag {tag!r} in fuzz case")


def case_traces(case: dict) -> dict[int, CoreTrace]:
    return {
        int(core): CoreTrace(int(core), [_decode_op(op) for op in ops])
        for core, ops in case["traces"].items()
    }


def total_ops(case: dict) -> int:
    return sum(len(ops) for ops in case["traces"].values())


# ----------------------------------------------------------------------
# checking
# ----------------------------------------------------------------------

def run_case(case: dict, sanitize: bool, batch: bool, fault: str | None = None):
    """One simulation of ``case``; returns its RunResult."""
    from repro.sim.system import ManycoreSystem

    system = ManycoreSystem(
        case_config(case), batch_broadcasts=batch, sanitize=sanitize
    )
    if fault is not None:
        inject_fault(system, fault)
    return system.run(case_traces(case), app="fuzz", max_events=MAX_EVENTS)


def check_case(case: dict, fault: str | None = None) -> dict | None:
    """Run ``case`` sanitized (and, without a fault, differentially).

    Returns ``None`` when the case passes, else a JSON-serializable
    failure description.  Deterministic: the same case always yields
    the same outcome.
    """
    try:
        result = run_case(case, sanitize=True, batch=True, fault=fault)
    except InvariantViolation as violation:
        return {"kind": "invariant", "violation": violation.to_dict()}
    except Exception as exc:  # noqa: BLE001 - any crash is a finding
        return {"kind": "crash", "error": f"{type(exc).__name__}: {exc}"}
    if fault is not None:
        return None  # fault armed but never fired / never detected
    try:
        oracle = run_case(case, sanitize=False, batch=False)
    except Exception as exc:  # noqa: BLE001
        return {"kind": "oracle-crash", "error": f"{type(exc).__name__}: {exc}"}
    got, want = result.to_dict(), oracle.to_dict()
    if got != want:
        return {"kind": "differential", "diff": _first_diffs(got, want)}
    return None


def _first_diffs(got: dict, want: dict, limit: int = 8) -> list[dict]:
    """The first ``limit`` differing fields between two result dicts."""
    diffs = []
    for key in sorted(set(got) | set(want)):
        if got.get(key) != want.get(key):
            diffs.append(
                {"field": key, "batched": got.get(key), "reference": want.get(key)}
            )
            if len(diffs) >= limit:
                break
    return diffs


def _same_failure(a: dict | None, b: dict | None) -> bool:
    """Failure equivalence used by the shrinker and ``--replay``: the
    same kind of failure (and, for invariant violations, the same
    invariant) -- not an identical message, which shifts as the trace
    shrinks."""
    if a is None or b is None:
        return a is None and b is None
    if a["kind"] != b["kind"]:
        return False
    if a["kind"] == "invariant":
        return a["violation"]["invariant"] == b["violation"]["invariant"]
    return True


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------

def _normalize(case: dict) -> dict:
    """Keep only barrier ids present in *every* core's ops.

    A barrier only some cores arrive at deadlocks by construction, so
    every shrink candidate is normalized before it is tried -- the
    shrinker should find protocol bugs, not barrier-skew artifacts.
    (Generated ids are ascending per core, so the surviving subset
    arrives in a consistent order everywhere.)
    """
    traces = case["traces"]
    common: set | None = None
    for ops in traces.values():
        ids = {op[1] for op in ops if op[0] == "b"}
        common = ids if common is None else common & ids
    common = common or set()
    return {
        **case,
        "traces": {
            core: [op for op in ops if op[0] != "b" or op[1] in common]
            for core, ops in traces.items()
        },
    }


def shrink_case(case: dict, failure: dict, fault: str | None = None,
                log=lambda line: None) -> dict:
    """Greedy delta-debugging shrink preserving ``failure``'s kind."""

    def still_fails(candidate: dict) -> bool:
        return _same_failure(check_case(candidate, fault), failure)

    current = _normalize(case)
    if not still_fails(current):
        current = case  # normalization itself changed the outcome

    changed = True
    while changed:
        changed = False
        # 1. empty out whole cores, largest trace first
        for core in sorted(
            current["traces"], key=lambda c: -len(current["traces"][c])
        ):
            if not current["traces"][core]:
                continue
            candidate = _normalize(
                {**current, "traces": {**current["traces"], core: []}}
            )
            if still_fails(candidate):
                current = candidate
                changed = True
                log(f"  shrink: core {core} cleared -> {total_ops(current)} ops")
        # 2. per-core chunk removal, halving chunk sizes
        for core in list(current["traces"]):
            chunk = max(1, len(current["traces"][core]) // 2)
            while chunk >= 1:
                i = 0
                while i < len(current["traces"][core]):
                    ops = current["traces"][core]
                    candidate = _normalize(
                        {**current,
                         "traces": {**current["traces"],
                                    core: ops[:i] + ops[i + chunk:]}}
                    )
                    if still_fails(candidate):
                        current = candidate
                        changed = True
                    else:
                        i += chunk
                if chunk == 1:
                    break
                chunk //= 2
        if changed:
            log(f"  shrink: pass complete -> {total_ops(current)} ops")
    # 3. simplify surviving ops (shorter computes, reads over writes)
    for core, ops in current["traces"].items():
        for i, op in enumerate(ops):
            for simpler in _simpler_ops(op):
                candidate = {
                    **current,
                    "traces": {**current["traces"],
                               core: ops[:i] + [simpler] + ops[i + 1:]},
                }
                if still_fails(candidate):
                    current = candidate
                    ops = current["traces"][core]
                    break
    return current


def _simpler_ops(op: list) -> list[list]:
    if op[0] == "c" and op[1] > 1:
        return [["c", 1]]
    if op[0] == "m" and op[2]:
        return [["m", op[1], 0]]
    return []


# ----------------------------------------------------------------------
# reproducers
# ----------------------------------------------------------------------

def write_reproducer(path: Path, case: dict, failure: dict,
                     original_ops: int, fault: str | None,
                     timeline: dict | None = None) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = {
        "schema": REPRO_SCHEMA,
        "seed": case["seed"],
        "fault": fault,
        "failure": failure,
        "original_ops": original_ops,
        "shrunk_ops": total_ops(case),
        "replay": f"python -m repro fuzz --replay {path}",
        "case": case,
    }
    if timeline is not None:
        doc["telemetry"] = timeline
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def capture_timeline(case: dict, fault: str | None) -> dict | None:
    """The telemetry window/trace context around ``case``'s failure.

    Re-runs the (already shrunk) case once more with the telemetry
    collector attached -- in memory, short windows -- and harvests the
    final counter windows plus the trace ring tail.  Every error path
    degrades to ``None``: the reproducer is complete without it.
    """
    from repro.sim.system import ManycoreSystem
    from repro.telemetry.collector import TelemetryConfig

    try:
        system = ManycoreSystem(
            case_config(case), batch_broadcasts=True, sanitize=True,
            telemetry=TelemetryConfig(window_cycles=64),
        )
        if fault is not None:
            inject_fault(system, fault)
        try:
            system.run(case_traces(case), app="fuzz", max_events=MAX_EVENTS)
        except Exception:  # noqa: BLE001 - the case fails by design
            pass
        return system.telemetry.violation_context()
    except Exception:  # noqa: BLE001 - timeline capture is best-effort
        return None


def replay(path: Path) -> int:
    """Re-run a reproducer file; exit 0 iff the failure reproduces."""
    doc = json.loads(path.read_text())
    if doc.get("schema") != REPRO_SCHEMA:
        print(f"unsupported reproducer schema {doc.get('schema')!r}",
              file=sys.stderr)
        return 2
    failure = check_case(doc["case"], doc.get("fault"))
    if _same_failure(failure, doc["failure"]):
        print(f"reproduced: {_describe_failure(failure)}")
        return 0
    if failure is None:
        print("did NOT reproduce: case now passes", file=sys.stderr)
    else:
        print(
            f"different failure: expected {_describe_failure(doc['failure'])}, "
            f"got {_describe_failure(failure)}",
            file=sys.stderr,
        )
    return 1


def _describe_failure(failure: dict) -> str:
    if failure["kind"] == "invariant":
        v = failure["violation"]
        return f"invariant '{v['invariant']}' at t={v['time']}"
    if failure["kind"] == "differential":
        fields = ", ".join(d["field"] for d in failure["diff"][:3])
        return f"differential mismatch ({fields})"
    return f"{failure['kind']}: {failure.get('error', '')}"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def _parse_budget(text: str) -> float:
    return float(text[:-1] if text.endswith("s") else text)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description=(
            "Seeded randomized workload/config fuzzer: every case runs "
            "under the runtime invariant checker and differentially "
            "against the unbatched reference simulator; failures are "
            "shrunk to minimal reproducers."
        ),
    )
    parser.add_argument(
        "--budget", default=None, metavar="SECONDS",
        help="wall-clock budget, e.g. '120s' (default: --cases bound)",
    )
    parser.add_argument(
        "--cases", type=int, default=50, metavar="N",
        help="max cases when no --budget is given (default 50)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="base seed; case i uses seed base+i (default 0)",
    )
    parser.add_argument(
        "--seed-from-run-id", action="store_true",
        help="derive the base seed from GITHUB_RUN_ID (CI: a different "
             "seed window every night, reproducible from the run id)",
    )
    parser.add_argument(
        "--inject", choices=FAULTS, default=None, metavar="FAULT",
        help="arm a deterministic fault in every case and require the "
             f"sanitizer to catch it; one of {', '.join(FAULTS)}",
    )
    parser.add_argument(
        "--networks", default=None, metavar="N,M,...",
        help="restrict cases to these registered networks (default: "
             "every network instantiable at the case's mesh width)",
    )
    parser.add_argument(
        "--out-dir", type=Path, default=DEFAULT_OUT_DIR, metavar="DIR",
        help=f"where reproducers are written (default {DEFAULT_OUT_DIR})",
    )
    parser.add_argument(
        "--replay", type=Path, default=None, metavar="FILE",
        help="re-run a reproducer JSON; exit 0 iff it still fails "
             "the same way",
    )
    parser.add_argument(
        "--verbose", "-v", action="count", default=0,
        help="more repro.log stderr output (-v: per-step shrink log)",
    )
    parser.add_argument(
        "--quiet", "-q", action="store_true",
        help="suppress repro.log progress output (failures still print)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Fuzz until failure, budget, or case bound.

    Exit codes: 0 = budget exhausted with no failure, 1 = failure found
    (reproducer written), 2 = usage error.  ``--replay`` inverts the
    convention: 0 = reproduced, 1 = not.
    """
    args = build_parser().parse_args(argv)
    set_verbosity(verbose=args.verbose, quiet=args.quiet)
    if args.replay is not None:
        return replay(args.replay)

    networks = None
    if args.networks:
        networks = tuple(args.networks.split(","))
        try:
            for name in networks:
                get_network(name)
        except UnknownNetworkError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2

    base_seed = args.seed
    if args.seed_from_run_id:
        run_id = os.environ.get("GITHUB_RUN_ID")
        if not run_id:
            print("--seed-from-run-id: GITHUB_RUN_ID is not set",
                  file=sys.stderr)
            return 2
        base_seed = int(run_id) % 1_000_000_000

    deadline = None
    if args.budget is not None:
        deadline = time.monotonic() + _parse_budget(args.budget)
    mode = f"inject={args.inject}" if args.inject else "differential"
    if networks is not None:
        mode += f", networks={','.join(networks)}"
    _logger.info(f"base seed {base_seed}, mode {mode}")

    tried = 0
    index = 0
    while True:
        if deadline is not None:
            if time.monotonic() >= deadline:
                break
        elif index >= args.cases:
            break
        seed = base_seed + index
        index += 1
        case = generate_case(seed, fault=args.inject, networks=networks)
        failure = check_case(case, args.inject)
        tried += 1
        if failure is None:
            continue
        ops_before = total_ops(case)
        _logger.warning(
            f"seed {seed} FAILED ({_describe_failure(failure)}); "
            f"shrinking from {ops_before} ops",
        )
        shrunk = shrink_case(
            case, failure, args.inject,
            log=lambda line: _logger.debug(line.strip()),
        )
        # record the shrunk case's own failure (times and event context
        # shift as the trace shrinks; the invariant kind is preserved)
        failure = check_case(shrunk, args.inject) or failure
        timeline = capture_timeline(shrunk, args.inject)
        out = args.out_dir / f"repro_{seed}.json"
        write_reproducer(out, shrunk, failure, ops_before, args.inject,
                         timeline=timeline)
        print(
            f"fuzz: shrunk to {total_ops(shrunk)} ops; reproducer: {out}\n"
            f"      replay with: python -m repro fuzz --replay {out}"
        )
        return 1
    print(f"fuzz: {tried} case(s) passed, no failures")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
