"""Opt-in runtime invariant checking for the simulator.

Enable per run with ``ManycoreSystem(config, sanitize=True)`` /
``RunSpec(sanitize=True)``, per invocation with ``repro run
--sanitize``, or globally with ``REPRO_SANITIZE=1``.  Disabled (the
default), none of this code is even imported on the simulation path.

See DESIGN.md section 10 for the invariant catalogue and
:mod:`repro.sanitizer.fuzz` for the differential fuzzer built on top.
"""

from repro.sanitizer.violations import InvariantViolation, describe_event

__all__ = ["InvariantViolation", "describe_event"]
