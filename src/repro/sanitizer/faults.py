"""Deterministic fault injection for sanitizer validation.

Each injector corrupts one layer of an already-constructed system in a
way the protocol itself tolerates silently (no crash, no hang in the
un-sanitized simulator for stale-sharer/double-reserve) but that the
sanitizer must flag.  They exist to prove the sanitizer *catches*
real classes of bugs -- the fuzzer's ``--inject`` mode and
``tests/sanitizer/test_fault_injection.py`` are built on them.

Every injector returns a small state dict whose ``"fired"`` entry
records whether the fault actually triggered during the run; a fuzz
case where the fault never fires is simply uninteresting, not a miss.
"""

from __future__ import annotations

from repro.coherence.messages import CoherenceMsg, MsgType
from repro.network.engine import PortResource

#: Injectable fault names (CLI vocabulary).
FAULTS = ("drop-ack", "stale-sharer", "double-reserve")


def inject_fault(system, fault: str, nth: int = 1) -> dict:
    """Arm ``fault`` on ``system``; returns its mutable state dict.

    Must be called after construction (and after the sanitizer attach,
    which happens inside ``ManycoreSystem.__init__``) and before
    ``run()``.  ``nth`` selects which opportunity triggers (1-based).
    """
    if nth < 1:
        raise ValueError(f"nth must be >= 1, got {nth}")
    if fault == "drop-ack":
        return _drop_ack(system, nth)
    if fault == "stale-sharer":
        return _stale_sharer(system, nth)
    if fault == "double-reserve":
        return _double_reserve(system)
    raise ValueError(f"unknown fault {fault!r}; choose from {FAULTS}")


def _drop_ack(system, nth: int) -> dict:
    """Silently drop the nth INV_ACK at the fabric boundary.

    Models a lost acknowledgement: the home's transaction never
    completes, the requester blocks forever, and the run deadlocks --
    which the sanitizer reports as a structured ``deadlock`` violation
    with the stuck transaction's state attached.
    """
    state = {"fault": "drop-ack", "seen": 0, "fired": False}
    orig = system.send_msg

    def send_msg(msg: CoherenceMsg, time: int) -> None:
        if msg.mtype is MsgType.INV_ACK and not state["fired"]:
            state["seen"] += 1
            if state["seen"] == nth:
                state["fired"] = True
                return  # dropped on the wire
        orig(msg, time)

    system.send_msg = send_msg
    return state


def _stale_sharer(system, nth: int) -> dict:
    """Append a bogus sharer pointer on the nth directory sharer add.

    Models directory-state corruption (a bit flip in a sharer vector).
    ACKwise keeps exact sharer lists, so the extra pointer disagrees
    with the actual cache states and the sanitizer's quiescent
    directory-consistency check flags it.  (Under Dir_kB a stale
    pointer is architecturally legal -- silent evictions create them --
    so this fault is only meaningful on ACKwise configs.)
    """
    state = {"fault": "stale-sharer", "seen": 0, "fired": False}
    compute = system.compute_cores

    for directory in system.directories.values():
        orig = directory._add_sharer

        def _add_sharer(entry, core, _orig=orig):
            _orig(entry, core)
            if state["fired"] or entry.global_bit:
                return
            state["seen"] += 1
            if state["seen"] < nth:
                return
            for bogus in compute:
                if bogus != core and bogus not in entry.sharers:
                    entry.sharers.append(bogus)
                    state["fired"] = True
                    return

        directory._add_sharer = _add_sharer
    return state


class _DoubleReservedPort(PortResource):
    """A port that grants overlapping reservations: it hands out start
    times but never advances ``free_at``, so its ``busy_cycles`` end up
    exceeding the span it was ever reserved for."""

    __slots__ = ("state",)

    def __init__(self, state: dict) -> None:
        super().__init__()
        self.state = state

    def reserve(self, earliest: int, duration: int) -> int:
        start = max(earliest, self.free_at)
        self.busy_cycles += duration  # accounted, but the slot is not held
        if duration > 0:
            self.state["fired"] = True
        return start


def _double_reserve(system) -> dict:
    """Break one network port's reservation discipline.

    On hybrid (ATAC) networks the first receive-net port is replaced
    with a double-booking implementation; on the pure-mesh networks the
    equivalent accounting corruption is applied to port 0's counters
    directly (the mesh keeps flat arrays, not port objects).  Either
    way the end-of-run port audit sees ``busy_cycles`` > reserved span.
    """
    state = {"fault": "double-reserve", "fired": False}
    network = system.network
    receive_nets = getattr(network, "receive_nets", None)
    if receive_nets:
        receive_nets[0]._ports[0] = _DoubleReservedPort(state)
    else:
        # The meshes keep flat counter arrays, not port objects, so the
        # equivalent corruption is applied at the send boundary: the
        # first packet's span is credited to port 0 twice.
        orig = network.send

        def send(pkt):
            if not state["fired"]:
                state["fired"] = True
                network._busy[0] += 1_000_000
            return orig(pkt)

        network.send = send
    return state
