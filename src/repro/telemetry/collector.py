"""The telemetry collector: opt-in, zero-cost-when-off instrumentation.

Mirrors the sanitizer's activation pattern (DESIGN.md section 10): a
collector is constructed only when telemetry is requested
(``ManycoreSystem(config, telemetry=...)``, ``RunSpec(telemetry=True)``,
``repro --telemetry`` or ``REPRO_TELEMETRY=1``), so a plain run never
imports, branches on, or calls any of this.

Attachment is observational only:

* ``system.send_msg`` is wrapped to assign coherence transaction ids
  (stamped onto ``CoherenceMsg.txn``) and record begin/end trace events;
* ``system.network.send`` is wrapped to record packet slices and ONet
  laser mode transitions (derived by differencing the transition
  counter around the wrapped call -- ``AdaptiveSWMRLink`` has
  ``__slots__``, so its methods cannot be instance-patched);
* ``BarrierManager.arrive`` is wrapped at run start (the manager is
  created inside ``run()``) to record barrier slices;
* windowed counter snapshots ride the event queue itself as periodic
  *heartbeat* events that only read state and reschedule themselves
  while the queue is non-empty -- no ``EventQueue`` subclass, so
  telemetry composes with the sanitizer's queue wrapper and the
  simulation stays byte-identical (heartbeats shift event sequence
  numbers uniformly, preserving every tie-break between real events).

Byte-identity with telemetry on is pinned by
``tests/telemetry/test_telemetry.py`` and the golden-number suite.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.coherence.messages import MsgType
from repro.network.types import BROADCAST
from repro.telemetry.trace import (
    DEFAULT_TRACE_DEPTH,
    TRACE_SCHEMA_VERSION,
    TraceBuffer,
    event_to_dict,
    trace_header,
)
from repro.telemetry.windows import (
    TELEMETRY_SCHEMA_VERSION,
    attach_window_energy,
    default_window_cycles,
    take_snapshot,
    window_between,
    windows_header,
)

#: Transaction-opening and -closing message types (begin on the request
#: leaving the L2, end on the data reply leaving the home directory).
_TXN_OPEN = (MsgType.SH_REQ, MsgType.EX_REQ)
_TXN_CLOSE = (MsgType.SH_REP, MsgType.EX_REP)


def default_trace_depth() -> int:
    """``REPRO_TELEMETRY_TRACE_DEPTH`` override, read at call time."""
    value = int(
        os.environ.get("REPRO_TELEMETRY_TRACE_DEPTH", DEFAULT_TRACE_DEPTH)
    )
    if value < 1:
        raise ValueError(f"trace depth must be >= 1, got {value}")
    return value


@dataclass(frozen=True)
class TelemetryConfig:
    """How one run's telemetry is collected and (optionally) persisted.

    ``out_dir`` of ``None`` keeps everything in memory (bare
    ``ManycoreSystem`` users, the fuzzer's timeline capture); the
    experiment layer passes the telemetry root plus the spec's content
    hash as ``run_id`` so artifacts land next to the result store.
    """

    run_id: str | None = None
    label: str = ""
    out_dir: str | Path | None = None
    #: window length in cycles; ``None`` defers to the environment.
    window_cycles: int | None = None
    #: trace ring depth; ``None`` defers to the environment.
    trace_depth: int | None = None


class TelemetryCollector:
    """Attached per-system metrics/trace recorder (see module docstring)."""

    def __init__(self, system, config: TelemetryConfig | None = None) -> None:
        self.system = system
        self.config = config if config is not None else TelemetryConfig()
        self.window_cycles = (
            self.config.window_cycles
            if self.config.window_cycles is not None
            else default_window_cycles()
        )
        if self.window_cycles < 1:
            raise ValueError(
                f"telemetry window must be >= 1 cycle, got {self.window_cycles}"
            )
        self.trace = TraceBuffer(
            self.config.trace_depth
            if self.config.trace_depth is not None
            else default_trace_depth()
        )
        #: closed window records, oldest first.
        self.windows: list[dict] = []
        self._prev_snapshot = None
        self._orig_send_msg = None
        self._orig_net_send = None
        self._orig_arrive = None
        #: (requester core, address) -> open transaction id
        self._open_txns: dict[tuple[int, int], int] = {}
        self._next_txn = 1
        self._barrier_first: dict[int, int] = {}
        self._barrier_latest: dict[int, int] = {}
        self.result = None
        self.out_path: Path | None = None

    # ------------------------------------------------------------------
    # attachment (ManycoreSystem.__init__, after the sanitizer so the
    # hooks wrap -- and therefore observe -- the sanitized fabric)
    # ------------------------------------------------------------------
    def attach(self) -> None:
        system = self.system
        self._orig_send_msg = system.send_msg
        self._orig_net_send = system.network.send
        system.send_msg = self._send_msg
        system.network.send = self._net_send

    # ------------------------------------------------------------------
    # fabric hooks
    # ------------------------------------------------------------------
    def _send_msg(self, msg, time: int) -> None:
        now = self.system.eventq.now
        ts = time if time > now else now
        mt = msg.mtype
        if mt in _TXN_OPEN:
            tid = self._next_txn
            self._next_txn += 1
            msg.txn = tid
            self._open_txns[(msg.sender, msg.address)] = tid
            self.trace.record(
                "txn_begin", ts, 0, f"{mt.name} @{msg.address}", tid,
                {"core": msg.sender, "address": msg.address},
            )
        elif mt in _TXN_CLOSE:
            tid = self._open_txns.pop((msg.dest, msg.address), None)
            if tid is not None:
                msg.txn = tid
                self.trace.record(
                    "txn_end", ts, 0, f"{mt.name} @{msg.address}", tid,
                    {"core": msg.dest, "address": msg.address},
                )
        self._orig_send_msg(msg, time)

    def _net_send(self, pkt):
        # The injection packet is pooled (refilled per protocol message),
        # so its fields are read within this call and never retained.
        src, dst, ts = pkt.src, pkt.dst, pkt.time
        stats = self.system.network.stats
        transitions_before = stats.onet_mode_transitions
        deliveries = self._orig_net_send(pkt)
        transitions = stats.onet_mode_transitions - transitions_before
        if transitions:
            cluster_of = getattr(self.system.network, "_cluster_of_core", None)
            self.trace.record(
                "laser", ts, 0, "laser mode transition", None,
                {
                    "count": transitions,
                    "cluster": cluster_of[src] if cluster_of else None,
                },
            )
        last_arrival = ts
        for _, arrival in deliveries:
            if arrival > last_arrival:
                last_arrival = arrival
        if dst == BROADCAST:
            self.trace.record(
                "bcast", ts, last_arrival - ts, f"bcast<{src}", None,
                {"src": src, "receivers": len(deliveries)},
            )
        else:
            self.trace.record(
                "pkt", ts, last_arrival - ts, f"pkt {src}->{dst}", None,
                {"src": src, "dst": dst, "bits": pkt.size_bits},
            )
        return deliveries

    def _arrive(self, barrier_id: int, now: int, resume) -> None:
        barriers = self.system.barriers
        if barrier_id not in self._barrier_first:
            self._barrier_first[barrier_id] = now
            self._barrier_latest[barrier_id] = now
        elif now > self._barrier_latest[barrier_id]:
            self._barrier_latest[barrier_id] = now
        completed_before = barriers.barriers_completed
        self._orig_arrive(barrier_id, now, resume)
        if barriers.barriers_completed != completed_before:
            t0 = self._barrier_first.pop(barrier_id)
            t1 = self._barrier_latest.pop(barrier_id) + barriers.release_latency
            self.trace.record(
                "barrier", t0, t1 - t0, f"barrier {barrier_id}", None,
                {"id": barrier_id, "participants": barriers.participants},
            )

    # ------------------------------------------------------------------
    # run lifecycle (explicit notifications from ManycoreSystem.run --
    # the barrier manager and core models only exist from run() on)
    # ------------------------------------------------------------------
    def on_run_start(self) -> None:
        system = self.system
        self._orig_arrive = system.barriers.arrive
        system.barriers.arrive = self._arrive
        eventq = system.eventq
        self._prev_snapshot = take_snapshot(system, eventq.now)
        eventq.schedule(eventq.now + self.window_cycles, self._heartbeat)

    def _heartbeat(self, now: int) -> None:
        """Close one window; re-arm while the simulation is still live.

        An empty heap after this pop means no event can ever fire again
        (events beget events), so not rescheduling is exactly the
        end-of-run condition -- heartbeats never keep a finished or
        deadlocked simulation artificially alive.
        """
        system = self.system
        cur = take_snapshot(system, now)
        self.windows.append(
            window_between(self._prev_snapshot, cur, len(system.eventq))
        )
        self._prev_snapshot = cur
        if len(system.eventq) > 0:
            system.eventq.schedule(now + self.window_cycles, self._heartbeat)

    def on_run_end(self, result) -> None:
        """Close the final partial window, price windows, persist."""
        self.result = result
        system = self.system
        cur = take_snapshot(system, system.eventq.now)
        prev = self._prev_snapshot
        if prev is not None and (
            cur.t > prev.t or cur.net != prev.net or cur.caches != prev.caches
        ):
            self.windows.append(window_between(prev, cur, 0))
            self._prev_snapshot = cur
        attach_window_energy(self.windows, result, system.config)
        if self.config.out_dir is not None:
            self.out_path = self._write(result)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _write(self, result) -> Path:
        run_id = self.config.run_id or "adhoc"
        out = Path(self.config.out_dir) / run_id
        out.mkdir(parents=True, exist_ok=True)
        meta = {
            "schema": TELEMETRY_SCHEMA_VERSION,
            "trace_schema": TRACE_SCHEMA_VERSION,
            "run_id": run_id,
            "label": self.config.label,
            "app": result.app,
            "network": result.network,
            "n_cores": result.n_cores,
            "n_compute_cores": result.n_compute_cores,
            "completion_cycles": result.completion_cycles,
            "freq_hz": result.freq_hz,
            "window_cycles": self.window_cycles,
            "n_windows": len(self.windows),
            "trace": trace_header(self.trace),
        }
        (out / "meta.json").write_text(
            json.dumps(meta, indent=2, sort_keys=True) + "\n"
        )
        with (out / "windows.jsonl").open("w", encoding="utf-8") as fh:
            fh.write(_dumps(windows_header(self.window_cycles)) + "\n")
            for window in self.windows:
                fh.write(_dumps(window) + "\n")
        with (out / "trace.jsonl").open("w", encoding="utf-8") as fh:
            fh.write(_dumps(trace_header(self.trace)) + "\n")
            for event in self.trace.events():
                fh.write(_dumps(event_to_dict(event)) + "\n")
        return out

    # ------------------------------------------------------------------
    # violation context (sanitizer / fuzzer integration)
    # ------------------------------------------------------------------
    def violation_context(self, n_windows: int = 8,
                          n_events: int = 64) -> dict:
        """The last windows + trace tail, for ``InvariantViolation`` and
        fuzz reproducers.  Works mid-run (deadlocks included): the
        currently open window is closed ephemerally, without mutating
        collector state."""
        windows = list(self.windows[-n_windows:])
        prev = self._prev_snapshot
        if prev is not None:
            cur = take_snapshot(self.system, self.system.eventq.now)
            if cur.t > prev.t or cur.net != prev.net:
                windows.append(
                    window_between(prev, cur, len(self.system.eventq))
                )
                windows = windows[-n_windows:]
        return {
            "schema": TELEMETRY_SCHEMA_VERSION,
            "window_cycles": self.window_cycles,
            "windows": windows,
            "trace_tail": self.trace.tail(n_events),
            "trace_dropped": self.trace.dropped,
        }


def _dumps(doc: dict) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))
