"""Bounded event trace + Chrome/Perfetto trace-event export.

The trace answers the question the windowed counters cannot: *which*
packet, transaction or barrier was in flight when something happened.
Events are recorded into a fixed-depth ring buffer (old events fall off
the front; the drop count is reported, never hidden) so tracing a long
run costs bounded memory, and the tail survives for violation context
even when a run deadlocks.

Export follows the Chrome trace-event JSON format, which Perfetto's UI
(https://ui.perfetto.dev) loads directly:

* packet sends -> complete ("X") slices, one track for unicasts and one
  for broadcasts, duration = send to last delivery;
* coherence transactions -> async begin/end ("b"/"e") pairs correlated
  by the telemetry-assigned transaction id (also stamped onto
  ``CoherenceMsg.txn``);
* barriers -> complete slices from first arrival to release;
* ONet laser mode transitions -> instant ("i") events.

One simulated cycle maps to one microsecond of trace time, so Perfetto's
time axis reads directly in cycles.
"""

from __future__ import annotations

from collections import deque

#: Bump when the recorded event tuple layout or the Perfetto mapping
#: changes meaning; ``trace.jsonl`` headers carry it and readers check.
TRACE_SCHEMA_VERSION = 1

#: Recorded event kinds (pinned by ``tests/telemetry/test_schema_pins.py``).
TRACE_KINDS = ("pkt", "bcast", "txn_begin", "txn_end", "barrier", "laser")

#: Default ring depth (``REPRO_TELEMETRY_TRACE_DEPTH`` overrides).
DEFAULT_TRACE_DEPTH = 65536

#: Perfetto track (tid) per kind; async transaction events share one.
_TRACK_OF = {
    "pkt": 1, "bcast": 2, "txn_begin": 3, "txn_end": 3,
    "barrier": 4, "laser": 5,
}
_TRACK_NAMES = {
    1: "unicasts", 2: "broadcasts", 3: "coherence transactions",
    4: "barriers", 5: "laser transitions",
}


class TraceBuffer:
    """Fixed-depth ring of trace events.

    Each event is a plain tuple ``(kind, ts, dur, name, ident, args)``:
    ``ts``/``dur`` in cycles (``dur`` 0 for instants), ``ident`` the
    correlation id for async pairs (else ``None``), ``args`` a small
    JSON-ready dict or ``None``.  Tuples, not objects: recording happens
    on every network send while tracing is on.
    """

    __slots__ = ("_ring", "depth", "recorded", "dropped")

    def __init__(self, depth: int = DEFAULT_TRACE_DEPTH) -> None:
        if depth < 1:
            raise ValueError(f"trace depth must be >= 1, got {depth}")
        self.depth = depth
        self._ring: deque = deque(maxlen=depth)
        self.recorded = 0
        self.dropped = 0

    def record(self, kind: str, ts: int, dur: int, name: str,
               ident: int | None = None, args: dict | None = None) -> None:
        ring = self._ring
        if len(ring) == self.depth:
            self.dropped += 1
        ring.append((kind, ts, dur, name, ident, args))
        self.recorded += 1

    def __len__(self) -> int:
        return len(self._ring)

    def events(self) -> list[tuple]:
        """The retained events, oldest first."""
        return list(self._ring)

    def tail(self, n: int) -> list[dict]:
        """The last ``n`` events as JSON-ready dicts (violation context)."""
        return [event_to_dict(e) for e in list(self._ring)[-n:]]


def event_to_dict(event: tuple) -> dict:
    """The ``trace.jsonl`` line for one recorded event tuple."""
    kind, ts, dur, name, ident, args = event
    doc = {"kind": kind, "ts": ts, "name": name}
    if dur:
        doc["dur"] = dur
    if ident is not None:
        doc["id"] = ident
    if args:
        doc["args"] = args
    return doc


def event_from_dict(doc: dict) -> tuple:
    """Inverse of :func:`event_to_dict` (for ``repro trace`` off disk)."""
    return (
        doc["kind"], doc["ts"], doc.get("dur", 0), doc["name"],
        doc.get("id"), doc.get("args"),
    )


def trace_header(buffer: TraceBuffer) -> dict:
    """The first line of a ``trace.jsonl`` file."""
    return {
        "schema": TRACE_SCHEMA_VERSION,
        "depth": buffer.depth,
        "recorded": buffer.recorded,
        "dropped": buffer.dropped,
    }


def to_perfetto(events: list[tuple], label: str = "repro-sim") -> dict:
    """Chrome/Perfetto trace-event JSON for a list of event tuples."""
    trace_events: list[dict] = [
        {"ph": "M", "name": "process_name", "pid": 0, "tid": 0,
         "args": {"name": label}},
    ]
    for tid, name in _TRACK_NAMES.items():
        trace_events.append(
            {"ph": "M", "name": "thread_name", "pid": 0, "tid": tid,
             "args": {"name": name}}
        )
    for kind, ts, dur, name, ident, args in events:
        tid = _TRACK_OF.get(kind, 0)
        entry: dict = {"name": name, "pid": 0, "tid": tid, "ts": ts}
        if args:
            entry["args"] = args
        if kind in ("pkt", "bcast", "barrier"):
            entry["ph"] = "X"
            entry["dur"] = max(1, dur)
        elif kind == "txn_begin":
            entry["ph"] = "b"
            entry["cat"] = "txn"
            entry["id"] = ident
        elif kind == "txn_end":
            entry["ph"] = "e"
            entry["cat"] = "txn"
            entry["id"] = ident
        else:  # instants (laser, future kinds)
            entry["ph"] = "i"
            entry["s"] = "g"
        trace_events.append(entry)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}
