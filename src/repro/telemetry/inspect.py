"""``repro trace`` / ``repro top``: inspect recorded telemetry.

Both verbs operate on the artifact directory a telemetry-enabled run
leaves under the telemetry root (``REPRO_TELEMETRY_DIR``, default
``<cache dir>/telemetry/``), one subdirectory per run id::

    .repro_cache/telemetry/<run_id>/
        meta.json       # run identity + schema versions
        windows.jsonl   # header line + one counter-delta window per line
        trace.jsonl     # header line + one ring-buffer event per line

``repro trace <run>`` converts the ring buffer to Chrome/Perfetto
trace-event JSON (load it at https://ui.perfetto.dev).  ``repro top
<run>`` renders the windowed time series as a terminal table: flits per
cycle per core, broadcast fraction, queue depth, per-window energy
split and the hottest ONet cluster.  ``<run>`` may be a run id, a
unique id prefix, a substring of the run's label, or ``latest``;
omitting it lists the recorded runs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.telemetry import telemetry_root
from repro.telemetry.trace import (
    TRACE_SCHEMA_VERSION, event_from_dict, to_perfetto,
)
from repro.telemetry.windows import TELEMETRY_SCHEMA_VERSION


def recorded_runs(root: Path | None = None) -> list[tuple[Path, dict]]:
    """Every recorded run under ``root``: ``(dir, meta)``, newest first."""
    root = root if root is not None else telemetry_root()
    runs = []
    if not root.is_dir():
        return runs
    for child in root.iterdir():
        meta_path = child / "meta.json"
        if not meta_path.is_file():
            continue
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        runs.append((meta_path.stat().st_mtime, child, meta))
    runs.sort(key=lambda entry: entry[0], reverse=True)
    return [(child, meta) for _, child, meta in runs]


def resolve_run(token: str, root: Path | None = None) -> tuple[Path, dict]:
    """Resolve ``token`` to one recorded run or raise ``LookupError``."""
    runs = recorded_runs(root)
    if not runs:
        raise LookupError(
            "no recorded telemetry runs; produce one with e.g. "
            "'python -m repro run --apps radix --telemetry'"
        )
    if token == "latest":
        return runs[0]
    exact = [r for r in runs if r[0].name == token]
    if exact:
        return exact[0]
    by_prefix = [r for r in runs if r[0].name.startswith(token)]
    by_label = [r for r in runs if token in r[1].get("label", "")]
    for matches in (by_prefix, by_label):
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            names = ", ".join(r[0].name for r in matches[:6])
            raise LookupError(f"ambiguous run {token!r}: matches {names}")
    raise LookupError(
        f"no recorded run matches {token!r}; 'repro trace' lists runs"
    )


def _read_jsonl(path: Path, expect_schema: int) -> tuple[dict, list[dict]]:
    """A ``(header, records)`` pair, schema-checked."""
    with path.open("r", encoding="utf-8") as fh:
        lines = [line for line in fh if line.strip()]
    if not lines:
        raise ValueError(f"{path} is empty")
    header = json.loads(lines[0])
    if header.get("schema") != expect_schema:
        raise ValueError(
            f"{path}: schema {header.get('schema')!r}, "
            f"this tool reads schema {expect_schema}"
        )
    return header, [json.loads(line) for line in lines[1:]]


def _list_runs() -> int:
    runs = recorded_runs()
    if not runs:
        print("no recorded telemetry runs")
        return 0
    print(f"recorded telemetry runs under {telemetry_root()}:")
    for run_dir, meta in runs:
        print(
            f"  {run_dir.name}  {meta.get('label', ''):24s} "
            f"{meta.get('n_windows', '?')} windows, "
            f"{meta.get('trace', {}).get('recorded', '?')} trace events"
        )
    return 0


# ----------------------------------------------------------------------
# repro trace
# ----------------------------------------------------------------------

def trace_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Export a recorded run's event trace as "
                    "Chrome/Perfetto trace-event JSON.",
    )
    parser.add_argument(
        "run", nargs="?", default=None,
        help="run id, unique id prefix, label substring, or 'latest' "
             "(omit to list recorded runs)",
    )
    parser.add_argument(
        "--out", "-o", type=Path, default=None, metavar="FILE",
        help="output path (default trace_<run>.perfetto.json)",
    )
    args = parser.parse_args(argv)
    if args.run is None:
        return _list_runs()
    try:
        run_dir, meta = resolve_run(args.run)
        header, records = _read_jsonl(
            run_dir / "trace.jsonl", TRACE_SCHEMA_VERSION
        )
    except (LookupError, OSError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    events = [event_from_dict(doc) for doc in records]
    label = f"repro {meta.get('label') or run_dir.name}"
    doc = to_perfetto(events, label=label)
    out = args.out or Path(f"trace_{run_dir.name[:12]}.perfetto.json")
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc) + "\n")
    dropped = header.get("dropped", 0)
    print(
        f"wrote {out}: {len(events)} events from {run_dir.name} "
        f"({meta.get('label', '')})"
        + (f", {dropped} older events dropped from the ring" if dropped else "")
    )
    print("open it at https://ui.perfetto.dev")
    return 0


# ----------------------------------------------------------------------
# repro top
# ----------------------------------------------------------------------

def _aggregate(windows: list[dict], rows: int) -> list[dict]:
    """Coalesce adjacent windows so at most ``rows`` rows print."""
    if len(windows) <= rows:
        return windows
    per = -(-len(windows) // rows)  # ceil division
    merged = []
    for i in range(0, len(windows), per):
        chunk = windows[i:i + per]
        out = {
            "t0": chunk[0]["t0"],
            "t1": chunk[-1]["t1"],
            "queue_depth": max(w["queue_depth"] for w in chunk),
        }
        for group in ("net", "energy"):
            out[group] = {}
            for w in chunk:
                for key, value in w.get(group, {}).items():
                    out[group][key] = out[group].get(key, 0) + value
        busy_lists = [w["onet_busy"] for w in chunk if "onet_busy" in w]
        if busy_lists:
            out["onet_busy"] = [sum(vals) for vals in zip(*busy_lists)]
        merged.append(out)
    return merged


def _row(window: dict, n_cores: int) -> dict:
    cycles = max(1, window["t1"] - window["t0"])
    net = window.get("net", {})
    received = (
        net.get("received_unicast_flits", 0)
        + net.get("received_broadcast_flits", 0)
    )
    energy = window.get("energy", {})
    busy = window.get("onet_busy")
    if busy and any(busy):
        hot = max(range(len(busy)), key=busy.__getitem__)
        hot_cell = f"c{hot} ({100 * busy[hot] / cycles:.0f}%)"
    else:
        hot_cell = "-"
    return {
        "window": f"{window['t0']}-{window['t1']}",
        "flits/cyc/core": f"{net.get('injected_flits', 0) / (cycles * n_cores):.4f}",
        "bcast_rx%": (
            f"{100 * net.get('received_broadcast_flits', 0) / received:.1f}"
            if received else "0.0"
        ),
        "queue": window["queue_depth"],
        "net_uJ": f"{1e6 * energy.get('network_j', 0.0):.2f}",
        "cache_uJ": f"{1e6 * energy.get('cache_j', 0.0):.2f}",
        "core_uJ": f"{1e6 * energy.get('core_j', 0.0):.2f}",
        "hot_onet": hot_cell,
    }


def top_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro top",
        description="Render a recorded run's windowed telemetry as a "
                    "terminal time series.",
    )
    parser.add_argument(
        "run", nargs="?", default=None,
        help="run id, unique id prefix, label substring, or 'latest' "
             "(omit to list recorded runs)",
    )
    parser.add_argument(
        "--rows", type=int, default=16, metavar="N",
        help="max table rows; adjacent windows are coalesced (default 16)",
    )
    args = parser.parse_args(argv)
    if args.run is None:
        return _list_runs()
    if args.rows < 1:
        print("--rows must be >= 1", file=sys.stderr)
        return 2
    try:
        run_dir, meta = resolve_run(args.run)
        header, windows = _read_jsonl(
            run_dir / "windows.jsonl", TELEMETRY_SCHEMA_VERSION
        )
    except (LookupError, OSError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    from repro.experiments.common import format_table

    n_cores = meta.get("n_cores", 1)
    print(
        f"{meta.get('label') or run_dir.name}: {meta.get('app', '?')} on "
        f"{meta.get('network', '?')}, {meta.get('completion_cycles', '?')} "
        f"cycles, {len(windows)} window(s) of "
        f"{header.get('window_cycles', '?')} cycles"
    )
    if not windows:
        print("no closed windows (run shorter than one window?)")
        return 0
    rows = [_row(w, n_cores) for w in _aggregate(windows, args.rows)]
    print(format_table(rows, list(rows[0].keys())))
    trace_meta = meta.get("trace", {})
    print(
        f"\ntrace: {trace_meta.get('recorded', 0)} events recorded, "
        f"{trace_meta.get('dropped', 0)} dropped; "
        f"'repro trace {run_dir.name[:12]}' exports Perfetto JSON"
    )
    return 0


def main(argv: list[str]) -> int:
    """Entry point for the ``trace`` / ``top`` CLI verbs."""
    verb, rest = argv[0], argv[1:]
    if verb == "trace":
        return trace_main(rest)
    if verb == "top":
        return top_main(rest)
    print(f"unknown telemetry verb {verb!r}", file=sys.stderr)
    return 2
