"""Windowed counter deltas: the telemetry time-series schema.

The paper's toolflow is built on *time-integrated* event counts
(Section V-A): Graphite counts events over a whole run and DSENT/McPAT
price them per event.  A telemetry window is the same contract over a
fixed slice of simulated time -- every counter the energy layer consumes
(``NetworkStats``, ``CacheCounters``, directory and memory-controller
totals) snapshotted at window boundaries and differenced, so each window
is a miniature ``RunResult`` and the per-event energies apply to it
unchanged.  That identity is load-bearing: per-window energy is computed
by feeding each delta through the *same* :class:`EnergyModel` that
prices the full run, not through a parallel approximation that could
drift.

Schema stability: the group field lists below are derived from the
counter dataclasses, so a new counter automatically joins the window
schema -- and ``tests/telemetry/test_schema_pins.py`` pins the resolved
lists, making any drift an explicit, versioned choice (bump
``TELEMETRY_SCHEMA_VERSION`` when the window layout changes meaning).
"""

from __future__ import annotations

import os
from dataclasses import fields

from repro.coherence.l2controller import CacheCounters
from repro.network.stats import NetworkStats
from repro.sim.results import RunResult

#: Bump when the window record layout or field meaning changes; readers
#: (``repro top``, CI artifact consumers) check it before trusting a
#: ``windows.jsonl`` header.
TELEMETRY_SCHEMA_VERSION = 1

#: Default window length in simulated cycles (``REPRO_TELEMETRY_WINDOW``
#: overrides at collector construction time).
DEFAULT_WINDOW_CYCLES = 1000

#: Window record groups -> ordered counter names.  ``net`` and
#: ``caches`` mirror the counter dataclasses exactly; ``directory`` /
#: ``memory`` / ``cores`` use the ``RunResult`` aggregate names so a
#: window delta maps 1:1 onto a synthetic result.
NET_FIELDS: tuple[str, ...] = tuple(f.name for f in fields(NetworkStats))
CACHE_FIELDS: tuple[str, ...] = tuple(f.name for f in fields(CacheCounters))
DIR_FIELDS: tuple[str, ...] = (
    "dir_lookups", "dir_updates", "dir_inv_unicast", "dir_inv_broadcast",
)
MEM_FIELDS: tuple[str, ...] = ("mem_reads", "mem_writes")
CORE_FIELDS: tuple[str, ...] = ("instructions", "stalled_cycles")
#: Per-window energy attribution, filled in at run finalization (the
#: energy model needs the full config, not just the live counters).
ENERGY_FIELDS: tuple[str, ...] = ("network_j", "cache_j", "core_j", "total_j")

WINDOW_SCHEMA: dict[str, tuple[str, ...]] = {
    "net": NET_FIELDS,
    "caches": CACHE_FIELDS,
    "directory": DIR_FIELDS,
    "memory": MEM_FIELDS,
    "cores": CORE_FIELDS,
    "energy": ENERGY_FIELDS,
}


def default_window_cycles() -> int:
    """``REPRO_TELEMETRY_WINDOW`` override, read at call time."""
    value = int(os.environ.get("REPRO_TELEMETRY_WINDOW", DEFAULT_WINDOW_CYCLES))
    if value < 1:
        raise ValueError(f"telemetry window must be >= 1 cycle, got {value}")
    return value


class Snapshot:
    """One cumulative counter sample at a window boundary.

    Plain tuples of ints, not dicts: a snapshot is taken on every
    heartbeat while the simulation runs, so it must only *read* counters
    (never perturb the system) and stay allocation-light.
    """

    __slots__ = ("t", "net", "caches", "directory", "memory", "cores",
                 "onet_busy")

    def __init__(self, t, net, caches, directory, memory, cores, onet_busy):
        self.t = t
        self.net = net
        self.caches = caches
        self.directory = directory
        self.memory = memory
        self.cores = cores
        #: per-cluster ONet busy cycles (unicast + broadcast laser
        #: residency), ``None`` for networks without adaptive SWMR links.
        self.onet_busy = onet_busy


def take_snapshot(system, t: int) -> Snapshot:
    """Sample every windowed counter of ``system`` at time ``t``."""
    ns = system.network.stats
    net = tuple(getattr(ns, name) for name in NET_FIELDS)

    caches = [0] * len(CACHE_FIELDS)
    for ctrl in system.caches.values():
        cc = ctrl.counters
        for i, name in enumerate(CACHE_FIELDS):
            caches[i] += getattr(cc, name)

    lookups = updates = inv_u = inv_b = 0
    for d in system.directories.values():
        st = d.stats
        lookups += st.lookups
        updates += st.updates
        inv_u += st.invalidations_unicast
        inv_b += st.invalidations_broadcast

    reads = writes = 0
    for m in system.memctrls.values():
        reads += m.reads
        writes += m.writes

    instructions = stalled = 0
    for cm in system.cores.values():
        instructions += cm.instructions
        stalled += cm.stalled_cycles

    links = getattr(system.network, "onet_links", None)
    onet_busy = (
        tuple(l.unicast_cycles + l.broadcast_cycles for l in links)
        if links is not None else None
    )
    return Snapshot(
        t, net, tuple(caches), (lookups, updates, inv_u, inv_b),
        (reads, writes), (instructions, stalled), onet_busy,
    )


def window_between(prev: Snapshot, cur: Snapshot, queue_depth: int) -> dict:
    """The delta record for one ``[prev.t, cur.t)`` window.

    All counters are monotonic, so every delta is non-negative --
    which is what lets a window double as a miniature ``RunResult``
    for the energy model (``EnergyBreakdown`` rejects negatives).
    """
    window = {
        "t0": prev.t,
        "t1": cur.t,
        "queue_depth": queue_depth,
        "net": {
            name: cur.net[i] - prev.net[i]
            for i, name in enumerate(NET_FIELDS)
        },
        "caches": {
            name: cur.caches[i] - prev.caches[i]
            for i, name in enumerate(CACHE_FIELDS)
        },
        "directory": {
            name: cur.directory[i] - prev.directory[i]
            for i, name in enumerate(DIR_FIELDS)
        },
        "memory": {
            name: cur.memory[i] - prev.memory[i]
            for i, name in enumerate(MEM_FIELDS)
        },
        "cores": {
            name: cur.cores[i] - prev.cores[i]
            for i, name in enumerate(CORE_FIELDS)
        },
    }
    if cur.onet_busy is not None and prev.onet_busy is not None:
        window["onet_busy"] = [
            c - p for c, p in zip(cur.onet_busy, prev.onet_busy)
        ]
    return window


def windows_header(window_cycles: int) -> dict:
    """The first line of a ``windows.jsonl`` file."""
    return {
        "schema": TELEMETRY_SCHEMA_VERSION,
        "window_cycles": window_cycles,
        "groups": {group: list(names) for group, names in WINDOW_SCHEMA.items()},
    }


def synthetic_result(template: RunResult, window: dict) -> RunResult:
    """A window's deltas dressed as a :class:`RunResult`.

    The architecture-wide fields (core counts, frequency, flit width,
    protocol) come from the real run's ``template``; everything the
    energy model integrates over time or events comes from the window.
    """
    return RunResult(
        app=template.app,
        network=template.network,
        completion_cycles=window["t1"] - window["t0"],
        n_cores=template.n_cores,
        n_compute_cores=template.n_compute_cores,
        total_instructions=window["cores"]["instructions"],
        per_core_instructions=[],
        stalled_cycles=window["cores"]["stalled_cycles"],
        network_stats=NetworkStats.from_dict(window["net"]),
        cache_counters=CacheCounters.from_dict(window["caches"]),
        dir_lookups=window["directory"]["dir_lookups"],
        dir_updates=window["directory"]["dir_updates"],
        dir_inv_unicast=window["directory"]["dir_inv_unicast"],
        dir_inv_broadcast=window["directory"]["dir_inv_broadcast"],
        mem_reads=window["memory"]["mem_reads"],
        mem_writes=window["memory"]["mem_writes"],
        barriers_completed=0,
        freq_hz=template.freq_hz,
        flit_bits=template.flit_bits,
        hardware_sharers=template.hardware_sharers,
        protocol=template.protocol,
    )


def attach_window_energy(windows: list[dict], template: RunResult,
                         config) -> None:
    """Fill every window's ``energy`` group, in place.

    One :class:`~repro.energy.accounting.EnergyModel` prices all
    windows (construction builds the full cache/router inventory, so it
    must not happen per window).  Imported lazily: telemetry-off runs
    never pay for the energy layer.
    """
    if not windows:
        return
    from repro.energy.accounting import EnergyModel

    model = EnergyModel(config)
    for window in windows:
        breakdown = model.evaluate(synthetic_result(template, window))
        window["energy"] = {
            "network_j": breakdown.network_energy_j,
            "cache_j": breakdown.cache_energy_j,
            "core_j": breakdown.core_energy_j,
            "total_j": breakdown.total_energy_j,
        }
