"""Opt-in cross-layer telemetry: windowed metrics + event tracing.

The observability layer of DESIGN.md section 12.  Three pieces:

* :mod:`repro.telemetry.windows` -- the windowed counter-delta schema
  (every energy-priced counter, per fixed slice of simulated time);
* :mod:`repro.telemetry.trace` -- a bounded ring-buffer event trace
  with Chrome/Perfetto trace-event export;
* :mod:`repro.telemetry.collector` -- the attachment machinery,
  mirroring the sanitizer's opt-in pattern: ``RunSpec(telemetry=True)``,
  ``repro --telemetry``, or ``REPRO_TELEMETRY=1``; exactly zero cost
  (not even an import) when off, byte-identical simulation when on.

``repro trace <run>`` and ``repro top <run>``
(:mod:`repro.telemetry.inspect`) read the artifacts back.

This package root stays import-light on purpose: the inspection CLI
must list runs without dragging in the simulator.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.telemetry.collector import TelemetryCollector, TelemetryConfig
from repro.telemetry.trace import TRACE_SCHEMA_VERSION, TraceBuffer, to_perfetto
from repro.telemetry.windows import TELEMETRY_SCHEMA_VERSION, WINDOW_SCHEMA

__all__ = [
    "TELEMETRY_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "TelemetryCollector",
    "TelemetryConfig",
    "TraceBuffer",
    "WINDOW_SCHEMA",
    "telemetry_requested",
    "telemetry_root",
    "to_perfetto",
]


def telemetry_requested() -> bool:
    """Whether ``REPRO_TELEMETRY`` asks for telemetry (call-time read)."""
    return os.environ.get("REPRO_TELEMETRY", "0").lower() in ("1", "true", "on")


def telemetry_root() -> Path:
    """Where run telemetry directories live.

    ``REPRO_TELEMETRY_DIR`` names the root outright; otherwise
    artifacts sit next to the result store (``REPRO_TELEMETRY_DIR``
    unset: ``<REPRO_CACHE_DIR or .repro_cache>/telemetry``).
    """
    override = os.environ.get("REPRO_TELEMETRY_DIR")
    if override:
        return Path(override)
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache")) / "telemetry"
