"""repro -- full reproduction of "Cross-layer Energy and Performance
Evaluation of a Nanophotonic Manycore Processor System using Real
Application Workloads" (Kurian et al., IPDPS 2012).

The package is organized bottom-up, mirroring the paper's stack:

* :mod:`repro.tech`        -- device/circuit energy, power and area models
  (11 nm transistors, DSENT-like electrical blocks, photonics, McPAT-like
  caches, first-order core power).
* :mod:`repro.network`     -- event-driven on-chip network simulator:
  electrical meshes (EMesh-Pure / EMesh-BCast) and the hybrid ATAC/ATAC+
  network (ENet + adaptive-SWMR ONet + BNet/StarNet) with cluster- and
  distance-based routing.
* :mod:`repro.coherence`   -- private L1/L2 caches, the ACKwise_k and
  Dir_kB limited-directory protocols, sequence-number ordering, and
  memory controllers.
* :mod:`repro.sim`         -- the Graphite-like full-system simulator that
  ties cores, caches, directories and networks together with real
  back-pressure.
* :mod:`repro.workloads`   -- synthetic SPLASH-2 / dynamic-graph traffic
  models calibrated to the paper's per-application signatures.
* :mod:`repro.energy`      -- the energy/EDP/area accounting that combines
  event counters with per-event energies and static power.
* :mod:`repro.experiments` -- one driver per paper table/figure.
"""

__version__ = "1.0.0"
