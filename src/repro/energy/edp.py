"""Energy-delay product helpers (Figures 8, 13, 14)."""

from __future__ import annotations

from repro.energy.accounting import EnergyBreakdown


def energy_delay_product(
    breakdown: EnergyBreakdown, include_core: bool = False
) -> float:
    """EDP in joule-seconds over the figure's component scope."""
    return breakdown.edp(include_core=include_core)


def normalized(values: dict[str, float], reference: str) -> dict[str, float]:
    """Normalize a metric dict to one of its entries (the paper's
    figures normalize EDP to ATAC+(Ideal), Cluster routing, etc.)."""
    if reference not in values:
        raise KeyError(f"reference {reference!r} not among {sorted(values)}")
    ref = values[reference]
    if ref <= 0:
        raise ValueError(f"reference value must be positive, got {ref}")
    return {k: v / ref for k, v in values.items()}
