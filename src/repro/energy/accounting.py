"""Energy accounting: event counters x per-event energies + static power x time.

The component vocabulary follows Figure 7 (network + caches) and Figure
17 (plus core):

========================  =====================================================
key                        meaning
========================  =====================================================
``laser``                  electrical laser energy (mode-dependent, Table IV)
``ring_tuning``            thermal ring tuning ("Ring Heating")
``modulator_receiver``     optical Tx/Rx circuits ("Other" in Fig 7)
``enet_dynamic``           electrical mesh routers+links, per-flit
``enet_ndd``               electrical mesh clock + leakage over the runtime
``hub``                    cluster hub traversals + hub clock/leakage
``receive_net``            BNet/StarNet deliveries + leakage
``l1i`` / ``l1d`` / ``l2``  cache dynamic + leakage
``directory``              directory cache dynamic + leakage
``core_dd`` / ``core_ndd`` first-order core model (Section V-G)
``dram``                   off-chip DRAM access energy (reported, excluded
                           from the paper's on-chip figures)
========================  =====================================================

All four Table IV technology scenarios are pure post-processing over
one performance run, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.registry import for_display_name, receive_net_kind
from repro.sim.config import SystemConfig
from repro.sim.results import RunResult
from repro.tech.caches import CacheModel, directory_cache, l1d_cache, l1i_cache, l2_cache
from repro.tech.core import CorePowerModel
from repro.tech.dsent import HubModel, LinkModel, ReceiveNetModel, RouterModel
from repro.tech.photonics import OnetGeometry, PhotonicParams
from repro.tech.scenarios import SCENARIO_ATACP, TechScenario

#: Component keys in presentation order (Fig 7 wedges, then core, dram).
NETWORK_KEYS = (
    "laser", "ring_tuning", "modulator_receiver",
    "enet_dynamic", "enet_ndd", "hub", "receive_net",
)
CACHE_KEYS = ("l1i", "l1d", "l2", "directory")
CORE_KEYS = ("core_dd", "core_ndd")
ALL_KEYS = NETWORK_KEYS + CACHE_KEYS + CORE_KEYS + ("dram",)


@dataclass
class EnergyBreakdown:
    """Per-component energies (J) for one run under one scenario."""

    components: dict[str, float]
    scenario: str
    app: str
    network: str
    runtime_s: float

    def __post_init__(self) -> None:
        unknown = set(self.components) - set(ALL_KEYS)
        if unknown:
            raise ValueError(f"unknown component keys: {sorted(unknown)}")
        for key, value in self.components.items():
            if value < 0:
                raise ValueError(f"negative energy for {key}: {value}")

    def __getitem__(self, key: str) -> float:
        return self.components.get(key, 0.0)

    @property
    def network_energy_j(self) -> float:
        """Sum of the network wedges (optical + electrical) (J)."""
        return sum(self.components.get(k, 0.0) for k in NETWORK_KEYS)

    @property
    def cache_energy_j(self) -> float:
        """Sum of the cache wedges (L1s, L2, directory) (J)."""
        return sum(self.components.get(k, 0.0) for k in CACHE_KEYS)

    @property
    def core_energy_j(self) -> float:
        """Core DD + NDD energy (J)."""
        return sum(self.components.get(k, 0.0) for k in CORE_KEYS)

    @property
    def chip_energy_j(self) -> float:
        """Network + caches (Figure 7's scope)."""
        return self.network_energy_j + self.cache_energy_j

    @property
    def total_energy_j(self) -> float:
        """Network + caches + core (Figure 17's scope; DRAM excluded)."""
        return self.chip_energy_j + self.core_energy_j

    def edp(self, include_core: bool = False) -> float:
        """Energy-delay product (J*s) over the figure's scope."""
        energy = self.total_energy_j if include_core else self.chip_energy_j
        return energy * self.runtime_s


class EnergyModel:
    """Maps a :class:`RunResult` to an :class:`EnergyBreakdown`.

    One instance captures a technology configuration (photonic device
    parameters + core power model); ``evaluate`` may be called for many
    runs and scenarios.
    """

    def __init__(
        self,
        config: SystemConfig,
        photonics: PhotonicParams | None = None,
        core_power: CorePowerModel | None = None,
        die_edge_mm: float = 20.0,
        dram_energy_per_access_j: float = 10e-9,
    ) -> None:
        self.config = config
        self.base_photonics = photonics if photonics is not None else PhotonicParams()
        self.base_photonics.validate()
        self.core_power = core_power if core_power is not None else CorePowerModel()
        self.dram_energy_per_access_j = dram_energy_per_access_j
        topo = config.topology
        self.n_routers = topo.n_cores
        self.n_hubs = topo.n_clusters
        hop_mm = topo.hop_length_mm(die_edge_mm)
        self.router = RouterModel(n_ports=5, width_bits=config.flit_bits)
        self.link = LinkModel(width_bits=config.flit_bits, length_mm=hop_mm)
        # bidirectional mesh: 2 links per adjacent pair, both directions
        self.n_links = 4 * topo.width * (topo.width - 1)
        self.hub = HubModel(width_bits=config.flit_bits)
        self.receive_net = ReceiveNetModel(
            kind=receive_net_kind(config.network, config.receive_net),
            width_bits=config.flit_bits,
            cluster_size=topo.cluster_size,
        )
        # caches (full-size models: energy reflects the real chip even
        # when the simulator runs with scaled-down cache state)
        self.l1i = l1i_cache()
        self.l1d = l1d_cache()
        self.l2 = l2_cache()
        self.directory = directory_cache(
            n_lines_tracked=4096,
            hardware_sharers=config.hardware_sharers,
            n_cores=topo.n_cores,
        )
        self.n_compute = len(topo.compute_cores())

    # ------------------------------------------------------------------
    def onet_geometry(self, photonics: PhotonicParams) -> OnetGeometry:
        """The ONet photonic inventory for this chip configuration."""
        return OnetGeometry(
            n_hubs=self.n_hubs,
            data_width_bits=self.config.flit_bits,
            params=photonics,
        )

    # ------------------------------------------------------------------
    def evaluate(
        self,
        result: RunResult,
        scenario: TechScenario = SCENARIO_ATACP,
    ) -> EnergyBreakdown:
        """Compute the component breakdown for one run + one scenario."""
        runtime = result.runtime_s
        cycle_s = 1.0 / result.freq_hz
        ns = result.network_stats
        comp: dict[str, float] = {}

        # -- electrical mesh (standalone mesh, or the ENet of ATAC/+) --
        comp["enet_dynamic"] = (
            ns.router_flit_traversals * self.router.flit_energy_j()
            + ns.link_flit_traversals * self.link.dynamic_energy_j()
            + ns.router_arbitrations * self.router.arbitration_energy_j()
        )
        comp["enet_ndd"] = runtime * (
            self.n_routers
            * (self.router.clock_power_w(result.freq_hz) + self.router.leakage_power_w())
            + self.n_links * self.link.leakage_power_w()
        )

        # -- architecture-specific wedges (optical path, hubs, ...) ------
        # The descriptor owns the architecture's extra component math;
        # electrical meshes register none and contribute nothing here.
        descriptor = for_display_name(result.network)
        if descriptor.energy_components is not None:
            comp.update(descriptor.energy_components(self, result, scenario))

        # -- caches --------------------------------------------------------
        cc = result.cache_counters
        comp["l1i"] = (
            cc.l1i_accesses * self.l1i.read_energy_j(data_bits=64)
            + runtime * self.n_compute * self.l1i.leakage_power_w()
        )
        comp["l1d"] = (
            cc.l1d_reads * self.l1d.read_energy_j(data_bits=64)
            + cc.l1d_writes * self.l1d.write_energy_j(data_bits=64)
            + runtime * self.n_compute * self.l1d.leakage_power_w()
        )
        comp["l2"] = (
            cc.l2_reads * self.l2.read_energy_j()
            + cc.l2_writes * self.l2.write_energy_j()
            + cc.l2_tag_probes * self.l2.tag_probe_energy_j()
            + runtime * self.n_compute * self.l2.leakage_power_w()
        )
        comp["directory"] = (
            result.dir_lookups * self.directory.read_energy_j(0)
            + result.dir_updates * self.directory.write_energy_j(0)
            + runtime * self.n_compute * self.directory.leakage_power_w()
        )

        # -- core (Section V-G) ----------------------------------------------
        comp["core_dd"] = self.core_power.dd_energy_j(
            result.total_instructions, result.freq_hz
        )
        comp["core_ndd"] = (
            self.core_power.ndd_power_w * runtime * self.n_compute
        )

        # -- off-chip DRAM ------------------------------------------------------
        comp["dram"] = (
            (result.mem_reads + result.mem_writes) * self.dram_energy_per_access_j
        )

        return EnergyBreakdown(
            components=comp,
            scenario=scenario.name,
            app=result.app,
            network=result.network,
            runtime_s=runtime,
        )
