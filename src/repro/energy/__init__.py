"""Energy, energy-delay-product and area accounting.

Implements the paper's toolflow (Section V-A): per-event energies and
static power from the technology models (:mod:`repro.tech`) are
combined with the event counters and completion time of a simulation
run (:class:`repro.sim.results.RunResult`) to produce the component
breakdowns behind Figures 7-10, 12-14, 16 and 17.
"""

from repro.energy.accounting import EnergyBreakdown, EnergyModel
from repro.energy.edp import energy_delay_product, normalized
from repro.energy.area import AreaModel, AreaBreakdown

__all__ = [
    "EnergyBreakdown",
    "EnergyModel",
    "energy_delay_product",
    "normalized",
    "AreaModel",
    "AreaBreakdown",
]
