"""Chip area roll-up (Figure 10).

The paper reports: caches dominate (~90 % of chip area); the ENet,
StarNet and hubs are negligible; the ONet's waveguides and optical
devices occupy ~40 mm^2 at the 64-bit flit width (~160 mm^2 at 256
bits).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.registry import get_network
from repro.sim.config import SystemConfig
from repro.tech.caches import directory_cache, l1d_cache, l1i_cache, l2_cache
from repro.tech.dsent import LinkModel, RouterModel
from repro.tech.photonics import PhotonicParams


@dataclass
class AreaBreakdown:
    """Component areas in mm^2."""

    components: dict[str, float]

    def __post_init__(self) -> None:
        for key, value in self.components.items():
            if value < 0:
                raise ValueError(f"negative area for {key}: {value}")

    def __getitem__(self, key: str) -> float:
        return self.components.get(key, 0.0)

    @property
    def total_mm2(self) -> float:
        """Total chip area (mm^2)."""
        return sum(self.components.values())

    @property
    def cache_mm2(self) -> float:
        """Combined cache area (mm^2)."""
        return sum(
            self.components.get(k, 0.0) for k in ("l1i", "l1d", "l2", "directory")
        )

    @property
    def cache_fraction(self) -> float:
        """Cache share of total area (Fig 10: ~0.9)."""
        total = self.total_mm2
        return self.cache_mm2 / total if total else 0.0


class AreaModel:
    """Computes the Figure 10 area breakdown for a configuration."""

    def __init__(
        self,
        config: SystemConfig,
        photonics: PhotonicParams | None = None,
        die_edge_mm: float = 20.0,
    ) -> None:
        self.config = config
        self.photonics = photonics if photonics is not None else PhotonicParams()
        self.die_edge_mm = die_edge_mm

    def breakdown(self) -> AreaBreakdown:
        cfg = self.config
        topo = cfg.topology
        n = topo.n_cores
        n_compute = len(topo.compute_cores())
        comp: dict[str, float] = {
            "l1i": n_compute * l1i_cache().area_mm2(),
            "l1d": n_compute * l1d_cache().area_mm2(),
            "l2": n_compute * l2_cache().area_mm2(),
            "directory": n_compute
            * directory_cache(
                4096, cfg.hardware_sharers, n_cores=n
            ).area_mm2(),
        }
        router = RouterModel(n_ports=5, width_bits=cfg.flit_bits)
        link = LinkModel(
            width_bits=cfg.flit_bits,
            length_mm=topo.hop_length_mm(self.die_edge_mm),
        )
        n_links = 4 * topo.width * (topo.width - 1)
        comp["enet"] = n * router.area_mm2() + n_links * link.area_mm2()
        # Architecture-specific hardware (hubs, receive nets, photonics)
        # is described by the network's registry descriptor.
        descriptor = get_network(cfg.network)
        if descriptor.area_components is not None:
            comp.update(descriptor.area_components(self))
        return AreaBreakdown(components=comp)
