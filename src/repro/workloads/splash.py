"""Synthetic models of the paper's eight applications.

The paper runs seven SPLASH-2 benchmarks plus a dynamic-graph kernel on
Graphite.  We cannot execute compiled SPLASH-2 binaries here, so each
application is modeled by the *traffic signature* that actually drives
every result in the evaluation (DESIGN.md section 4):

* the split of references into private / widely-shared / group-shared
  data, which (through the coherence protocol) determines the
  broadcast-to-unicast mix of Figure 5 and Table V,
* working-set sizes and locality relative to the caches, which
  determine miss rates and hence the offered network load of Figure 6,
* the compute-to-memory ratio and barrier phasing, which set baseline
  IPC and how network slowdowns propagate to completion time.

The traffic is **generated**, but everything downstream of it -- caches,
ACKwise/Dir_kB, the networks, the energy models -- is simulated, not
scripted: a broadcast invalidation happens because a write truly hits a
line whose sharer list overflowed the ``k`` hardware pointers.

Structure of one application:

* **private data** per core: a small hot set (reused constantly, lives
  in L1) plus a cold region sized relative to L2; ``private_cold_frac``
  of private references touch the cold region and become the app's
  capacity-miss stream (the Figure 6 load knob).
* **wide-shared data**: lines read by a neighbourhood of
  ``wide_degree`` cores (> k, so invalidations broadcast).  SPLASH
  codes rebuild such structures between phases, so writes to wide data
  happen right after each barrier (``wide_writes_per_phase`` per core),
  and the readers then re-fetch -- the re-read traffic the paper's
  broadcast-heavy applications exhibit.
* **group-shared data**: producer-consumer lines within groups of
  ``group_size <= k`` cores; their invalidations stay unicast.

Profile constants were calibrated at 256 and 1024 cores (see
``tests/workloads`` and EXPERIMENTS.md) so the per-application
*orderings* of Figures 5-6 and Table V hold: ``barnes``/``fmm``/
``dynamic_graph`` broadcast-heavy with few unicasts per broadcast,
``radix``/``ocean_*`` load-heavy and unicast-dominated, ``lu_contig``
lightest.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.network.topology import MeshTopology
from repro.workloads.trace import BarrierOp, ComputeOp, CoreTrace, MemoryOp

#: Address-space layout (line ids).  Regions never overlap: privates
#: start high, shared regions low.
_WIDE_BASE = 1_000_000
_WIDE_STRIDE = 10_000
_GROUP_BASE = 500_000_000
_PRIVATE_BASE = 1_000_000_000
_PRIVATE_STRIDE = 1_000_000

#: Hot-set sizes giving traces temporal locality (L1-resident reuse).
_PRIVATE_HOT_LINES = 8
_WIDE_HOT_LINES = 8


@dataclass(frozen=True)
class AppProfile:
    """Traffic signature of one application.

    Attributes
    ----------
    name / label:
        Identifier and the paper's display name.
    mem_ops_per_core:
        Memory references per core at scale 1.0.
    compute_per_mem:
        Average compute instructions between memory references.
    p_private / p_wide:
        Probability a reference targets private / wide-shared data; the
        remainder goes to group-shared data.
    private_ws_frac:
        Private cold-region size as a fraction of L2 capacity.
    private_cold_frac:
        Fraction of private references that leave the hot subset.
    wide_degree:
        Cores per wide-sharing neighbourhood (must exceed the
        protocol's k for writes to broadcast; bounded so each
        invalidation triggers a bounded re-read storm).
    wide_ws_lines:
        Wide-shared lines per neighbourhood.
    wide_writes_per_phase:
        Expected wide-data writes per core at each phase boundary (the
        rebuild step); the broadcast-frequency knob (Table V).
    group_size / group_ws_lines / group_write_frac:
        Producer-consumer sharing within small groups.
    n_phases:
        Barrier-separated phases.
    """

    name: str
    label: str
    mem_ops_per_core: int
    compute_per_mem: int
    p_private: float
    p_wide: float
    private_ws_frac: float
    private_cold_frac: float
    wide_degree: int
    wide_ws_lines: int
    wide_writes_per_phase: float
    group_size: int
    group_ws_lines: int
    group_write_frac: float
    n_phases: int = 4

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_private <= 1.0:
            raise ValueError(f"{self.name}: p_private out of range")
        if not 0.0 <= self.p_wide <= 1.0 - self.p_private + 1e-12:
            raise ValueError(f"{self.name}: p_private + p_wide exceeds 1")
        for field_name in (
            "mem_ops_per_core", "compute_per_mem", "wide_degree",
            "wide_ws_lines", "group_size", "group_ws_lines", "n_phases",
        ):
            if getattr(self, field_name) < 1:
                raise ValueError(f"{self.name}: {field_name} must be >= 1")
        if self.private_ws_frac <= 0:
            raise ValueError(f"{self.name}: private_ws_frac must be positive")
        if self.wide_writes_per_phase < 0:
            raise ValueError(f"{self.name}: wide_writes_per_phase must be >= 0")
        for frac in ("group_write_frac", "private_cold_frac"):
            if not 0.0 <= getattr(self, frac) <= 1.0:
                raise ValueError(f"{self.name}: {frac} out of range")


#: The eight applications, in the paper's figure order.
APP_PROFILES: dict[str, AppProfile] = {
    # Dynamic graph: pointer chasing over a shared graph whose hot nodes
    # are read by a wide neighbourhood and updated frequently as edges
    # arrive -> frequent broadcasts, moderate load.
    "dynamic_graph": AppProfile(
        name="dynamic_graph", label="dynamic graph",
        mem_ops_per_core=260, compute_per_mem=5,
        p_private=0.55, p_wide=0.32,
        private_ws_frac=0.70, private_cold_frac=0.10,
        wide_degree=32, wide_ws_lines=64, wide_writes_per_phase=1.2,
        group_size=4, group_ws_lines=16, group_write_frac=0.30,
        n_phases=6,
    ),
    # Radix sort: streams through large private key arrays (capacity
    # misses -> high load); the shared histogram is rebuilt per phase.
    "radix": AppProfile(
        name="radix", label="radix",
        mem_ops_per_core=300, compute_per_mem=4,
        p_private=0.80, p_wide=0.08,
        private_ws_frac=1.60, private_cold_frac=0.30,
        wide_degree=32, wide_ws_lines=64, wide_writes_per_phase=0.5,
        group_size=4, group_ws_lines=16, group_write_frac=0.35,
    ),
    # Barnes-Hut: tree cells read by wide neighbourhoods each timestep
    # and rebuilt between phases -> broadcast-dominated, low load.
    "barnes": AppProfile(
        name="barnes", label="barnes",
        mem_ops_per_core=170, compute_per_mem=10,
        p_private=0.50, p_wide=0.42,
        private_ws_frac=0.30, private_cold_frac=0.035,
        wide_degree=32, wide_ws_lines=48, wide_writes_per_phase=1.6,
        group_size=4, group_ws_lines=16, group_write_frac=0.20,
        n_phases=6,
    ),
    # FMM: similar global-tree sharing to barnes.
    "fmm": AppProfile(
        name="fmm", label="fmm",
        mem_ops_per_core=160, compute_per_mem=11,
        p_private=0.52, p_wide=0.40,
        private_ws_frac=0.35, private_cold_frac=0.035,
        wide_degree=32, wide_ws_lines=48, wide_writes_per_phase=1.5,
        group_size=4, group_ws_lines=16, group_write_frac=0.20,
        n_phases=6,
    ),
    # Ocean (contiguous): nearest-neighbour stencil over big private
    # tiles; boundary exchange with neighbour groups; rare global
    # reductions.
    "ocean_contig": AppProfile(
        name="ocean_contig", label="ocean contig",
        mem_ops_per_core=290, compute_per_mem=4,
        p_private=0.74, p_wide=0.04,
        private_ws_frac=1.40, private_cold_frac=0.25,
        wide_degree=32, wide_ws_lines=48, wide_writes_per_phase=0.12,
        group_size=4, group_ws_lines=24, group_write_frac=0.40,
    ),
    # LU (contiguous): blocked, cache-friendly, almost no sharing ->
    # lightest load, broadcasts almost never.
    "lu_contig": AppProfile(
        name="lu_contig", label="lu contig",
        mem_ops_per_core=140, compute_per_mem=13,
        p_private=0.86, p_wide=0.03,
        private_ws_frac=0.45, private_cold_frac=0.015,
        wide_degree=32, wide_ws_lines=48, wide_writes_per_phase=0.004,
        group_size=4, group_ws_lines=16, group_write_frac=0.25,
    ),
    # Ocean (non-contiguous): strided layout defeats the caches ->
    # highest load, still unicast-dominated.
    "ocean_non_contig": AppProfile(
        name="ocean_non_contig", label="ocean non-contig",
        mem_ops_per_core=310, compute_per_mem=3,
        p_private=0.74, p_wide=0.03,
        private_ws_frac=2.20, private_cold_frac=0.45,
        wide_degree=32, wide_ws_lines=48, wide_writes_per_phase=0.02,
        group_size=4, group_ws_lines=32, group_write_frac=0.45,
    ),
    # LU (non-contiguous): strided lu -> more misses, moderate load,
    # broadcasts rare.
    "lu_non_contig": AppProfile(
        name="lu_non_contig", label="lu non-contig",
        mem_ops_per_core=240, compute_per_mem=5,
        p_private=0.78, p_wide=0.05,
        private_ws_frac=1.10, private_cold_frac=0.15,
        wide_degree=32, wide_ws_lines=48, wide_writes_per_phase=0.06,
        group_size=4, group_ws_lines=24, group_write_frac=0.35,
    ),
}

#: Figure order used throughout the paper's plots.
APP_ORDER = (
    "dynamic_graph", "radix", "barnes", "fmm",
    "ocean_contig", "lu_contig", "ocean_non_contig", "lu_non_contig",
)


def generate_traces(
    profile: AppProfile,
    topology: MeshTopology,
    l2_lines: int = 4096,
    scale: float = 1.0,
    seed: int = 42,
) -> dict[int, CoreTrace]:
    """Build one trace per compute core for an application.

    ``l2_lines`` is the (possibly test-scaled) per-core L2 capacity in
    lines; private working sets are sized relative to it so miss
    behaviour stays representative at any scale.  ``scale`` shrinks or
    stretches the per-core memory-op count (tests use small scales,
    benchmarks 1.0).  Generation is deterministic in ``seed``.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    if l2_lines < 8:
        raise ValueError(f"l2_lines must be >= 8, got {l2_lines}")
    # Trace generation is pure per-RunSpec setup cost, repeated for
    # every spec in a sweep, so the per-op loop below is written for
    # speed: every ``profile.*`` attribute, region base and RNG method
    # is hoisted out of the loop.  The RNG *call sequence* is part of
    # the determinism contract (``trace_digest``): one ``random.Random``
    # stream per core, consumed in exactly the historical order.
    compute_cores = topology.compute_cores()
    n_ops = max(4, int(profile.mem_ops_per_core * scale))
    private_cold_lines = max(8, int(profile.private_ws_frac * l2_lines))
    ops_per_phase = max(1, n_ops // profile.n_phases)
    traces: dict[int, CoreTrace] = {}
    p_priv, p_wide = profile.p_private, profile.p_wide
    p_priv_or_wide = p_priv + p_wide
    p_cold = profile.private_cold_frac
    wide_hot = min(_WIDE_HOT_LINES, profile.wide_ws_lines)
    wide_ws_lines = profile.wide_ws_lines
    group_ws_lines = profile.group_ws_lines
    group_write_frac = profile.group_write_frac
    wide_writes_per_phase = profile.wide_writes_per_phase
    last_barrier = profile.n_phases - 1
    lam = 1.0 / profile.compute_per_mem
    seed_prefix = f"{seed}:{profile.name}:"
    #: BarrierOps are identical across cores; build each once.
    barrier_ops = [BarrierOp(b) for b in range(profile.n_phases)]
    rebuild_compute = ComputeOp(2)
    for rank, core in enumerate(compute_cores):
        rng = random.Random(seed_prefix + str(core))
        rand = rng.random
        randrange = rng.randrange
        expovariate = rng.expovariate
        group_id = rank // profile.group_size
        group_base = _GROUP_BASE + group_id * group_ws_lines
        wide_group = rank // profile.wide_degree
        wide_base = _WIDE_BASE + wide_group * _WIDE_STRIDE
        private_base = _PRIVATE_BASE + core * _PRIVATE_STRIDE
        private_cold_base = private_base + _PRIVATE_HOT_LINES
        ops: list = []
        append = ops.append
        barrier_id = 0

        def phase_rebuild() -> None:
            """Post-barrier rebuild: writes to wide-shared data whose
            readers accumulated over the previous phase -- each write
            lands on a line with > k sharers and broadcasts its
            invalidation."""
            n_writes = int(wide_writes_per_phase)
            if rand() < wide_writes_per_phase - n_writes:
                n_writes += 1
            for _ in range(n_writes):
                line = wide_base + randrange(wide_hot)
                append(rebuild_compute)
                append(MemoryOp(line, is_write=True))

        for i in range(n_ops):
            append(ComputeOp(max(1, int(expovariate(lam)) + 1)))
            r = rand()
            if r < p_priv:
                if rand() < p_cold:
                    addr = private_cold_base + randrange(private_cold_lines)
                else:
                    addr = private_base + randrange(_PRIVATE_HOT_LINES)
                is_write = rand() < 0.3  # typical store share
            elif r < p_priv_or_wide:
                if rand() < 0.85:
                    addr = wide_base + randrange(wide_hot)
                else:
                    addr = wide_base + randrange(wide_ws_lines)
                is_write = False  # wide data is read-only mid-phase
            else:
                addr = group_base + randrange(group_ws_lines)
                is_write = rand() < group_write_frac
            append(MemoryOp(addr, is_write=is_write))
            if (i + 1) % ops_per_phase == 0 and barrier_id < last_barrier:
                append(barrier_ops[barrier_id])
                barrier_id += 1
                phase_rebuild()
        append(barrier_ops[last_barrier])
        traces[core] = CoreTrace(core, ops)
    return traces
