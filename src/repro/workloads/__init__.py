"""Workload models.

* :mod:`repro.workloads.synthetic` -- open-loop uniform-random traffic
  with a configurable broadcast fraction, used for the Figure 3
  latency-vs-offered-load study.
* :mod:`repro.workloads.trace`     -- the per-core instruction-trace
  format the full-system simulator executes.
* :mod:`repro.workloads.splash`    -- parameterized models of the seven
  SPLASH-2 applications and the dynamic-graph benchmark, calibrated to
  the paper's per-application traffic signatures (Figures 5-6, Table V).
"""

from repro.workloads.synthetic import SyntheticTraffic, LoadSweepPoint, run_load_point
from repro.workloads.trace import (
    ComputeOp,
    MemoryOp,
    BarrierOp,
    TraceOp,
    CoreTrace,
)
from repro.workloads.splash import (
    AppProfile,
    APP_PROFILES,
    APP_ORDER,
    generate_traces,
)

__all__ = [
    "SyntheticTraffic",
    "LoadSweepPoint",
    "run_load_point",
    "ComputeOp",
    "MemoryOp",
    "BarrierOp",
    "TraceOp",
    "CoreTrace",
    "AppProfile",
    "APP_PROFILES",
    "APP_ORDER",
    "generate_traces",
]
