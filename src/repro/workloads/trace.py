"""Per-core instruction traces for the full-system simulator.

The Graphite-like simulator (:mod:`repro.sim`) executes one
:class:`CoreTrace` per core.  A trace is a sequence of ops:

* :class:`ComputeOp`  -- ``n`` back-to-back single-cycle instructions
  (the core is in-order single-issue, Table I).
* :class:`MemoryOp`   -- one load or store to a cache-line address.
  The core *blocks* until the memory system responds -- this is how
  network latency back-pressures the application, the paper's central
  methodological point.
* :class:`BarrierOp`  -- global synchronization; the core waits until
  every participant arrives.  SPLASH-2 applications are barrier-phased,
  and barriers are what couple per-core slowdowns into whole-app
  runtime.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class ComputeOp:
    """``cycles`` of pure computation (one instruction per cycle)."""

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 1:
            raise ValueError(f"cycles must be >= 1, got {self.cycles}")


@dataclass(frozen=True)
class MemoryOp:
    """One memory reference.

    Attributes
    ----------
    address:
        Cache-line-aligned address (line granularity: the simulator
        treats ``address`` as a line id).
    is_write:
        Store vs load.
    """

    address: int
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"address must be non-negative, got {self.address}")


@dataclass(frozen=True)
class BarrierOp:
    """Global barrier with a sequence id (barriers must be hit in order)."""

    barrier_id: int

    def __post_init__(self) -> None:
        if self.barrier_id < 0:
            raise ValueError(f"barrier_id must be non-negative, got {self.barrier_id}")


TraceOp = Union[ComputeOp, MemoryOp, BarrierOp]


@dataclass
class CoreTrace:
    """The instruction stream of one core."""

    core: int
    ops: list[TraceOp]

    def __post_init__(self) -> None:
        if self.core < 0:
            raise ValueError(f"core must be non-negative, got {self.core}")

    @property
    def n_instructions(self) -> int:
        """Retired instruction count (memory ops and barriers count as 1)."""
        total = 0
        for op in self.ops:
            if isinstance(op, ComputeOp):
                total += op.cycles
            else:
                total += 1
        return total

    @property
    def n_memory_ops(self) -> int:
        return sum(1 for op in self.ops if isinstance(op, MemoryOp))

    @property
    def n_barriers(self) -> int:
        return sum(1 for op in self.ops if isinstance(op, BarrierOp))


def trace_digest(traces: dict[int, CoreTrace]) -> str:
    """Deterministic digest of a trace set.

    The experiment runner's correctness rests on trace generation being
    a pure function of the spec's seed: a ``ProcessPoolExecutor``
    worker regenerating an app's traces must produce bit-identical
    streams to an in-process run, or parallel and serial sweeps would
    diverge.  This digest makes that contract cheap to assert (see
    ``tests/workloads`` and ``tests/experiments/test_runner.py``).
    """
    h = hashlib.sha256()
    for core in sorted(traces):
        h.update(f"core{core}:".encode())
        for op in traces[core].ops:
            if isinstance(op, ComputeOp):
                h.update(f"c{op.cycles};".encode())
            elif isinstance(op, MemoryOp):
                h.update(f"m{op.address},{int(op.is_write)};".encode())
            else:
                h.update(f"b{op.barrier_id};".encode())
    return h.hexdigest()
