"""Open-loop synthetic traffic for network-only studies (Figure 3).

The paper's Figure 3 measures latency vs offered load under "uniform
random unicast traffic and 0.1% broadcast injection" for the routing
schemes Cluster and Distance-{5,15,25,35,All}.  This module generates
that traffic and drives any :class:`repro.network.engine.Network`.

Injection is Bernoulli per core per cycle at a rate chosen so the
*offered load* (flits/cycle/core) matches the request; destinations are
uniform over the other cores; a small fraction of packets are
broadcasts.  Traffic is pre-generated with NumPy and replayed in time
order (the engine requires ordered sends).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.network.engine import Network
from repro.network.types import BROADCAST, Packet


@dataclass(frozen=True)
class LoadSweepPoint:
    """One measured point of a latency-vs-load curve."""

    offered_load: float          # requested flits/cycle/core
    measured_load: float         # injected flits/cycle/core (post-warmup)
    mean_latency: float          # cycles
    max_latency: int
    packets: int
    saturated: bool              # latency diverged past the cutoff


class SyntheticTraffic:
    """Uniform-random traffic with a broadcast fraction.

    Parameters
    ----------
    n_cores:
        Cores injecting (and receiving) traffic.
    load:
        Offered load in flits/cycle/core.
    broadcast_fraction:
        Fraction of *packets* that are broadcasts (paper: 0.1 %).
    packet_bits:
        Size of every packet (default: an 88-bit coherence message).
    seed:
        RNG seed; every run is deterministic.
    """

    def __init__(
        self,
        n_cores: int,
        load: float,
        broadcast_fraction: float = 0.001,
        packet_bits: int = 88,
        flit_bits: int = 64,
        seed: int = 1234,
    ) -> None:
        if n_cores < 2:
            raise ValueError(f"n_cores must be >= 2, got {n_cores}")
        if load <= 0:
            raise ValueError(f"load must be positive, got {load}")
        if not 0.0 <= broadcast_fraction <= 1.0:
            raise ValueError(
                f"broadcast_fraction must be in [0,1], got {broadcast_fraction}"
            )
        self.n_cores = n_cores
        self.load = load
        self.broadcast_fraction = broadcast_fraction
        self.packet_bits = packet_bits
        self.flit_bits = flit_bits
        self.seed = seed
        flits_per_packet = max(1, math.ceil(packet_bits / flit_bits))
        #: per-core per-cycle packet injection probability
        self.p_inject = min(1.0, load / flits_per_packet)

    def generate(self, cycles: int) -> list[Packet]:
        """All packets for a run of ``cycles``, in injection-time order."""
        if cycles < 1:
            raise ValueError(f"cycles must be >= 1, got {cycles}")
        rng = np.random.default_rng(self.seed)
        # Bernoulli thinning over the (cycle, core) grid, vectorized.
        n_trials = cycles * self.n_cores
        hits = np.flatnonzero(rng.random(n_trials) < self.p_inject)
        times = hits // self.n_cores          # row-major: cycle-major order
        srcs = hits % self.n_cores
        is_bcast = rng.random(hits.size) < self.broadcast_fraction
        # uniform destination over the *other* cores
        dsts = rng.integers(0, self.n_cores - 1, size=hits.size)
        dsts = np.where(dsts >= srcs, dsts + 1, dsts)
        packets = []
        for t, s, d, b in zip(times, srcs, dsts, is_bcast):
            packets.append(
                Packet(
                    src=int(s),
                    dst=BROADCAST if b else int(d),
                    size_bits=self.packet_bits,
                    time=int(t),
                )
            )
        return packets


def run_load_point(
    network: Network,
    traffic: SyntheticTraffic,
    cycles: int = 2000,
    warmup_cycles: int = 500,
    saturation_latency: float = 400.0,
) -> LoadSweepPoint:
    """Drive ``network`` with ``traffic`` and measure steady-state latency.

    Packets injected during the warm-up window are routed (they load the
    network) but excluded from the latency statistics, standard
    open-loop methodology.
    """
    if warmup_cycles >= cycles:
        raise ValueError("warmup_cycles must be < cycles")
    packets = traffic.generate(cycles)
    measured_cycles = cycles - warmup_cycles
    pending_reset = warmup_cycles > 0
    for pkt in packets:
        if pending_reset and pkt.time >= warmup_cycles:
            network.reset_stats()
            pending_reset = False
        network.send(pkt)
    stats = network.stats
    mean = stats.mean_latency
    return LoadSweepPoint(
        offered_load=traffic.load,
        measured_load=stats.offered_load(measured_cycles, traffic.n_cores)
        if stats.injected_flits
        else 0.0,
        mean_latency=mean,
        max_latency=stats.latency_max,
        packets=stats.packets_sent,
        saturated=mean > saturation_latency,
    )
