"""Typed run specifications: the unit of work of the experiment layer.

Every paper figure is a function of a set of *runs*, each fully
described by a small parameter tuple.  A spec is a frozen dataclass
that

* validates its parameters at construction,
* hashes deterministically (``content_hash``) so identical work is
  recognized across processes, sessions and figure modules,
* knows how to ``execute()`` itself in any process (specs are plain
  picklable values, so a ``ProcessPoolExecutor`` worker can run them),
* converts its result to and from a JSON payload for the versioned
  result store.

Two spec kinds cover the paper's evaluations:

* :class:`RunSpec` -- one application on one architecture through
  :class:`~repro.sim.system.ManycoreSystem` (Figs 4-17, Table V);
* :class:`LoadPointSpec` -- one synthetic-traffic load point on the
  hybrid network (Fig 3 and the ablation sweeps).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields

from repro import __version__
from repro.coherence.directory import Protocol
from repro.network.registry import get_network
from repro.sim.config import SystemConfig
from repro.sim.results import RunResult
from repro.workloads.synthetic import LoadSweepPoint

#: Bump whenever the meaning of a spec field, the simulator's observable
#: behaviour, or the stored payload layout changes: the version is part
#: of every content hash, so old ``.repro_cache/`` entries are ignored
#: rather than deserialized into mismatched dataclasses.
CACHE_SCHEMA_VERSION = 5


def _env_telemetry() -> bool:
    """``REPRO_TELEMETRY`` without importing the telemetry package."""
    import os

    return os.environ.get("REPRO_TELEMETRY", "0").lower() in ("1", "true", "on")


def _digest(kind: str, payload: dict) -> str:
    """Deterministic content hash over (schema, package version, spec)."""
    doc = {
        "kind": kind,
        "schema": CACHE_SCHEMA_VERSION,
        "repro": __version__,
        "spec": payload,
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


@dataclass(frozen=True)
class RunSpec:
    """One (application, architecture, scale, seed) simulation."""

    kind = "run"

    app: str
    network: str = "atac+"
    mesh_width: int = 16
    scale: float = 0.6
    protocol: Protocol = Protocol.ACKWISE
    hardware_sharers: int = 4
    rthres: int = 15
    flit_bits: int = 64
    receive_net: str = "starnet"
    seed: int = 42
    #: Run under the runtime invariant checker (repro.sanitizer).
    #: Deliberately *excluded* from the spec's identity: a sanitized run
    #: produces byte-identical results, so it shares the unsanitized
    #: content hash (the runner still bypasses the cache for it -- a
    #: cache hit would skip the checking the caller asked for).
    sanitize: bool = False
    #: Collect windowed telemetry + an event trace (repro.telemetry)
    #: into ``<telemetry root>/<content hash>/``.  Excluded from the
    #: spec's identity for the same reason as ``sanitize``: telemetry
    #: leaves the simulation byte-identical, and the runner bypasses
    #: the cache on load so the artifacts actually get produced.
    telemetry: bool = False

    def __post_init__(self) -> None:
        # import here: workloads.splash imports nothing from experiments,
        # but keeping the top-level import surface small keeps unpickling
        # in pool workers cheap.
        from repro.workloads.splash import APP_PROFILES

        if self.app not in APP_PROFILES:
            raise KeyError(
                f"unknown app {self.app!r}; choose from {sorted(APP_PROFILES)}"
            )
        get_network(self.network)  # raises UnknownNetworkError
        if isinstance(self.protocol, str):
            object.__setattr__(self, "protocol", Protocol(self.protocol))
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.mesh_width < 4:
            raise ValueError(f"mesh_width must be >= 4, got {self.mesh_width}")
        if self.rthres < 0:
            raise ValueError(f"rthres must be >= 0, got {self.rthres}")

    # -- identity -------------------------------------------------------
    def to_dict(self) -> dict:
        d = asdict(self)
        d["protocol"] = self.protocol.value
        del d["sanitize"]  # not part of the run's identity (see field doc)
        del d["telemetry"]  # likewise observational-only
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "RunSpec":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in d.items() if k in known})

    def content_hash(self) -> str:
        return _digest(self.kind, self.to_dict())

    def label(self) -> str:
        """Short human-readable tag for progress lines."""
        return f"{self.app}@{self.network}/w{self.mesh_width}"

    # -- execution ------------------------------------------------------
    def config(self) -> SystemConfig:
        """The paper-default config scaled to this spec's mesh width."""
        base = SystemConfig(
            network=self.network,
            protocol=self.protocol,
            hardware_sharers=self.hardware_sharers,
            rthres=self.rthres,
            flit_bits=self.flit_bits,
            receive_net=self.receive_net,
        )
        if self.mesh_width == 32:
            return base
        return base.scaled(mesh_width=self.mesh_width)

    def execute(self) -> RunResult:
        """Run the full-system simulation for this spec (any process).

        Trace generation is deterministic in ``(seed, app, core)`` --
        see :func:`repro.workloads.splash.generate_traces` -- so a pool
        worker produces a byte-identical result to an in-process run.
        """
        from repro.sim.system import ManycoreSystem
        from repro.workloads.splash import APP_PROFILES, generate_traces

        telemetry = False
        if self.telemetry or _env_telemetry():
            # Resolve the environment knob *here* rather than deferring
            # to ManycoreSystem so env-requested telemetry still lands
            # in the telemetry root (a bare default TelemetryConfig
            # would stay in memory).
            from repro.telemetry import telemetry_root
            from repro.telemetry.collector import TelemetryConfig

            telemetry = TelemetryConfig(
                run_id=self.content_hash(),
                label=self.label(),
                out_dir=telemetry_root(),
            )
        config = self.config()
        system = ManycoreSystem(
            config, sanitize=self.sanitize or None, telemetry=telemetry
        )
        traces = generate_traces(
            APP_PROFILES[self.app],
            system.topology,
            l2_lines=config.l2_sets * config.l2_ways,
            scale=self.scale,
            seed=self.seed,
        )
        return system.run(traces, app=self.app)

    # -- store payload --------------------------------------------------
    def result_to_payload(self, result: RunResult) -> dict:
        return result.to_dict()

    def result_from_payload(self, payload: dict) -> RunResult:
        return RunResult.from_dict(payload)


@dataclass(frozen=True)
class LoadPointSpec:
    """One synthetic-traffic load point on the hybrid network (Fig 3).

    ``routing`` is a canonical string -- ``"cluster"``,
    ``"distance-<t>"`` or ``"distance-all"`` -- so the spec stays a
    plain hashable value; the policy object is built at execute time.
    """

    kind = "loadpoint"

    routing: str
    load: float
    mesh_width: int = 32
    cluster_width: int = 4
    broadcast_fraction: float = 0.0
    cycles: int = 1500
    warmup_cycles: int = 400
    seed: int = 7
    flit_bits: int = 64

    def __post_init__(self) -> None:
        self._parse_routing()  # validates
        if not 0 < self.load:
            raise ValueError(f"load must be positive, got {self.load}")
        if self.warmup_cycles >= self.cycles:
            raise ValueError("warmup_cycles must be < cycles")

    def _parse_routing(self):
        from repro.network.routing import ClusterRouting, DistanceRouting, distance_all
        from repro.network.topology import MeshTopology

        topo = MeshTopology(width=self.mesh_width, cluster_width=self.cluster_width)
        r = self.routing
        if r == "cluster":
            return topo, ClusterRouting()
        if r == "distance-all":
            return topo, distance_all(topo)
        if r.startswith("distance-"):
            return topo, DistanceRouting(int(r.split("-", 1)[1]))
        raise ValueError(
            f"bad routing {r!r}: expected 'cluster', 'distance-<t>' "
            "or 'distance-all'"
        )

    # -- identity -------------------------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "LoadPointSpec":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in d.items() if k in known})

    def content_hash(self) -> str:
        return _digest(self.kind, self.to_dict())

    def label(self) -> str:
        return f"{self.routing}@load{self.load}"

    # -- execution ------------------------------------------------------
    def execute(self) -> LoadSweepPoint:
        from repro.network.atac import AtacNetwork
        from repro.workloads.synthetic import SyntheticTraffic, run_load_point

        topology, policy = self._parse_routing()
        network = AtacNetwork(topology, flit_bits=self.flit_bits, routing=policy)
        traffic = SyntheticTraffic(
            n_cores=topology.n_cores,
            load=self.load,
            broadcast_fraction=self.broadcast_fraction,
            seed=self.seed,
        )
        return run_load_point(
            network, traffic, cycles=self.cycles, warmup_cycles=self.warmup_cycles
        )

    # -- store payload --------------------------------------------------
    def result_to_payload(self, result: LoadSweepPoint) -> dict:
        return asdict(result)

    def result_from_payload(self, payload: dict) -> LoadSweepPoint:
        known = {f.name for f in fields(LoadSweepPoint)}
        return LoadSweepPoint(**{k: v for k, v in payload.items() if k in known})


#: Spec kinds understood by the result store (kind slug -> class).
SPEC_KINDS = {RunSpec.kind: RunSpec, LoadPointSpec.kind: LoadPointSpec}
