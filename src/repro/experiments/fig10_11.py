"""Figures 10-11: area breakdown and flit-width sensitivity.

* **Figure 10**: chip area of ATAC+ vs the electrical mesh.  Caches
  dominate (~90 %); electrical network components are negligible; the
  photonics occupy ~40 mm^2 at 64-bit flit width.
* **Figure 11**: ATAC+ runtime as flit width sweeps 16..256 bits.
  Performance improves steeply to 64 bits (~50 % from 16) and flattens
  (~10 % more to 256); the paper picks 64 bits because photonic area
  grows linearly with width (~160 mm^2 at 256 bits).
"""

from __future__ import annotations

from repro.energy.area import AreaModel
from repro.experiments.common import format_table, make_config, run_batch, spec_for
from repro.network.registry import experiment_axis, get_network
from repro.tech.photonics import OnetGeometry

#: the four applications Figure 11 sweeps
FIG11_APPS = ("radix", "barnes", "ocean_contig", "ocean_non_contig")
FLIT_WIDTHS = (16, 32, 64, 128, 256)


def run_fig10(mesh_width: int | None = None) -> dict[str, dict[str, float]]:
    """Area breakdowns (mm^2) for ATAC+ and the electrical mesh."""
    out = {}
    for net in experiment_axis("edp"):
        config = make_config(net, 32 if mesh_width is None else mesh_width)
        breakdown = AreaModel(config).breakdown()
        d = dict(breakdown.components)
        d["total"] = breakdown.total_mm2
        d["cache_fraction"] = breakdown.cache_fraction
        out[get_network(net).display_name] = d
    return out


def run_fig11(
    apps: tuple[str, ...] = FIG11_APPS,
    widths: tuple[int, ...] = FLIT_WIDTHS,
    mesh_width: int | None = None,
    scale: float | None = None,
    jobs: int | None = None,
) -> list[dict]:
    """Runtime (normalized to 64-bit) and photonic area per flit width."""
    keys = [(app, w) for app in apps for w in (64, *widths)]
    specs = [
        spec_for(app, network="atac+", flit_bits=w,
                 mesh_width=mesh_width, scale=scale)
        for app, w in keys
    ]
    results = dict(zip(keys, run_batch(specs, jobs=jobs)))
    rows = []
    for app in apps:
        ref = results[app, 64].completion_cycles
        row = {"app": app}
        for w in widths:
            row[f"w{w}"] = round(results[app, w].completion_cycles / ref, 3)
        rows.append(row)
    avg = {"app": "average"}
    for w in widths:
        avg[f"w{w}"] = round(sum(r[f"w{w}"] for r in rows) / len(rows), 3)
    rows.append(avg)
    return rows


def photonic_area_by_width(widths: tuple[int, ...] = FLIT_WIDTHS) -> dict[int, float]:
    """Photonic footprint (mm^2) per flit width (the Figure 11 tradeoff)."""
    return {
        w: OnetGeometry(data_width_bits=w).photonics_area_mm2() for w in widths
    }


def main() -> None:
    print("Figure 10: area breakdown (mm^2)")
    for arch, comp in run_fig10().items():
        parts = ", ".join(f"{k}={v:.1f}" for k, v in comp.items())
        print(f"  {arch}: {parts}")
    print("\nFigure 11: runtime vs flit width (normalized to 64-bit)")
    rows = run_fig11()
    print(format_table(rows, list(rows[0].keys())))
    print("\nphotonic area by flit width (mm^2):", {
        k: round(v, 1) for k, v in photonic_area_by_width().items()
    })


if __name__ == "__main__":
    main()
