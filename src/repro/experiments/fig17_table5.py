"""Figure 17 and Table V: core power and adaptive SWMR link behaviour.

* **Figure 17**: whole-chip energy split into core / cache / network,
  with core NDD power at 10 % and 40 % of the 20 mW peak, for ATAC+
  and EMesh-BCast.  The core dwarfs the rest; the faster network's
  saving is almost entirely core-NDD energy.
* **Table V**: per application, the adaptive SWMR link utilization
  (fraction of time in unicast or broadcast mode) and the average
  number of unicasts between successive broadcasts.
"""

from __future__ import annotations

from repro.energy.accounting import EnergyModel
from repro.experiments.common import format_table, make_config, run_batch, spec_for
from repro.network.registry import experiment_axis
from repro.tech.core import CorePowerModel
from repro.workloads.splash import APP_ORDER

FIG17_APPS = ("radix", "fmm", "ocean_contig", "ocean_non_contig")
#: the ATAC+-vs-mesh pair Figure 17 compares.
FIG17_NETWORKS = experiment_axis("edp")


def run_fig17(
    apps: tuple[str, ...] = FIG17_APPS,
    ndd_fractions: tuple[float, ...] = (0.10, 0.40),
    mesh_width: int | None = None,
    scale: float | None = None,
    jobs: int | None = None,
) -> list[dict]:
    """Rows of (app, network, ndd_fraction) with core/cache/network J."""
    keys = [(app, net) for app in apps for net in FIG17_NETWORKS]
    specs = [
        spec_for(app, network=net, mesh_width=mesh_width, scale=scale)
        for app, net in keys
    ]
    results = dict(zip(keys, run_batch(specs, jobs=jobs)))
    rows = []
    for ndd in ndd_fractions:
        core_model = CorePowerModel(ndd_fraction=ndd)
        for app in apps:
            for net in FIG17_NETWORKS:
                model = EnergyModel(
                    make_config(net, mesh_width), core_power=core_model
                )
                b = model.evaluate(results[app, net])
                rows.append(
                    {
                        "app": app,
                        "network": b.network,
                        "ndd_frac": ndd,
                        "core_ndd_j": b["core_ndd"],
                        "core_dd_j": b["core_dd"],
                        "cache_j": b.cache_energy_j,
                        "network_j": b.network_energy_j,
                        "total_j": b.total_energy_j,
                    }
                )
    return rows


def run_table5(
    apps: tuple[str, ...] = APP_ORDER,
    mesh_width: int | None = None,
    scale: float | None = None,
    jobs: int | None = None,
) -> list[dict]:
    """Table V: link utilization % and unicasts-per-broadcast on ATAC+."""
    specs = [
        spec_for(app, network="atac+", mesh_width=mesh_width, scale=scale)
        for app in apps
    ]
    rows = []
    for app, res in zip(apps, run_batch(specs, jobs=jobs)):
        upb = res.unicasts_per_broadcast
        rows.append(
            {
                "app": app,
                "link_utilization_pct": round(100 * res.onet_utilization, 1),
                "unicasts_per_broadcast": (
                    round(upb, 1) if upb != float("inf") else float("inf")
                ),
            }
        )
    return rows


def main() -> None:
    print("Figure 17: chip energy (J), core/cache/network")
    rows = run_fig17()
    cols = ["app", "network", "ndd_frac", "core_ndd_j", "core_dd_j",
            "cache_j", "network_j", "total_j"]
    fmt_rows = [
        {k: (f"{v:.3e}" if isinstance(v, float) and k.endswith("_j") else v)
         for k, v in r.items()}
        for r in rows
    ]
    print(format_table(fmt_rows, cols))
    print("\nTable V: adaptive SWMR link utilization / unicasts per broadcast")
    rows5 = run_table5()
    print(format_table(rows5, list(rows5[0].keys())))


if __name__ == "__main__":
    main()
