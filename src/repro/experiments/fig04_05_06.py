"""Figures 4-6: application runtime, traffic mix, offered load.

* **Figure 4**: completion time of the 8 applications on ATAC+,
  EMesh-BCast and EMesh-Pure.  ATAC+ leads everywhere; EMesh-Pure
  collapses on broadcast-heavy apps (dynamic_graph, radix, barnes,
  fmm); high-load apps (radix, ocean_*) show a large EMesh-BCast
  penalty too.
* **Figure 5**: unicast vs broadcast traffic measured at the receiver.
* **Figure 6**: offered network load (flits/cycle/core) on ATAC+.

Each driver builds its full spec list up front and hands it to the
runner, so a cold cache fans out across worker processes.
"""

from __future__ import annotations

from repro.experiments.common import format_table, run_batch, spec_for
from repro.network.registry import experiment_axis
from repro.workloads.splash import APP_ORDER

#: the Figure 4/7/8 architecture-comparison axis (registry-defined).
NETWORKS = experiment_axis("runtime")


def run_fig4(
    apps: tuple[str, ...] = APP_ORDER,
    mesh_width: int | None = None,
    scale: float | None = None,
    jobs: int | None = None,
) -> list[dict]:
    """Rows: app, runtime per network, and runtimes normalized to ATAC+."""
    specs = [
        spec_for(app, network=net, mesh_width=mesh_width, scale=scale)
        for app in apps for net in NETWORKS
    ]
    results = iter(run_batch(specs, jobs=jobs))
    rows = []
    for app in apps:
        row: dict = {"app": app}
        for net in NETWORKS:
            row[net] = next(results).completion_cycles
        for net in NETWORKS:
            row[f"{net}_norm"] = round(row[net] / row["atac+"], 3)
        rows.append(row)
    return rows


def run_fig5(
    apps: tuple[str, ...] = APP_ORDER,
    mesh_width: int | None = None,
    scale: float | None = None,
    jobs: int | None = None,
) -> list[dict]:
    """Receiver-side unicast/broadcast percentages on ATAC+ (Fig 5)."""
    specs = [
        spec_for(app, network="atac+", mesh_width=mesh_width, scale=scale)
        for app in apps
    ]
    rows = []
    for app, res in zip(apps, run_batch(specs, jobs=jobs)):
        frac = res.receiver_broadcast_fraction
        rows.append(
            {
                "app": app,
                "broadcast_pct": round(100 * frac, 1),
                "unicast_pct": round(100 * (1 - frac), 1),
            }
        )
    return rows


def run_fig6(
    apps: tuple[str, ...] = APP_ORDER,
    mesh_width: int | None = None,
    scale: float | None = None,
    jobs: int | None = None,
) -> list[dict]:
    """Offered load in flits/cycle/core on ATAC+ (Fig 6)."""
    specs = [
        spec_for(app, network="atac+", mesh_width=mesh_width, scale=scale)
        for app in apps
    ]
    return [
        {"app": app, "offered_load": round(res.offered_load, 5)}
        for app, res in zip(apps, run_batch(specs, jobs=jobs))
    ]


def main() -> None:
    print("Figure 4: application runtime (cycles; *_norm = relative to ATAC+)")
    print(format_table(
        run_fig4(),
        ["app", *NETWORKS, *(f"{net}_norm" for net in NETWORKS[1:])],
    ))
    print("\nFigure 5: traffic mix at the receiver (ATAC+)")
    print(format_table(run_fig5(), ["app", "unicast_pct", "broadcast_pct"]))
    print("\nFigure 6: offered network load (flits/cycle/core, ATAC+)")
    print(format_table(run_fig6(), ["app", "offered_load"]))


if __name__ == "__main__":
    main()
