"""Process-parallel experiment runner.

Design-space sweeps are embarrassingly parallel across spec points --
each (app, network, scenario) run is an independent deterministic
simulation -- so the runner fans uncached specs out over a
``ProcessPoolExecutor`` and the result store turns repeated figure
requests into hits.

Flow for a batch::

    specs -> dedupe by content hash
          -> probe the store          (hits)
          -> execute misses in a pool (or inline when jobs=1)
          -> persist each result as it lands
          -> return results aligned with the input order

Workers receive the spec *value* (specs are plain frozen dataclasses)
and return the result; all store writes happen in the parent, so there
is exactly one writer per entry.  Trace generation is deterministic in
the spec's seed, which makes parallel output byte-identical to serial
output -- ``tests/experiments/test_runner.py`` locks this in.

Progress and per-run timing stream to stderr through
:mod:`repro.log` (suppress with ``--quiet`` / ``REPRO_LOG=warning``)::

    [repro.runner] 3/8 barnes@atac+/w16 elapsed_s=12.4
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

from repro.experiments.store import ResultStore, cache_enabled
from repro.log import get_logger

_logger = get_logger("runner")


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` env override, else every core."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def _timed_execute(spec):
    """Pool entry point: run one spec, returning (result, elapsed_s)."""
    t0 = time.perf_counter()
    result = spec.execute()
    return result, time.perf_counter() - t0


def _sanitize_requested(spec) -> bool:
    """Whether executing ``spec`` would attach the runtime sanitizer.

    Sanitized specs share the unsanitized content hash (results are
    byte-identical), so the cache must be *bypassed on load* for them:
    a hit would silently skip the invariant checking the caller asked
    for.  Saving the result afterwards is still fine.
    """
    sanitize = getattr(spec, "sanitize", None)
    if sanitize is None:
        return False  # spec kind without a sanitizer (e.g. LoadPointSpec)
    return bool(sanitize) or (
        os.environ.get("REPRO_SANITIZE", "0").lower() in ("1", "true", "on")
    )


def _telemetry_requested(spec) -> bool:
    """Whether executing ``spec`` would attach the telemetry collector.

    Same cache rule as :func:`_sanitize_requested`: telemetry shares the
    plain content hash (the simulation is byte-identical), so a cache
    hit would skip producing the windows/trace artifacts the caller
    asked for -- bypass on load, still save afterwards.
    """
    telemetry = getattr(spec, "telemetry", None)
    if telemetry is None:
        return False  # spec kind without telemetry (e.g. LoadPointSpec)
    return bool(telemetry) or (
        os.environ.get("REPRO_TELEMETRY", "0").lower() in ("1", "true", "on")
    )


def _bypass_cache_on_load(spec) -> bool:
    return _sanitize_requested(spec) or _telemetry_requested(spec)


@dataclass
class RunnerReport:
    """Accounting for one :meth:`Runner.run` call."""

    hits: int = 0
    misses: int = 0
    elapsed_s: float = 0.0
    jobs: int = 1
    #: content hash -> per-run wall-clock seconds (executed specs only)
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.hits + self.misses


class Runner:
    """Executes batches of specs with caching and process parallelism.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` means :func:`default_jobs`.  ``1``
        executes inline (no pool, no pickling) -- the reference path
        the determinism tests compare against.
    store:
        Result store; ``None`` uses the default cache directory.
        Ignored entirely when ``REPRO_CACHE=0``.
    progress:
        Stream per-run progress lines to stderr.
    """

    def __init__(
        self,
        jobs: int | None = None,
        store: ResultStore | None = None,
        progress: bool = True,
    ) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.store = store if store is not None else ResultStore()
        self.progress = progress
        self.last_report: RunnerReport | None = None

    # ------------------------------------------------------------------
    def run_one(self, spec):
        """Convenience wrapper: one spec, inline execution."""
        return self.run([spec])[0]

    def run(self, specs) -> list:
        """Execute ``specs``; returns results aligned with the input.

        Duplicate specs (same content hash) execute once and share the
        result object.
        """
        specs = list(specs)
        t_start = time.perf_counter()
        report = RunnerReport(jobs=self.jobs or default_jobs())

        # Dedupe while preserving first-seen order.
        order: list[str] = []
        unique: dict[str, object] = {}
        for spec in specs:
            h = spec.content_hash()
            if h not in unique:
                unique[h] = spec
                order.append(h)

        results: dict[str, object] = {}
        use_cache = cache_enabled()
        misses: list[str] = []
        for h in order:
            cached = (
                self.store.load(unique[h])
                if use_cache and not _bypass_cache_on_load(unique[h])
                else None
            )
            if cached is not None:
                results[h] = cached
                report.hits += 1
            else:
                misses.append(h)
        report.misses = len(misses)

        jobs = min(report.jobs, len(misses)) if misses else 1
        if misses:
            if jobs <= 1:
                self._run_serial(unique, misses, results, report)
            else:
                self._run_parallel(unique, misses, results, report, jobs)

        report.elapsed_s = time.perf_counter() - t_start
        self.last_report = report
        if self.progress and report.total:
            _logger.info(
                f"{report.total} spec(s): {report.hits} cached, "
                f"{report.misses} executed on {jobs} worker(s)",
                elapsed_s=report.elapsed_s,
            )
        return [results[spec.content_hash()] for spec in specs]

    # ------------------------------------------------------------------
    def _run_serial(self, unique, misses, results, report) -> None:
        for i, h in enumerate(misses, 1):
            spec = unique[h]
            result, elapsed = _timed_execute(spec)
            self._complete(spec, h, result, elapsed, results, report)
            self._log(f"{i}/{len(misses)} {spec.label()}", elapsed_s=elapsed)

    def _run_parallel(self, unique, misses, results, report, jobs) -> None:
        done_count = 0
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {pool.submit(_timed_execute, unique[h]): h for h in misses}
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for fut in done:
                    h = futures[fut]
                    spec = unique[h]
                    result, elapsed = fut.result()
                    self._complete(spec, h, result, elapsed, results, report)
                    done_count += 1
                    self._log(
                        f"{done_count}/{len(misses)} {spec.label()}",
                        elapsed_s=elapsed,
                    )

    def _complete(self, spec, h, result, elapsed, results, report) -> None:
        results[h] = result
        report.timings[h] = elapsed
        if cache_enabled():
            self.store.save(spec, result, elapsed_s=elapsed)

    def _log(self, message: str, **fields) -> None:
        if self.progress:
            _logger.info(message, **fields)


def run_specs(specs, jobs: int | None = None, progress: bool = True) -> list:
    """Module-level convenience: run a batch with a fresh Runner."""
    return Runner(jobs=jobs, progress=progress).run(specs)
