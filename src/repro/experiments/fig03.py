"""Figure 3: latency vs offered load for the unicast routing schemes.

Uniform random unicast traffic with 0.1 % broadcast injection on the
full hybrid network; routing schemes Cluster and Distance-{5,15,25,35,
All}.  The paper's observations, all reproduced here:

* at low load the low zero-load latency of the ONet makes small rthres
  (Cluster / Distance-5) optimal;
* the optimal rthres grows to 15 and then 25 as load increases;
* Distance-25 maximizes saturation throughput;
* Distance-35 and Distance-All are never optimal.

The (scheme x load) grid is embarrassingly parallel, so the sweep is
expressed as a batch of :class:`~repro.experiments.runspec.LoadPointSpec`
and fanned out through the runner.
"""

from __future__ import annotations

from repro.experiments.common import LoadPointSpec, run_batch
from repro.network.routing import ClusterRouting, DistanceRouting, distance_all
from repro.network.topology import MeshTopology

#: offered loads (flits/cycle/core) swept on the x-axis
DEFAULT_LOADS = (0.02, 0.04, 0.06, 0.08, 0.10, 0.14, 0.18, 0.24)


def routing_schemes(topology: MeshTopology):
    """The six schemes of Figure 3 (rthres values scaled to the mesh)."""
    full = topology.width == 32
    thresholds = (5, 15, 25, 35) if full else (5, 10, 15, 25)
    schemes = [ClusterRouting()]
    schemes += [DistanceRouting(t) for t in thresholds]
    schemes.append(distance_all(topology))
    return schemes


def scheme_ids(topology: MeshTopology) -> list[tuple[str, str]]:
    """(canonical spec routing, display name) per Figure 3 scheme."""
    out = []
    for scheme in routing_schemes(topology):
        if scheme.name == "Cluster":
            out.append(("cluster", scheme.name))
        elif scheme.name == "Distance-All":
            out.append(("distance-all", scheme.name))
        else:
            out.append((f"distance-{scheme.rthres}", scheme.name))
    return out


def run(
    mesh_width: int = 32,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    cycles: int = 1500,
    warmup_cycles: int = 400,
    broadcast_fraction: float = 0.001,
    seed: int = 7,
    jobs: int | None = None,
) -> dict[str, list[dict]]:
    """Returns {scheme_name: [{load, latency, saturated}, ...]}."""
    topology = MeshTopology(width=mesh_width, cluster_width=4)
    ids = scheme_ids(topology)
    specs = [
        LoadPointSpec(
            routing=routing,
            load=load,
            mesh_width=mesh_width,
            broadcast_fraction=broadcast_fraction,
            cycles=cycles,
            warmup_cycles=warmup_cycles,
            seed=seed,
        )
        for routing, _ in ids for load in loads
    ]
    points = iter(run_batch(specs, jobs=jobs))
    curves: dict[str, list[dict]] = {}
    for _, name in ids:
        curves[name] = []
        for load in loads:
            pt = next(points)
            curves[name].append(
                {
                    "load": load,
                    "latency": round(pt.mean_latency, 1),
                    "saturated": pt.saturated,
                }
            )
    return curves


def best_scheme_per_load(curves: dict[str, list[dict]]) -> dict[float, str]:
    """The latency-optimal scheme at each swept load (the paper's
    'optimal rthres grows with load' observation)."""
    loads = [p["load"] for p in next(iter(curves.values()))]
    best = {}
    for i, load in enumerate(loads):
        best[load] = min(curves, key=lambda name: curves[name][i]["latency"])
    return best


def main() -> None:
    curves = run()
    loads = [p["load"] for p in next(iter(curves.values()))]
    print("Figure 3: mean latency (cycles) vs offered load (flits/cycle/core)")
    header = "load    " + "  ".join(f"{name:>14s}" for name in curves)
    print(header)
    for i, load in enumerate(loads):
        row = f"{load:<7.3f} " + "  ".join(
            f"{curves[name][i]['latency']:>14.1f}" for name in curves
        )
        print(row)
    print("\nbest scheme per load:", best_scheme_per_load(curves))


if __name__ == "__main__":
    main()
