"""Figure 3: latency vs offered load for the unicast routing schemes.

Uniform random unicast traffic with 0.1 % broadcast injection on the
full hybrid network; routing schemes Cluster and Distance-{5,15,25,35,
All}.  The paper's observations, all reproduced here:

* at low load the low zero-load latency of the ONet makes small rthres
  (Cluster / Distance-5) optimal;
* the optimal rthres grows to 15 and then 25 as load increases;
* Distance-25 maximizes saturation throughput;
* Distance-35 and Distance-All are never optimal.
"""

from __future__ import annotations

from repro.network.atac import AtacNetwork
from repro.network.routing import ClusterRouting, DistanceRouting, distance_all
from repro.network.topology import MeshTopology
from repro.workloads.synthetic import SyntheticTraffic, run_load_point

#: offered loads (flits/cycle/core) swept on the x-axis
DEFAULT_LOADS = (0.02, 0.04, 0.06, 0.08, 0.10, 0.14, 0.18, 0.24)


def routing_schemes(topology: MeshTopology):
    """The six schemes of Figure 3 (rthres values scaled to the mesh)."""
    full = topology.width == 32
    thresholds = (5, 15, 25, 35) if full else (5, 10, 15, 25)
    schemes = [ClusterRouting()]
    schemes += [DistanceRouting(t) for t in thresholds]
    schemes.append(distance_all(topology))
    return schemes


def run(
    mesh_width: int = 32,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    cycles: int = 1500,
    warmup_cycles: int = 400,
    broadcast_fraction: float = 0.001,
    seed: int = 7,
) -> dict[str, list[dict]]:
    """Returns {scheme_name: [{load, latency, saturated}, ...]}."""
    topology = MeshTopology(width=mesh_width, cluster_width=4)
    curves: dict[str, list[dict]] = {}
    for scheme in routing_schemes(topology):
        points = []
        for load in loads:
            network = AtacNetwork(topology, routing=scheme)
            traffic = SyntheticTraffic(
                n_cores=topology.n_cores,
                load=load,
                broadcast_fraction=broadcast_fraction,
                seed=seed,
            )
            pt = run_load_point(
                network, traffic, cycles=cycles, warmup_cycles=warmup_cycles
            )
            points.append(
                {
                    "load": load,
                    "latency": round(pt.mean_latency, 1),
                    "saturated": pt.saturated,
                }
            )
        curves[scheme.name] = points
    return curves


def best_scheme_per_load(curves: dict[str, list[dict]]) -> dict[float, str]:
    """The latency-optimal scheme at each swept load (the paper's
    'optimal rthres grows with load' observation)."""
    loads = [p["load"] for p in next(iter(curves.values()))]
    best = {}
    for i, load in enumerate(loads):
        best[load] = min(curves, key=lambda name: curves[name][i]["latency"])
    return best


def main() -> None:
    curves = run()
    loads = [p["load"] for p in next(iter(curves.values()))]
    print("Figure 3: mean latency (cycles) vs offered load (flits/cycle/core)")
    header = "load    " + "  ".join(f"{name:>14s}" for name in curves)
    print(header)
    for i, load in enumerate(loads):
        row = f"{load:<7.3f} " + "  ".join(
            f"{curves[name][i]['latency']:>14.1f}" for name in curves
        )
        print(row)
    print("\nbest scheme per load:", best_scheme_per_load(curves))


if __name__ == "__main__":
    main()
