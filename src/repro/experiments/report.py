"""Plain-text (ASCII) rendering of the paper's figures.

The environment has no plotting stack, so experiment drivers render
bar charts and curves as text: good enough to eyeball every shape the
paper's figures show, and diff-able in EXPERIMENTS.md.
"""

from __future__ import annotations


def bar_chart(
    values: dict[str, float],
    title: str = "",
    width: int = 50,
    fmt: str = "{:.3f}",
) -> str:
    """Horizontal bar chart of labelled values.

    >>> print(bar_chart({"a": 1.0, "b": 2.0}, width=10))  # doctest: +SKIP
    """
    if not values:
        raise ValueError("bar_chart needs at least one value")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    vmax = max(values.values())
    if vmax <= 0:
        vmax = 1.0
    label_w = max(len(str(k)) for k in values)
    lines = [title] if title else []
    for key, value in values.items():
        n = int(round(width * value / vmax))
        lines.append(
            f"{str(key):<{label_w}} |{'#' * n:<{width}}| " + fmt.format(value)
        )
    return "\n".join(lines)


def stacked_bar_chart(
    rows: dict[str, dict[str, float]],
    components: list[str],
    symbols: str = "#@*+o=xn%&",
    width: int = 60,
    title: str = "",
) -> str:
    """Stacked horizontal bars (Figure 7 / 16 style energy wedges).

    ``rows`` maps bar label -> {component: value}; components are drawn
    in the given order with one symbol each.
    """
    if not rows:
        raise ValueError("stacked_bar_chart needs at least one row")
    if len(components) > len(symbols):
        raise ValueError(
            f"need at least {len(components)} symbols, have {len(symbols)}"
        )
    vmax = max(sum(comp.get(c, 0.0) for c in components) for comp in rows.values())
    if vmax <= 0:
        vmax = 1.0
    label_w = max(len(str(k)) for k in rows)
    lines = [title] if title else []
    for label, comp in rows.items():
        bar = ""
        for sym, c in zip(symbols, components):
            n = int(round(width * comp.get(c, 0.0) / vmax))
            bar += sym * n
        total = sum(comp.get(c, 0.0) for c in components)
        lines.append(f"{str(label):<{label_w}} |{bar:<{width}}| {total:.3f}")
    legend = "  ".join(
        f"{sym}={c}" for sym, c in zip(symbols, components)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def curve_chart(
    curves: dict[str, list[tuple[float, float]]],
    height: int = 16,
    width: int = 64,
    title: str = "",
    y_cap: float | None = None,
) -> str:
    """Multi-series scatter/curve plot (Figure 3 style).

    ``curves`` maps series name -> [(x, y), ...].  Each series is drawn
    with its own marker; ``y_cap`` clips diverging (saturated) values so
    the pre-saturation region stays readable.
    """
    if not curves:
        raise ValueError("curve_chart needs at least one curve")
    if height < 2 or width < 8:
        raise ValueError("chart too small")
    markers = "ox+*#@%&"
    points = [(x, y) for pts in curves.values() for x, y in pts]
    xs = [x for x, _ in points]
    ys = [min(y, y_cap) if y_cap else y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for marker, (name, pts) in zip(markers, curves.items()):
        for x, y in pts:
            y = min(y, y_cap) if y_cap else y
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker
    lines = [title] if title else []
    lines.append(f"y: {y_lo:.1f}..{y_hi:.1f}" + (" (capped)" if y_cap else ""))
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(f"x: {x_lo:.3g}..{x_hi:.3g}")
    legend = "  ".join(
        f"{m}={name}" for m, name in zip(markers, curves)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
