"""Shared experiment machinery: configured runs + an on-disk cache.

A single (app, architecture) simulation feeds many figures (runtime ->
Fig 4, traffic mix -> Fig 5, load -> Fig 6, energy -> Figs 7-9/17,
Table V), so runs are cached on disk keyed by their full parameter
tuple.  Delete ``.repro_cache/`` or set ``REPRO_CACHE=0`` to force
re-simulation.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path

from repro.coherence.directory import Protocol
from repro.sim.config import SystemConfig
from repro.sim.system import ManycoreSystem
from repro.sim.results import RunResult
from repro.workloads.splash import APP_PROFILES, generate_traces

#: Default experiment scale (overridable via environment).
DEFAULT_MESH_WIDTH = int(os.environ.get("REPRO_MESH_WIDTH", "16"))
DEFAULT_SCALE = float(os.environ.get("REPRO_SCALE", "0.6"))

_CACHE_DIR = Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


def cache_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "1") != "0"


def _cache_path(key: str) -> Path:
    digest = hashlib.sha256(key.encode()).hexdigest()[:24]
    return _CACHE_DIR / f"run_{digest}.pkl"


def make_config(
    network: str = "atac+",
    mesh_width: int | None = None,
    protocol: Protocol = Protocol.ACKWISE,
    hardware_sharers: int = 4,
    rthres: int = 15,
    flit_bits: int = 64,
    receive_net: str = "starnet",
) -> SystemConfig:
    """A paper-default config scaled to the requested mesh width."""
    width = mesh_width if mesh_width is not None else DEFAULT_MESH_WIDTH
    base = SystemConfig(
        network=network,
        protocol=protocol,
        hardware_sharers=hardware_sharers,
        rthres=rthres,
        flit_bits=flit_bits,
        receive_net=receive_net,
    )
    if width == 32:
        return base
    return base.scaled(mesh_width=width)


def run_app(
    app: str,
    network: str = "atac+",
    mesh_width: int | None = None,
    scale: float | None = None,
    protocol: Protocol = Protocol.ACKWISE,
    hardware_sharers: int = 4,
    rthres: int = 15,
    flit_bits: int = 64,
    receive_net: str = "starnet",
    seed: int = 42,
) -> RunResult:
    """Simulate one application on one architecture (cached)."""
    if app not in APP_PROFILES:
        raise KeyError(f"unknown app {app!r}; choose from {sorted(APP_PROFILES)}")
    scale = scale if scale is not None else DEFAULT_SCALE
    config = make_config(
        network, mesh_width, protocol, hardware_sharers, rthres,
        flit_bits, receive_net,
    )
    key = (
        f"v4|{app}|{network}|{config.mesh_width}|{scale}|{protocol.value}|"
        f"{hardware_sharers}|{rthres}|{flit_bits}|{receive_net}|{seed}"
    )
    path = _cache_path(key)
    if cache_enabled() and path.exists():
        with path.open("rb") as fh:
            return pickle.load(fh)
    system = ManycoreSystem(config)
    traces = generate_traces(
        APP_PROFILES[app],
        system.topology,
        l2_lines=config.l2_sets * config.l2_ways,
        scale=scale,
        seed=seed,
    )
    result = system.run(traces, app=app)
    if cache_enabled():
        _CACHE_DIR.mkdir(exist_ok=True)
        with path.open("wb") as fh:
            pickle.dump(result, fh)
    return result


def format_table(rows: list[dict], columns: list[str]) -> str:
    """Plain-text table used by every experiment's CLI output."""
    widths = {
        c: max(len(c), *(len(str(r.get(c, ""))) for r in rows)) if rows else len(c)
        for c in columns
    }
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append("  ".join(str(r.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)
