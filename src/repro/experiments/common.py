"""Shared experiment machinery: spec construction + batch running.

A single (app, architecture) simulation feeds many figures (runtime ->
Fig 4, traffic mix -> Fig 5, load -> Fig 6, energy -> Figs 7-9/17,
Table V), so runs are content-addressed in a versioned on-disk store
and executed through the process-parallel :class:`Runner`:

    RunSpec (typed parameters, deterministic hash)
        -> Runner (ProcessPoolExecutor fan-out, --jobs N)
        -> ResultStore (schema-versioned JSON, .repro_cache/)

Delete ``.repro_cache/`` or set ``REPRO_CACHE=0`` to force
re-simulation; set ``REPRO_JOBS`` to bound worker processes.
"""

from __future__ import annotations

import os

from repro.coherence.directory import Protocol
from repro.experiments.runner import Runner, default_jobs, run_specs
from repro.experiments.runspec import CACHE_SCHEMA_VERSION, LoadPointSpec, RunSpec
from repro.experiments.store import ResultStore, cache_enabled
from repro.sim.config import SystemConfig
from repro.sim.results import RunResult

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "LoadPointSpec",
    "Runner",
    "RunSpec",
    "cache_enabled",
    "default_jobs",
    "default_mesh_width",
    "default_scale",
    "format_table",
    "make_config",
    "run_app",
    "run_batch",
    "run_specs",
    "spec_for",
]


def default_mesh_width() -> int:
    """``REPRO_MESH_WIDTH``, read at call time (not import time) so
    tests and CLI flags set after import are honoured."""
    return int(os.environ.get("REPRO_MESH_WIDTH", "16"))


def default_scale() -> float:
    """``REPRO_SCALE``, read at call time (see :func:`default_mesh_width`)."""
    return float(os.environ.get("REPRO_SCALE", "0.6"))


def make_config(
    network: str = "atac+",
    mesh_width: int | None = None,
    protocol: Protocol = Protocol.ACKWISE,
    hardware_sharers: int = 4,
    rthres: int = 15,
    flit_bits: int = 64,
    receive_net: str = "starnet",
) -> SystemConfig:
    """A paper-default config scaled to the requested mesh width."""
    return spec_for(
        "lu_contig",  # any valid app: only architecture fields are used
        network=network,
        mesh_width=mesh_width,
        protocol=protocol,
        hardware_sharers=hardware_sharers,
        rthres=rthres,
        flit_bits=flit_bits,
        receive_net=receive_net,
    ).config()


def spec_for(
    app: str,
    network: str = "atac+",
    mesh_width: int | None = None,
    scale: float | None = None,
    protocol: Protocol = Protocol.ACKWISE,
    hardware_sharers: int = 4,
    rthres: int = 15,
    flit_bits: int = 64,
    receive_net: str = "starnet",
    seed: int = 42,
    sanitize: bool = False,
    telemetry: bool = False,
) -> RunSpec:
    """Build a :class:`RunSpec`, resolving ``None`` size knobs from the
    environment at call time."""
    return RunSpec(
        app=app,
        network=network,
        mesh_width=mesh_width if mesh_width is not None else default_mesh_width(),
        scale=scale if scale is not None else default_scale(),
        protocol=protocol,
        hardware_sharers=hardware_sharers,
        rthres=rthres,
        flit_bits=flit_bits,
        receive_net=receive_net,
        seed=seed,
        sanitize=sanitize,
        telemetry=telemetry,
    )


def run_batch(specs, jobs: int | None = None, progress: bool = True) -> list:
    """Execute a batch of specs through the shared runner.

    Returns results aligned with ``specs``; duplicates execute once.
    """
    return run_specs(specs, jobs=jobs, progress=progress)


def run_app(
    app: str,
    network: str = "atac+",
    mesh_width: int | None = None,
    scale: float | None = None,
    protocol: Protocol = Protocol.ACKWISE,
    hardware_sharers: int = 4,
    rthres: int = 15,
    flit_bits: int = 64,
    receive_net: str = "starnet",
    seed: int = 42,
) -> RunResult:
    """Simulate one application on one architecture (store-cached)."""
    spec = spec_for(
        app, network, mesh_width, scale, protocol,
        hardware_sharers, rthres, flit_bits, receive_net, seed,
    )
    return Runner(jobs=1, progress=False).run_one(spec)


def format_table(rows: list[dict], columns: list[str]) -> str:
    """Plain-text table used by every experiment's CLI output."""
    widths = {
        c: max(len(c), *(len(str(r.get(c, ""))) for r in rows)) if rows else len(c)
        for c in columns
    }
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append("  ".join(str(r.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)
