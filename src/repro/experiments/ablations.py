"""Ablation studies for the design choices DESIGN.md section 7 flags.

These go beyond the paper's figures:

* **Adaptive vs oblivious distance routing** -- the paper notes the
  performance-optimal policy is adaptive but picks a fixed rthres "for
  simplicity reasons"; this quantifies the gap on the Figure 3 traffic.
* **Sequence numbers on/off** -- how often the Section IV-C1 reorder
  machinery actually fires under distance routing, and what the
  buffering costs in runtime.
* **Analytic vs simulated latency** -- the accuracy envelope of the
  closed-form model across loads (it is exact at zero load and
  diverges as queueing builds).
"""

from __future__ import annotations

from repro.experiments.common import LoadPointSpec, run_batch, spec_for
from repro.network.analytic import AnalyticModel
from repro.network.atac import AtacNetwork
from repro.network.routing import AdaptiveDistanceRouting, DistanceRouting
from repro.network.topology import MeshTopology
from repro.workloads.synthetic import SyntheticTraffic, run_load_point


def run_adaptive_routing(
    mesh_width: int = 32,
    loads: tuple[float, ...] = (0.02, 0.06, 0.10, 0.16),
    cycles: int = 1200,
    warmup_cycles: int = 300,
    seed: int = 7,
) -> list[dict]:
    """Latency of the adaptive controller vs fixed-rthres policies."""
    topology = MeshTopology(width=mesh_width, cluster_width=4)
    rows = []
    for load in loads:
        row: dict = {"load": load}
        for rthres in (5, 15, 25):
            net = AtacNetwork(topology, routing=DistanceRouting(rthres))
            traffic = SyntheticTraffic(topology.n_cores, load=load, seed=seed)
            pt = run_load_point(net, traffic, cycles=cycles,
                                warmup_cycles=warmup_cycles)
            row[f"Distance-{rthres}"] = round(pt.mean_latency, 1)
        adaptive = AdaptiveDistanceRouting(rthres_min=5, rthres_max=25)
        net = AtacNetwork(topology, routing=adaptive)
        traffic = SyntheticTraffic(topology.n_cores, load=load, seed=seed)
        # feed hub backlog into the controller between packets
        packets = traffic.generate(cycles)
        pending_reset = True
        for pkt in packets:
            if pending_reset and pkt.time >= warmup_cycles:
                net.reset_stats()
                pending_reset = False
            net.send(pkt)
            cluster = topology.cluster_of(pkt.src)
            backlog = max(0, net.onet_links[cluster].free_at - pkt.time)
            adaptive.observe_backlog(backlog)
        row["Adaptive"] = round(net.stats.mean_latency, 1)
        row["adaptive_final_rthres"] = adaptive.rthres
        rows.append(row)
    return rows


def adaptive_gap(rows: list[dict]) -> float:
    """Mean latency penalty of the *best fixed* policy vs adaptive.

    Positive values = the adaptive controller wins overall; near zero
    justifies the paper's oblivious choice.
    """
    penalties = []
    for row in rows:
        fixed = min(v for k, v in row.items() if k.startswith("Distance-"))
        penalties.append((fixed - row["Adaptive"]) / fixed)
    return sum(penalties) / len(penalties)


def run_sequencing_cost(
    apps: tuple[str, ...] = ("barnes", "dynamic_graph"),
    mesh_width: int | None = None,
    scale: float | None = None,
) -> list[dict]:
    """Runtime and reorder-event counts with sequencing on vs off.

    With sequencing off on the hybrid network, reordered invalidations
    are processed immediately (a real machine would risk incoherence;
    the simulator tracks states only, so it measures the *timing* cost
    of the buffering the mechanism adds)."""
    specs = [
        spec_for(app, network="atac+", mesh_width=mesh_width, scale=scale)
        for app in apps
    ]
    rows = []
    for app, on in zip(apps, run_batch(specs)):
        rows.append(
            {
                "app": app,
                "cycles": on.completion_cycles,
                "bcasts_buffered": on.cache_counters.bcast_invs_buffered,
                "bcasts_stale_dropped": on.cache_counters.bcast_invs_stale_dropped,
                "unicasts_held_early": on.cache_counters.unicasts_buffered_early,
            }
        )
    return rows


def run_analytic_accuracy(
    mesh_width: int = 16,
    loads: tuple[float, ...] = (0.01, 0.05, 0.10, 0.20),
    cycles: int = 1200,
    warmup_cycles: int = 300,
) -> list[dict]:
    """Simulated mean latency vs the zero-load analytic prediction."""
    topology = MeshTopology(width=mesh_width, cluster_width=4)
    model = AnalyticModel(topology)
    # analytic mean over uniform pairs at the control-message size
    import random

    rng = random.Random(1)
    n = topology.n_cores
    routing = DistanceRouting(15)
    samples = []
    for _ in range(3000):
        src = rng.randrange(n)
        dst = rng.randrange(n - 1)
        if dst >= src:
            dst += 1
        samples.append(model.atac_unicast_latency(routing, src, dst, 88))
    analytic_mean = sum(samples) / len(samples)
    specs = [
        LoadPointSpec(
            routing="distance-15",
            load=load,
            mesh_width=mesh_width,
            broadcast_fraction=0.0,
            cycles=cycles,
            warmup_cycles=warmup_cycles,
            seed=5,
        )
        for load in loads
    ]
    rows = []
    for load, pt in zip(loads, run_batch(specs)):
        rows.append(
            {
                "load": load,
                "simulated": round(pt.mean_latency, 1),
                "analytic_zero_load": round(analytic_mean, 1),
                "queueing_excess": round(pt.mean_latency - analytic_mean, 1),
            }
        )
    return rows


def main() -> None:
    from repro.experiments.common import format_table

    print("Ablation 1: adaptive vs fixed distance routing")
    rows = run_adaptive_routing(mesh_width=16)
    print(format_table(rows, list(rows[0].keys())))
    print(f"mean gap (fixed-best vs adaptive): {adaptive_gap(rows):+.1%}")

    print("\nAblation 2: sequence-number machinery activity")
    rows2 = run_sequencing_cost()
    print(format_table(rows2, list(rows2[0].keys())))

    print("\nAblation 3: analytic vs simulated latency")
    rows3 = run_analytic_accuracy()
    print(format_table(rows3, list(rows3[0].keys())))


if __name__ == "__main__":
    main()
