"""Perf-regression harness: `repro bench`.

The simulator's hot paths (route caching, batched broadcast delivery,
allocation-free event dispatch -- see DESIGN.md section 9) are guarded
by two complementary nets:

* **correctness** -- ``tests/integration/test_fastpath_equivalence.py``
  pins simulated results bit-for-bit;
* **speed** -- this module, which times a fixed set of representative
  runs and records them under ``benchmarks/perf/BENCH_<rev>.json`` so
  successive revisions can be compared.

Each record holds, per benchmark run: best-of-N wall-clock for the
simulation proper, discrete events processed, events/second, plus the
process peak RSS.  ``--check`` compares against the most recent record
from a *different* revision and fails (exit 1) when any shared
benchmark slowed down by more than ``--max-regression`` (default 1.5x)
-- loose enough to ride out machine noise, tight enough to catch a
hot-path regression.

Timings are machine-dependent; records are only meaningfully compared
against records produced on the same machine.  The CI perf job is
therefore non-blocking.

Usage::

    python -m repro bench                    # record + compare
    python -m repro bench --check            # exit 1 on >1.5x slowdown
    python -m repro bench --small --reps 1   # quick smoke (w8, scale .2)
"""

from __future__ import annotations

import argparse
import json
import resource
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

#: The representative (app, network) pairs: one broadcast-heavy ATAC+
#: run, one broadcast-tree mesh run, one pure-unicast mesh run.
BENCH_APPS = (
    ("barnes", "atac+"),
    ("fmm", "emesh-bcast"),
    ("dynamic_graph", "emesh-pure"),
)

#: Default scale: the benchmark-suite operating point (256 cores).
FULL = {"mesh_width": 16, "scale": 0.6}
#: ``--small``: a seconds-long smoke configuration for CI and tests.
SMALL = {"mesh_width": 8, "scale": 0.2}


def bench_specs(small: bool = False):
    """The benchmark :class:`~repro.experiments.runspec.RunSpec` list."""
    from repro.experiments.runspec import RunSpec

    size = SMALL if small else FULL
    return [RunSpec(app=app, network=net, **size) for app, net in BENCH_APPS]


def measure_spec(spec, reps: int = 3) -> dict:
    """Run ``spec`` ``reps`` times; report the best simulation wall-clock.

    The simulation is driven directly (not through ``spec.execute()``)
    so the event count can be read off the queue afterwards; trace
    generation is timed separately since it is deterministic work that
    does not scale with simulator throughput.
    """
    from repro.sim.system import ManycoreSystem
    from repro.workloads.splash import APP_PROFILES, generate_traces

    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    config = spec.config()
    best_sim = float("inf")
    best_gen = float("inf")
    events = 0
    cycles = 0
    for _ in range(reps):
        # sanitize/telemetry off explicitly: a stray REPRO_SANITIZE=1 or
        # REPRO_TELEMETRY=1 in the environment must not skew the perf
        # baseline it checks against.
        system = ManycoreSystem(config, sanitize=False, telemetry=False)
        t0 = time.perf_counter()
        traces = generate_traces(
            APP_PROFILES[spec.app],
            system.topology,
            l2_lines=config.l2_sets * config.l2_ways,
            scale=spec.scale,
            seed=spec.seed,
        )
        t1 = time.perf_counter()
        result = system.run(traces, app=spec.app)
        t2 = time.perf_counter()
        best_gen = min(best_gen, t1 - t0)
        best_sim = min(best_sim, t2 - t1)
        events = system.eventq.events_processed
        cycles = result.completion_cycles
    return {
        "wall_s": round(best_gen + best_sim, 4),
        "sim_s": round(best_sim, 4),
        "tracegen_s": round(best_gen, 4),
        "events": events,
        "events_per_sec": round(events / best_sim) if best_sim > 0 else 0,
        "completion_cycles": cycles,
    }


def repo_root() -> Path | None:
    """The enclosing git work tree's root, or ``None`` outside one."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, timeout=10,
        )
    except OSError:
        return None
    root = out.stdout.strip()
    return Path(root) if out.returncode == 0 and root else None


def write_record(record: dict, rev: str, bench_dir: Path,
                 root_dir: Path | None) -> list[Path]:
    """Persist ``record`` as ``BENCH_<rev>.json``; returns paths written.

    Two copies: the append-only history under ``bench_dir``
    (``benchmarks/perf/``) that ``--check`` compares against, and -- per
    the repo's perf-trajectory convention -- a top-level copy at
    ``root_dir`` so the latest numbers for a revision sit next to
    ROADMAP.md.  ``root_dir`` of ``None`` (not in a git work tree)
    skips the top-level copy.
    """
    blob = json.dumps(record, indent=2, sort_keys=True) + "\n"
    written = []
    bench_dir.mkdir(parents=True, exist_ok=True)
    out = bench_dir / f"BENCH_{rev}.json"
    out.write_text(blob)
    written.append(out)
    if root_dir is not None:
        root_copy = Path(root_dir) / f"BENCH_{rev}.json"
        root_copy.write_text(blob)
        written.append(root_copy)
    return written


def current_rev() -> str:
    """Short git revision of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except OSError:
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def peak_rss_kb() -> int:
    """Process peak resident set size in KiB (Linux ``ru_maxrss`` unit)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def make_record(rev: str, reps: int, small: bool) -> dict:
    """Time every benchmark spec and bundle the results."""
    results = {}
    for spec in bench_specs(small):
        label = spec.label()
        print(f"  {label} ...", end="", flush=True, file=sys.stderr)
        results[label] = measure_spec(spec, reps=reps)
        print(
            f" {results[label]['sim_s']:.2f}s sim, "
            f"{results[label]['events_per_sec']:,} events/s",
            file=sys.stderr,
        )
    return {
        "rev": rev,
        "created_at": datetime.now(timezone.utc).isoformat(),
        "reps": reps,
        "small": small,
        "python": sys.version.split()[0],
        "peak_rss_kb": peak_rss_kb(),
        "results": results,
    }


def load_records(bench_dir: Path) -> list[dict]:
    """All ``BENCH_*.json`` records, oldest first by ``created_at``."""
    records = []
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        try:
            rec = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(rec, dict) and "results" in rec and "created_at" in rec:
            records.append(rec)
    records.sort(key=lambda r: r["created_at"])
    return records


def previous_record(records: list[dict], rev: str, small: bool) -> dict | None:
    """Most recent record from a different revision at the same size."""
    for rec in reversed(records):
        if rec.get("rev") != rev and bool(rec.get("small")) == small:
            return rec
    return None


def compare(current: dict, baseline: dict, max_regression: float):
    """Per-benchmark wall-clock ratios vs the baseline record.

    Returns ``(lines, regressions)`` -- human-readable comparison lines
    and the subset of benchmark labels slower than ``max_regression``x.
    """
    lines = []
    regressions = []
    base_results = baseline["results"]
    for label, cur in current["results"].items():
        base = base_results.get(label)
        if base is None:
            lines.append(f"  {label}: no baseline entry")
            continue
        ratio = cur["wall_s"] / base["wall_s"] if base["wall_s"] > 0 else 1.0
        verdict = "ok"
        if ratio > max_regression:
            verdict = "REGRESSION"
            regressions.append(label)
        elif ratio < 1 / max_regression:
            verdict = "improved"
        lines.append(
            f"  {label}: {base['wall_s']:.2f}s -> {cur['wall_s']:.2f}s "
            f"({ratio:.2f}x, {verdict})"
        )
    return lines, regressions


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Record and compare simulator wall-clock benchmarks.",
    )
    parser.add_argument(
        "--reps", type=int, default=3,
        help="repetitions per benchmark; best wall-clock wins (default 3)",
    )
    parser.add_argument(
        "--rev", default=None,
        help="revision tag for the record (default: git rev-parse --short)",
    )
    parser.add_argument(
        "--out-dir", default="benchmarks/perf", metavar="DIR",
        help="directory for BENCH_<rev>.json records",
    )
    parser.add_argument(
        "--small", action="store_true",
        help="smoke-test scale (8x8 mesh, scale 0.2) instead of 16x16/0.6",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 if any benchmark regressed past --max-regression",
    )
    parser.add_argument(
        "--max-regression", type=float, default=1.5, metavar="R",
        help="slowdown ratio treated as a regression with --check "
             "(default 1.5)",
    )
    parser.add_argument(
        "--no-write", action="store_true",
        help="measure and compare without writing a record",
    )
    parser.add_argument(
        "--root-dir", default=None, metavar="DIR",
        help="where the top-level BENCH_<rev>.json copy goes (default: "
             "the git work-tree root; 'none' disables the copy)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.reps < 1:
        print("--reps must be >= 1", file=sys.stderr)
        return 2
    if args.max_regression <= 1.0:
        print("--max-regression must be > 1.0", file=sys.stderr)
        return 2
    rev = args.rev or current_rev()
    bench_dir = Path(args.out_dir)
    baseline = previous_record(load_records(bench_dir), rev, args.small)

    size = "small" if args.small else "full"
    print(f"benchmarking rev {rev} ({size}, best of {args.reps}):",
          file=sys.stderr)
    record = make_record(rev, reps=args.reps, small=args.small)

    if not args.no_write:
        if args.root_dir == "none":
            root_dir = None
        elif args.root_dir is not None:
            root_dir = Path(args.root_dir)
        else:
            root_dir = repo_root()
        for out in write_record(record, rev, bench_dir, root_dir):
            print(f"wrote {out}")

    if baseline is None:
        print("no prior record from another revision; nothing to compare")
        return 0
    print(f"vs rev {baseline['rev']} ({baseline['created_at']}):")
    lines, regressions = compare(record, baseline, args.max_regression)
    print("\n".join(lines))
    if regressions and args.check:
        print(
            f"FAIL: {len(regressions)} benchmark(s) regressed past "
            f"{args.max_regression}x: {', '.join(regressions)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    # Runnable standalone (``python src/repro/experiments/bench.py``) so
    # the harness can be pointed at an older checkout via PYTHONPATH to
    # produce that revision's baseline record.
    raise SystemExit(main())
