"""Figures 7-9: energy breakdowns, EDP, waveguide-loss sensitivity.

* **Figure 7**: network + cache energy breakdown averaged across the 8
  applications, for ATAC+(Ideal)/ATAC+/ATAC+(RingTuned)/ATAC+(Cons)
  and the two electrical meshes, normalized to ATAC+(Ideal).
  Reproduced shapes: laser dominates Cons; ring tuning dominates
  RingTuned and Cons; ATAC+ ~= ATAC+(Ideal); caches dominate the
  efficient configurations.
* **Figure 8**: per-application energy-delay product normalized to
  ATAC+(Ideal).  Headline: EMesh-BCast ~1.8x, EMesh-Pure ~4.8x ATAC+.
* **Figure 9**: total energy vs waveguide loss (0.2-4 dB/cm),
  normalized to EMesh-BCast; ATAC+ tolerates moderate losses before
  losing its energy advantage.

The tech scenarios are post-processing (per-event energy tables applied
to the same event counters), so each figure simulates only its unique
(app, network) grid -- built as one spec batch and run in parallel.
"""

from __future__ import annotations

from repro.energy.accounting import ALL_KEYS, EnergyModel
from repro.experiments.common import format_table, make_config, run_batch, spec_for
from repro.network.registry import experiment_axis, get_network
from repro.tech.photonics import PhotonicParams
from repro.tech.scenarios import (
    ALL_SCENARIOS,
    SCENARIO_ATACP,
    SCENARIO_IDEAL,
    TechScenario,
)
from repro.workloads.splash import APP_ORDER

#: architecture columns of Figures 7/8: the four ATAC+ flavors + the
#: electrical meshes of the runtime-comparison axis.
RUNTIME_AXIS = experiment_axis("runtime")
MESHES = tuple(n for n in RUNTIME_AXIS if not get_network(n).optical)
#: the Figure 9 ATAC+-vs-mesh pair.
EDP_AXIS = experiment_axis("edp")


def _energy_model(network: str, mesh_width: int | None,
                  photonics: PhotonicParams | None = None) -> EnergyModel:
    return EnergyModel(make_config(network, mesh_width), photonics=photonics)


def _grid(apps, networks, mesh_width, scale, jobs):
    """Run the (app, network) grid; returns {(app, net): RunResult}."""
    keys = [(app, net) for app in apps for net in networks]
    specs = [
        spec_for(app, network=net, mesh_width=mesh_width, scale=scale)
        for app, net in keys
    ]
    return dict(zip(keys, run_batch(specs, jobs=jobs)))


def run_fig7(
    apps: tuple[str, ...] = APP_ORDER,
    mesh_width: int | None = None,
    scale: float | None = None,
    jobs: int | None = None,
) -> dict[str, dict[str, float]]:
    """Average per-component energy by architecture, normalized to
    ATAC+(Ideal)'s total; keys follow Figure 7's wedges."""
    results = _grid(apps, RUNTIME_AXIS, mesh_width, scale, jobs)
    totals: dict[str, dict[str, float]] = {}
    n = len(apps)
    atac_model = _energy_model("atac+", mesh_width)
    for scenario in ALL_SCENARIOS:
        acc = {k: 0.0 for k in ALL_KEYS}
        for app in apps:
            b = atac_model.evaluate(results[app, "atac+"], scenario)
            for k in ALL_KEYS:
                acc[k] += b[k] / n
        totals[scenario.name] = acc
    for net in MESHES:
        model = _energy_model(net, mesh_width)
        acc = {k: 0.0 for k in ALL_KEYS}
        name = None
        for app in apps:
            b = model.evaluate(results[app, net])
            name = b.network
            for k in ALL_KEYS:
                acc[k] += b[k] / n
        totals[name] = acc
    # normalize to ATAC+(Ideal) chip (network+cache) energy
    chip_keys = [k for k in ALL_KEYS if k not in ("core_dd", "core_ndd", "dram")]
    ref = sum(totals["ATAC+(Ideal)"][k] for k in chip_keys)
    return {
        arch: {k: comp[k] / ref for k in chip_keys}
        for arch, comp in totals.items()
    }


def run_fig8(
    apps: tuple[str, ...] = APP_ORDER,
    mesh_width: int | None = None,
    scale: float | None = None,
    jobs: int | None = None,
) -> list[dict]:
    """Per-app EDP normalized to ATAC+(Ideal); plus the average row."""
    results = _grid(apps, RUNTIME_AXIS, mesh_width, scale, jobs)
    atac_model = _energy_model("atac+", mesh_width)
    mesh_models = {net: _energy_model(net, mesh_width) for net in MESHES}
    rows = []
    sums: dict[str, float] = {}
    for app in apps:
        res = results[app, "atac+"]
        ref = atac_model.evaluate(res, SCENARIO_IDEAL).edp()
        row = {"app": app}
        for scenario in ALL_SCENARIOS:
            row[scenario.name] = round(
                atac_model.evaluate(res, scenario).edp() / ref, 3
            )
        for net in MESHES:
            b = mesh_models[net].evaluate(results[app, net])
            row[b.network] = round(b.edp() / ref, 3)
        rows.append(row)
        for k, v in row.items():
            if k != "app":
                sums[k] = sums.get(k, 0.0) + v
    avg = {"app": "average"}
    avg.update({k: round(v / len(apps), 3) for k, v in sums.items()})
    rows.append(avg)
    return rows


def run_fig9(
    apps: tuple[str, ...] = APP_ORDER,
    losses_db_per_cm: tuple[float, ...] = (0.2, 1.0, 2.0, 3.0, 4.0),
    mesh_width: int | None = None,
    scale: float | None = None,
    jobs: int | None = None,
) -> list[dict]:
    """Chip energy vs waveguide loss, normalized to EMesh-BCast.

    Per app and averaged; ATAC+ (power-gated, athermal) under each loss.
    """
    results = _grid(apps, EDP_AXIS, mesh_width, scale, jobs)
    rows = []
    bcast_model = _energy_model("emesh-bcast", mesh_width)
    for app in apps:
        ref = bcast_model.evaluate(results[app, "emesh-bcast"]).chip_energy_j
        row = {"app": app}
        for loss in losses_db_per_cm:
            photonics = PhotonicParams(waveguide_loss_db_per_cm=loss)
            model = _energy_model("atac+", mesh_width, photonics=photonics)
            b = model.evaluate(results[app, "atac+"], SCENARIO_ATACP)
            row[f"loss{loss}"] = round(b.chip_energy_j / ref, 3)
        rows.append(row)
    avg = {"app": "average"}
    for loss in losses_db_per_cm:
        key = f"loss{loss}"
        avg[key] = round(sum(r[key] for r in rows) / len(rows), 3)
    rows.append(avg)
    return rows


def crossover_loss(avg_row: dict) -> float | None:
    """First swept loss at which ATAC+'s energy exceeds EMesh-BCast."""
    for key in sorted(
        (k for k in avg_row if k.startswith("loss")),
        key=lambda k: float(k[4:]),
    ):
        if avg_row[key] > 1.0:
            return float(key[4:])
    return None


def main() -> None:
    print("Figure 7: energy by component, normalized to ATAC+(Ideal) total")
    fig7 = run_fig7()
    keys = sorted({k for comp in fig7.values() for k in comp})
    for arch, comp in fig7.items():
        total = sum(comp.values())
        wedges = ", ".join(f"{k}={v:.3f}" for k, v in comp.items() if v > 1e-3)
        print(f"  {arch:18s} total={total:.2f}  {wedges}")
    print("\nFigure 8: normalized energy-delay product")
    rows = run_fig8()
    print(format_table(rows, list(rows[0].keys())))
    print("\nFigure 9: energy vs waveguide loss (normalized to EMesh-BCast)")
    rows9 = run_fig9()
    print(format_table(rows9, list(rows9[0].keys())))
    print("crossover at:", crossover_loss(rows9[-1]), "dB/cm")


if __name__ == "__main__":
    main()
