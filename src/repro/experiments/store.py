"""Versioned on-disk result store.

Replaces the old bare-``pickle`` cache: every entry is a JSON document
with explicit schema metadata next to the payload::

    {
      "schema_version": 5,
      "repro_version": "1.1.0",
      "kind": "run",
      "spec": { ...spec fields... },
      "elapsed_s": 12.4,
      "payload": { ...result fields... }
    }

Entries are addressed by the spec's :meth:`content_hash`, which already
mixes in ``CACHE_SCHEMA_VERSION`` and the package version -- so entries
written by incompatible code simply miss.  The metadata check on load
is a second, defensive layer: a corrupt or hand-edited file degrades to
a cache miss, never to a mismatched dataclass or an exception.

Writes are atomic (temp file + ``os.replace``) so parallel runner
workers and concurrent pytest sessions never observe torn entries.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

from repro import __version__
from repro.experiments.runspec import CACHE_SCHEMA_VERSION


def cache_enabled() -> bool:
    """Honour ``REPRO_CACHE=0`` (checked at call time, not import time)."""
    return os.environ.get("REPRO_CACHE", "1") != "0"


def default_store_dir() -> Path:
    """The cache directory, read from the environment at call time."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


class ResultStore:
    """Content-addressed store of executed spec results."""

    def __init__(self, root: Path | str | None = None) -> None:
        self._root = Path(root) if root is not None else None

    @property
    def root(self) -> Path:
        """Resolved lazily so env overrides apply per call, not per import."""
        return self._root if self._root is not None else default_store_dir()

    def path_for(self, spec) -> Path:
        return self.root / f"{spec.kind}_{spec.content_hash()}.json"

    # ------------------------------------------------------------------
    def load(self, spec) -> Any | None:
        """The stored result for ``spec``, or ``None`` on any miss.

        Schema or version mismatches, unreadable JSON and incomplete
        payloads all count as misses.
        """
        path = self.path_for(spec)
        try:
            with path.open("r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(doc, dict):
            return None
        if doc.get("schema_version") != CACHE_SCHEMA_VERSION:
            return None
        if doc.get("repro_version") != __version__:
            return None
        if doc.get("kind") != spec.kind:
            return None
        try:
            return spec.result_from_payload(doc["payload"])
        except (KeyError, TypeError, ValueError):
            return None

    def save(self, spec, result, elapsed_s: float | None = None) -> Path:
        """Persist ``result`` under ``spec``'s content hash, atomically."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "schema_version": CACHE_SCHEMA_VERSION,
            "repro_version": __version__,
            "kind": spec.kind,
            "spec": spec.to_dict(),
            "elapsed_s": elapsed_s,
            "payload": spec.result_to_payload(result),
        }
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------
    def entries(self) -> list[Path]:
        """All store entries on disk (legacy ``.pkl`` blobs excluded)."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*_*.json"))
