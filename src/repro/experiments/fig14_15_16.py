"""Figures 14-16: cache coherence protocol studies.

* **Figure 14**: EDP of ACKwise_4 vs Dir_4B on ATAC+ and EMesh-BCast.
  Dir_kB's 1024-acknowledgement storms hurt broadcast-heavy apps, and
  hurt more on the electrical mesh.
* **Figure 15**: ATAC+ completion time as ACKwise's hardware sharers k
  sweeps {4, 8, 16, 32, 1024}: little, non-monotonic variation (unicast
  invalidations congest the ENet near the sender; broadcasts congest
  the receive hubs -- the two effects trade off).
* **Figure 16**: ATAC+ energy vs k: grows ~2x from 4 to 1024, driven by
  the directory cache whose entries scale with k.  ACKwise_4 delivers
  full-map-like performance at a fraction of the cost.
"""

from __future__ import annotations

from repro.coherence.directory import Protocol
from repro.energy.accounting import ALL_KEYS, EnergyModel
from repro.experiments.common import format_table, make_config, run_batch, spec_for
from repro.network.registry import experiment_axis, get_network
from repro.workloads.splash import APP_ORDER

#: Figure 14's six applications.
FIG14_APPS = ("radix", "barnes", "fmm", "ocean_contig", "lu_contig", "lu_non_contig")
#: Figure 15/16's five sharer counts.
SHARER_SWEEP = (4, 8, 16, 32, 1024)
FIG15_APPS = ("radix", "barnes", "fmm", "ocean_contig", "lu_contig")


def run_fig14(
    apps: tuple[str, ...] = FIG14_APPS,
    mesh_width: int | None = None,
    scale: float | None = None,
    jobs: int | None = None,
) -> list[dict]:
    """EDP of {ATAC+, EMesh-BCast} x {ACKwise4, Dir4B}, normalized to
    ATAC+/ACKwise4 per app."""
    cells = [
        (net, proto)
        for net in experiment_axis("edp")
        for proto in (Protocol.ACKWISE, Protocol.DIRKB)
    ]
    keys = [(app, net, proto) for app in apps for net, proto in cells]
    specs = [
        spec_for(app, network=net, protocol=proto,
                 mesh_width=mesh_width, scale=scale)
        for app, net, proto in keys
    ]
    results = dict(zip(keys, run_batch(specs, jobs=jobs)))
    rows = []
    for app in apps:
        row = {"app": app}
        ref = None
        for net, proto in cells:
            model = EnergyModel(make_config(net, mesh_width, protocol=proto))
            edp = model.evaluate(results[app, net, proto]).edp()
            if ref is None:
                ref = edp
            label = get_network(net).display_name + (
                "/ACKwise4" if proto is Protocol.ACKWISE else "/Dir4B"
            )
            row[label] = round(edp / ref, 3)
        rows.append(row)
    return rows


def run_fig15(
    apps: tuple[str, ...] = FIG15_APPS,
    sharers: tuple[int, ...] = SHARER_SWEEP,
    mesh_width: int | None = None,
    scale: float | None = None,
    jobs: int | None = None,
) -> list[dict]:
    """ATAC+ completion time vs ACKwise hardware sharers, normalized to k=4."""
    keys = [(app, k) for app in apps for k in (4, *sharers)]
    specs = [
        spec_for(app, network="atac+", hardware_sharers=k,
                 mesh_width=mesh_width, scale=scale)
        for app, k in keys
    ]
    results = dict(zip(keys, run_batch(specs, jobs=jobs)))
    rows = []
    for app in apps:
        ref = results[app, 4].completion_cycles
        row = {"app": app}
        for k in sharers:
            row[f"k{k}"] = round(results[app, k].completion_cycles / ref, 4)
        rows.append(row)
    return rows


def run_fig16(
    apps: tuple[str, ...] = FIG15_APPS,
    sharers: tuple[int, ...] = SHARER_SWEEP,
    mesh_width: int | None = None,
    scale: float | None = None,
    jobs: int | None = None,
) -> list[dict]:
    """ATAC+ chip energy breakdown vs k, averaged over apps and
    normalized to k=4 (Figure 16's 2x growth, driven by the directory)."""
    chip_keys = [k for k in ALL_KEYS if k not in ("core_dd", "core_ndd", "dram")]
    keys = [(app, k) for app in apps for k in sharers]
    specs = [
        spec_for(app, network="atac+", hardware_sharers=k,
                 mesh_width=mesh_width, scale=scale)
        for app, k in keys
    ]
    results = dict(zip(keys, run_batch(specs, jobs=jobs)))
    per_k: dict[int, dict[str, float]] = {}
    for k in sharers:
        model = EnergyModel(make_config("atac+", mesh_width, hardware_sharers=k))
        acc = {key: 0.0 for key in chip_keys}
        for app in apps:
            b = model.evaluate(results[app, k])
            for key in chip_keys:
                acc[key] += b[key] / len(apps)
        per_k[k] = acc
    ref_total = sum(per_k[sharers[0]].values())
    rows = []
    for k in sharers:
        row = {"k": k, "total_norm": round(sum(per_k[k].values()) / ref_total, 3)}
        row["directory_norm"] = round(per_k[k]["directory"] / ref_total, 3)
        rows.append(row)
    return rows


def main() -> None:
    print("Figure 14: EDP, protocols x networks (normalized per app)")
    rows = run_fig14()
    print(format_table(rows, list(rows[0].keys())))
    print("\nFigure 15: ATAC+ completion time vs ACKwise sharers (norm. to k=4)")
    rows15 = run_fig15()
    print(format_table(rows15, list(rows15[0].keys())))
    print("\nFigure 16: ATAC+ energy vs sharers (norm. to k=4 total)")
    rows16 = run_fig16()
    print(format_table(rows16, list(rows16[0].keys())))


if __name__ == "__main__":
    main()
