"""Experiment drivers: one module per paper table/figure.

Every module exposes ``run(...) -> dict`` returning the figure's rows /
series, and is exercised by a matching module under ``benchmarks/``.
Scale knobs (shared via :mod:`repro.experiments.common`):

* ``REPRO_MESH_WIDTH`` -- mesh edge (32 = the paper's 1024 cores;
  default 16 = 256 cores so the whole suite completes in minutes),
* ``REPRO_SCALE``      -- trace-length multiplier (default 0.6),
* ``REPRO_CACHE``      -- set to ``0`` to disable the on-disk run cache.

See DESIGN.md section 5 for the experiment index and EXPERIMENTS.md for
recorded paper-vs-measured numbers.
"""

from repro.experiments import common

__all__ = ["common"]
