"""Figures 12-13: the ATAC -> ATAC+ architectural ablations.

* **Figure 12**: replacing the broadcast BNet with the point-to-point
  StarNet (cluster routing held fixed) cuts total energy ~8 % on
  average, more for unicast-heavy applications (radix, ocean_contig)
  than broadcast-heavy ones (barnes).
* **Figure 13**: replacing cluster routing with distance-based routing;
  Distance-15 gives the lowest EDP (~10 % below Cluster), again with
  larger gains for unicast-heavy applications.
"""

from __future__ import annotations

from repro.energy.accounting import EnergyModel
from repro.experiments.common import format_table, make_config, run_batch, spec_for
from repro.workloads.splash import APP_ORDER

#: the four applications Figure 13 sweeps
FIG13_APPS = ("radix", "barnes", "ocean_contig", "ocean_non_contig")


def run_fig12(
    apps: tuple[str, ...] = APP_ORDER,
    mesh_width: int | None = None,
    scale: float | None = None,
    jobs: int | None = None,
) -> list[dict]:
    """Chip energy with BNet vs StarNet under *cluster* routing.

    The experiment isolates the receive-network change exactly as the
    paper does ("conducted with a cluster-based routing protocol in
    order to quantify just the reduction in energy").
    """
    keys = [(app, rn) for app in apps for rn in ("bnet", "starnet")]
    specs = [
        spec_for(app, network="atac+", rthres=0, receive_net=rn,
                 mesh_width=mesh_width, scale=scale)
        for app, rn in keys
    ]
    results = dict(zip(keys, run_batch(specs, jobs=jobs)))
    rows = []
    for app in apps:
        row = {"app": app}
        energies = {}
        for receive_net in ("bnet", "starnet"):
            model = EnergyModel(
                make_config("atac+", mesh_width, receive_net=receive_net)
            )
            energies[receive_net] = model.evaluate(
                results[app, receive_net]
            ).chip_energy_j
        row["bnet_j"] = energies["bnet"]
        row["starnet_j"] = energies["starnet"]
        row["starnet_norm"] = round(energies["starnet"] / energies["bnet"], 4)
        rows.append(row)
    avg = sum(r["starnet_norm"] for r in rows) / len(rows)
    rows.append({"app": "average", "starnet_norm": round(avg, 4)})
    return rows


def run_fig13(
    apps: tuple[str, ...] = FIG13_APPS,
    thresholds: tuple[int, ...] = (5, 10, 15, 20, 25),
    mesh_width: int | None = None,
    scale: float | None = None,
    jobs: int | None = None,
) -> list[dict]:
    """EDP of distance-based routing vs the Cluster baseline.

    ``rthres=0`` degenerates to cluster routing (every inter-cluster
    unicast over the ONet) and serves as the normalization baseline.
    """
    keys = [(app, t) for app in apps for t in (0, *thresholds)]
    specs = [
        spec_for(app, network="atac+", rthres=t,
                 mesh_width=mesh_width, scale=scale)
        for app, t in keys
    ]
    results = dict(zip(keys, run_batch(specs, jobs=jobs)))
    rows = []
    model = EnergyModel(make_config("atac+", mesh_width))
    for app in apps:
        ref = model.evaluate(results[app, 0]).edp()
        row = {"app": app, "Cluster": 1.0}
        for t in thresholds:
            row[f"Distance-{t}"] = round(
                model.evaluate(results[app, t]).edp() / ref, 4
            )
        rows.append(row)
    avg = {"app": "average", "Cluster": 1.0}
    for t in thresholds:
        key = f"Distance-{t}"
        avg[key] = round(sum(r[key] for r in rows) / len(rows), 4)
    rows.append(avg)
    return rows


def best_threshold(rows: list[dict]) -> str:
    """The EDP-optimal scheme on the average row (paper: Distance-15)."""
    avg = rows[-1]
    candidates = {k: v for k, v in avg.items() if k != "app"}
    return min(candidates, key=candidates.get)


def main() -> None:
    print("Figure 12: BNet -> StarNet energy (cluster routing)")
    rows = run_fig12()
    print(format_table(rows, ["app", "starnet_norm"]))
    print("\nFigure 13: EDP of routing schemes (normalized to Cluster)")
    rows13 = run_fig13()
    print(format_table(rows13, list(rows13[0].keys())))
    print("best scheme:", best_threshold(rows13))


if __name__ == "__main__":
    main()
