"""A HERMES-style hierarchical optical broadcast network (Mohamed et al.).

HERMES optimizes the broadcast path by splitting it into two optical
levels instead of ATAC's single chip-wide SWMR ring:

* **level 1** -- one global broadcast channel that every cluster hub can
  write (arbitrated like any shared channel); all *region head* hubs
  listen;
* **level 2** -- per-region rebroadcast channels: each region's head hub
  re-modulates the message for the other clusters of its region
  (regions are ``region_width x region_width`` tiles of clusters;
  single-cluster regions are fed directly from level 1);
* the last hop is the standard cluster receive network, shared with
  ATAC.

Unicasts never touch the optics: HERMES keeps point-to-point traffic on
the electrical mesh (the Distance-All routing extreme), spending its
photonic budget exclusively on the broadcast tree.  That makes it the
mirror image of Corona in this registry -- all-optical unicast crossbar
vs. broadcast-only optical hierarchy -- which together bracket the
paper's hybrid design.
"""

from __future__ import annotations

from repro.network.atac import AtacNetwork
from repro.network.cluster_nets import ReceiveNetTiming
from repro.network.engine import MeshTiming
from repro.network.onet import AdaptiveSWMRLink, OnetTiming
from repro.network.routing import distance_all
from repro.network.topology import MeshTopology
from repro.network.types import Packet


def hermes_regions(
    topology: MeshTopology, region_width: int = 2
) -> tuple[tuple[int, ...], ...]:
    """Clusters grouped into ``region_width``-square tiles.

    Returns a tuple of regions, each a tuple of cluster ids in row-major
    order; the first cluster of each region is its head.  Edge regions
    may be smaller when the cluster grid does not divide evenly.
    """
    if region_width < 1:
        raise ValueError(f"region_width must be >= 1, got {region_width}")
    per_edge = topology.width // topology.cluster_width
    regions: list[tuple[int, ...]] = []
    for ry in range(0, per_edge, region_width):
        for rx in range(0, per_edge, region_width):
            regions.append(tuple(
                cy * per_edge + cx
                for cy in range(ry, min(ry + region_width, per_edge))
                for cx in range(rx, min(rx + region_width, per_edge))
            ))
    return tuple(regions)


class HermesNetwork(AtacNetwork):
    """Two-level optical broadcast hierarchy over an electrical mesh."""

    def __init__(
        self,
        topology: MeshTopology,
        flit_bits: int = 64,
        receive_net: str = "starnet",
        mesh_timing: MeshTiming | None = None,
        onet_timing: OnetTiming | None = None,
        receive_timing: ReceiveNetTiming | None = None,
        starnets_per_cluster: int = 2,
        hub_delay: int = 1,
        region_width: int = 2,
    ) -> None:
        # Distance-All keeps every unicast on the ENet: the broadcast
        # hierarchy is write-arbitrated, so point-to-point traffic on it
        # would serialize chip-wide.
        super().__init__(
            topology,
            flit_bits,
            routing=distance_all(topology),
            receive_net=receive_net,
            mesh_timing=mesh_timing,
            onet_timing=onet_timing,
            receive_timing=receive_timing,
            starnets_per_cluster=starnets_per_cluster,
            hub_delay=hub_delay,
        )
        self.regions = hermes_regions(topology, region_width)
        region_of = [0] * topology.n_clusters
        for r, members in enumerate(self.regions):
            for cluster in members:
                region_of[cluster] = r
        self._region_of_cluster = tuple(region_of)
        self._head_of_region = tuple(m[0] for m in self.regions)
        # Level 1: all hubs write, all region heads read.  The channel's
        # reader count only feeds the receiver-energy counters.
        self.global_channel = AdaptiveSWMRLink(
            0, max(2, len(self.regions)), self._onet_timing, self.stats
        )
        # Level 2: the head rebroadcasts to the region's other clusters;
        # single-cluster regions need no second level.
        self.region_channels = tuple(
            AdaptiveSWMRLink(0, len(m), self._onet_timing, self.stats)
            if len(m) >= 2 else None
            for m in self.regions
        )
        # Replace the per-hub SWMR links the base class built: HERMES's
        # optical inventory is the hierarchy's channels, and this list
        # is what port accounting and Table-V utilization walk.
        self.onet_links = [self.global_channel] + [
            c for c in self.region_channels if c is not None
        ]

    @property
    def name(self) -> str:
        return "HERMES"

    # ------------------------------------------------------------------
    # Unicasts are inherited unchanged: Distance-All routing keeps
    # routing.use_onet() False for every pair, so AtacNetwork's unicast
    # path reduces to a plain ENet traversal.
    # ------------------------------------------------------------------

    def _send_broadcast(self, pkt: Packet, n_flits: int) -> list[tuple[int, int]]:
        topo = self.topology
        src = pkt.src
        src_cluster = self._cluster_of_core[src]
        at_hub = self._to_hub(src, pkt.time, n_flits)
        _, head_arrival = self.global_channel.transmit(
            at_hub, n_flits, broadcast=True
        )
        head_ready = head_arrival + self.hub_delay
        # Reserve each region's rebroadcast exactly once, up front, so
        # per-cluster fan-out below reads a fixed schedule.
        member_ready = []
        for channel in self.region_channels:
            if channel is None:
                member_ready.append(head_ready)
            else:
                _, region_arrival = channel.transmit(
                    head_ready, n_flits, broadcast=True
                )
                member_ready.append(region_arrival + self.hub_delay)
        deliveries: list[tuple[int, int]] = []
        append = deliveries.append
        receive_nets = self.receive_nets
        # Every cluster but the sender's crosses its receive-side hub.
        self.stats.hub_flit_traversals += n_flits * (topo.n_clusters - 1)
        for cluster in range(topo.n_clusters):
            region = self._region_of_cluster[cluster]
            if cluster == src_cluster:
                # Fed directly from its own hub (as in ATAC, a sender's
                # modulated light is not re-detected).
                ready = at_hub
            elif cluster == self._head_of_region[region]:
                ready = head_ready
            else:
                ready = member_ready[region]
            arrival = receive_nets[cluster].deliver_broadcast(ready, n_flits)
            for core in topo.cluster_cores(cluster):
                if core != src:
                    append((core, arrival))
        return deliveries
