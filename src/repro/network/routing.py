"""Unicast routing policies for the hybrid ATAC/ATAC+ network.

Section IV-C: broadcasts always ride the ONet; the policy decides how
*unicasts* travel.

* :class:`ClusterRouting` -- the original ATAC policy: any inter-cluster
  unicast goes over the ONet; intra-cluster traffic stays on the ENet.
* :class:`DistanceRouting` -- ATAC+'s policy: unicasts closer than
  ``rthres`` Manhattan hops go purely over the ENet, others over the
  ONet.  ``Distance-i`` in the figures is ``DistanceRouting(i)``.
* :func:`distance_all` -- the "Distance-All" extreme: every unicast on
  the ENet, the ONet carries only broadcasts.

The oblivious (load-independent) variant is what the paper evaluates;
an optional :class:`AdaptiveDistanceRouting` is provided for the
ablation DESIGN.md calls out (the paper notes the purely
performance-optimal policy is adaptive but picks oblivious "for
simplicity reasons").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.network.topology import MeshTopology


class RoutingPolicy(ABC):
    """Decides, per unicast, whether to use the optical path."""

    #: True when ``use_onet`` depends only on (src, dst) -- i.e. the
    #: policy is load-independent -- so callers may cache its answers
    #: per core pair.  Adaptive (stateful) policies must set this False.
    oblivious = True

    @abstractmethod
    def use_onet(self, topology: MeshTopology, src: int, dst: int) -> bool:
        """True if the unicast src->dst should travel over the ONet."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Label as used in the paper's figures (e.g. 'Distance-15')."""


@dataclass(frozen=True)
class ClusterRouting(RoutingPolicy):
    """Original ATAC: every inter-cluster unicast takes the ONet."""

    @property
    def name(self) -> str:
        return "Cluster"

    def use_onet(self, topology: MeshTopology, src: int, dst: int) -> bool:
        return topology.cluster_of(src) != topology.cluster_of(dst)


@dataclass(frozen=True)
class DistanceRouting(RoutingPolicy):
    """ATAC+: unicasts at >= ``rthres`` Manhattan hops take the ONet.

    "This routing scheme has a parameter called rthres which is the
    distance below which a packet is sent completely over the ENet. At
    rthres or above it, a unicast packet is sent over the ONet."
    """

    rthres: int = 15
    #: display-name override (used by the Distance-All construction).
    label: str | None = None

    def __post_init__(self) -> None:
        if self.rthres < 0:
            raise ValueError(f"rthres must be non-negative, got {self.rthres}")

    @property
    def name(self) -> str:
        return self.label if self.label is not None else f"Distance-{self.rthres}"

    def use_onet(self, topology: MeshTopology, src: int, dst: int) -> bool:
        if topology.cluster_of(src) == topology.cluster_of(dst):
            # Same-cluster traffic always stays electrical (Section III-A).
            return False
        return topology.manhattan(src, dst) >= self.rthres


def distance_all(topology: MeshTopology) -> DistanceRouting:
    """The 'Distance-All' scheme: rthres above any possible distance,
    so every unicast travels purely over the ENet."""
    return DistanceRouting(rthres=2 * topology.width, label="Distance-All")


@dataclass
class AdaptiveDistanceRouting(RoutingPolicy):
    """Load-adaptive rthres (the ablation variant, not in the paper's
    main results).

    Tracks recent ONet ingress queueing; when hubs back up, raises
    rthres (pushing short-to-mid trips onto the ENet); when the optical
    path is idle, lowers it toward ``rthres_min`` to exploit the ONet's
    low zero-load latency.  The controller is deliberately simple --
    it exists to quantify the gap the paper accepts by going oblivious.
    """

    #: rthres moves at runtime, so use_onet answers must not be cached.
    oblivious = False

    rthres_min: int = 5
    rthres_max: int = 25
    rthres: int = 5
    #: queueing (cycles of hub backlog) above which rthres steps up.
    backlog_high: int = 32
    backlog_low: int = 4

    def __post_init__(self) -> None:
        if not 0 <= self.rthres_min <= self.rthres_max:
            raise ValueError("need 0 <= rthres_min <= rthres_max")
        self.rthres = max(self.rthres_min, min(self.rthres, self.rthres_max))

    @property
    def name(self) -> str:
        return "Distance-Adaptive"

    def observe_backlog(self, backlog_cycles: int) -> None:
        """Feed back the ONet ingress backlog seen by the last send."""
        if backlog_cycles > self.backlog_high and self.rthres < self.rthres_max:
            self.rthres += 1
        elif backlog_cycles < self.backlog_low and self.rthres > self.rthres_min:
            self.rthres -= 1

    def use_onet(self, topology: MeshTopology, src: int, dst: int) -> bool:
        if topology.cluster_of(src) == topology.cluster_of(dst):
            return False
        return topology.manhattan(src, dst) >= self.rthres
