"""Analytical-contention network backend (Graphite-style).

Graphite's default network models estimate contention *analytically*
(per-link queueing formulas fed by running utilization) instead of
reserving resources.  This backend mirrors that: it shares topology,
routing and counters with the event-driven models but computes each
packet's latency as

    zero-load latency + sum over hops of an M/D/1-style queueing term,

where each port's utilization is tracked with an exponentially-weighted
moving average of its offered flits.  Packets do not interact through
shared state beyond those averages, so the model is O(hops) with tiny
constants and never saturates "hard" -- latency grows smoothly as rho
approaches 1 (clamped below 1 for stability).

Use it for quick scans; use the reservation engine for anything where
burstiness, head-of-line blocking or true saturation matters.  The
cross-validation tests assert agreement at low load and document the
divergence at high load.
"""

from __future__ import annotations

from repro.network.engine import MeshTiming, Network
from repro.network.topology import MeshTopology
from repro.network.types import Packet


class _PortLoad:
    """EWMA utilization tracker for one output port."""

    __slots__ = ("rate", "_last_time")

    #: EWMA smoothing per elapsed cycle (memory of ~1/alpha cycles)
    ALPHA = 0.01
    #: utilization clamp: keeps the M/D/1 term finite past saturation
    RHO_MAX = 0.98

    def __init__(self) -> None:
        self.rate = 0.0
        self._last_time = 0

    def offer(self, time: int, flits: int) -> float:
        """Record ``flits`` offered at ``time``; return queueing delay.

        The port serves 1 flit/cycle; with utilization rho, an
        M/D/1 queue waits ``rho / (2 * (1 - rho))`` service units on
        average.
        """
        dt = max(0, time - self._last_time)
        self._last_time = time
        # decay the EWMA over the elapsed idle time, then add the burst
        decay = (1.0 - self.ALPHA) ** dt
        self.rate = self.rate * decay + self.ALPHA * flits
        rho = min(self.RHO_MAX, self.rate)
        return rho / (2.0 * (1.0 - rho))


class AnalyticMesh(Network):
    """Electrical mesh with analytical (queueing-formula) contention.

    Matches :class:`repro.network.mesh.EMeshPure` at zero load and
    approximates it under load without any shared reservations.
    """

    def __init__(
        self,
        topology: MeshTopology,
        flit_bits: int = 64,
        timing: MeshTiming | None = None,
    ) -> None:
        super().__init__(topology, flit_bits)
        self.timing = timing if timing is not None else MeshTiming()
        self._loads: dict[tuple[int, int], _PortLoad] = {}

    @property
    def name(self) -> str:
        return "EMesh-Analytic"

    def _load(self, u: int, v: int) -> _PortLoad:
        key = (u, v)
        port = self._loads.get(key)
        if port is None:
            port = self._loads[key] = _PortLoad()
        return port

    def _estimate(self, src: int, dst: int, t: int, n_flits: int) -> int:
        path = self.topology.xy_route(src, dst)
        hops = len(path) - 1
        s = self.stats
        s.router_flit_traversals += n_flits * (hops + 1)
        s.link_flit_traversals += n_flits * hops
        s.router_arbitrations += hops + 1
        queueing = 0.0
        for i in range(hops):
            queueing += self._load(path[i], path[i + 1]).offer(t, n_flits)
        return t + hops * self.timing.hop_latency + n_flits + int(queueing)

    def _send_unicast(self, pkt: Packet, n_flits: int) -> list[tuple[int, int]]:
        return [(pkt.dst, self._estimate(pkt.src, pkt.dst, pkt.time, n_flits))]

    def _send_broadcast(self, pkt: Packet, n_flits: int) -> list[tuple[int, int]]:
        # analytical model: broadcasts as independent unicasts (this
        # backend targets unicast-dominated scans; use the event engine
        # for broadcast-heavy studies)
        deliveries = []
        for dst in range(self.topology.n_cores):
            if dst != pkt.src:
                deliveries.append(
                    (dst, self._estimate(pkt.src, dst, pkt.time, n_flits))
                )
        return deliveries

    def mean_port_utilization(self) -> float:
        """Diagnostics: average EWMA utilization over touched ports."""
        if not self._loads:
            return 0.0
        return sum(p.rate for p in self._loads.values()) / len(self._loads)
