"""The composite ATAC / ATAC+ network (Figure 1).

Three fabrics stitched together:

* **ENet** -- the electrical mesh (shared machinery with the EMesh
  baselines), used (a) for short-distance unicasts per the routing
  policy and (b) to carry flits from a source core to its cluster hub.
* **ONet** -- 64 adaptive SWMR links (one per hub), each a
  single-writer multiple-reader WDM channel with 3-cycle link delay.
* **Receive networks** -- per-cluster BNet (original ATAC) or StarNet
  (ATAC+) delivering from the hub to the cores in one cycle; two
  parallel instances per cluster (Table I).

The unicast routing policy is pluggable (:mod:`repro.network.routing`):
``ClusterRouting`` gives the original ATAC behaviour,
``DistanceRouting(15)`` the ATAC+ default.

A hybrid-path unicast therefore costs::

    ENet(src -> src hub) + hub + ONet channel + hub + StarNet -> dst

and a broadcast::

    ENet(src -> src hub) + hub + ONet broadcast
        + per-cluster (hub + StarNet broadcast) -> every core
"""

from __future__ import annotations

from repro.network.cluster_nets import ReceiveNetTiming, ReceiveNetwork
from repro.network.engine import MeshTiming, PortResource
from repro.network.mesh import _MeshBase
from repro.network.onet import AdaptiveSWMRLink, OnetTiming
from repro.network.routing import ClusterRouting, DistanceRouting, RoutingPolicy
from repro.network.topology import MeshTopology
from repro.network.types import Packet


class AtacNetwork(_MeshBase):
    """ATAC (BNet + cluster routing) or ATAC+ (StarNet + distance routing)."""

    def __init__(
        self,
        topology: MeshTopology,
        flit_bits: int = 64,
        routing: RoutingPolicy | None = None,
        receive_net: str = "starnet",
        mesh_timing: MeshTiming | None = None,
        onet_timing: OnetTiming | None = None,
        receive_timing: ReceiveNetTiming | None = None,
        starnets_per_cluster: int = 2,
        hub_delay: int = 1,
    ) -> None:
        super().__init__(topology, flit_bits, mesh_timing)
        if hub_delay < 0:
            raise ValueError(f"hub_delay must be non-negative, got {hub_delay}")
        self.routing: RoutingPolicy = (
            routing if routing is not None else DistanceRouting(15)
        )
        self.receive_net_kind = receive_net
        self.hub_delay = hub_delay
        self._onet_timing = onet_timing if onet_timing is not None else OnetTiming()
        n_hubs = topology.n_clusters
        self.onet_links = [
            AdaptiveSWMRLink(h, n_hubs, self._onet_timing, self.stats)
            for h in range(n_hubs)
        ]
        self._local_index = {
            core: i
            for c in range(n_hubs)
            for i, core in enumerate(topology.cluster_cores(c))
        }
        # Per-core geometry, flattened once: cluster id and hub position
        # are needed on every send, and the topology calls (int divides
        # plus bounds checks) showed up in per-packet profiles.
        self._cluster_of_core = tuple(
            topology.cluster_of(c) for c in range(topology.n_cores)
        )
        self._hub_of_core = tuple(
            topology.hub_core(cluster) for cluster in self._cluster_of_core
        )
        # Oblivious policies answer use_onet from (src, dst) alone, so
        # the verdict is memoized per core pair; adaptive policies
        # (oblivious=False) are consulted on every send.
        self._use_onet_cache: dict[int, bool] | None = (
            {} if self.routing.oblivious else None
        )
        self.receive_nets = [
            ReceiveNetwork(
                cluster=c,
                cluster_size=topology.cluster_size,
                kind=receive_net,
                n_parallel=starnets_per_cluster,
                timing=receive_timing,
                stats=self.stats,
            )
            for c in range(n_hubs)
        ]

    @property
    def name(self) -> str:
        if self.receive_net_kind == "bnet" and isinstance(self.routing, ClusterRouting):
            return "ATAC"
        return "ATAC+"

    # ------------------------------------------------------------------
    def _to_hub(self, src: int, t: int, n_flits: int) -> int:
        """ENet trip from a core to its cluster hub, plus hub ingress."""
        hub_core = self._hub_of_core[src]
        if src != hub_core:
            t = self._traverse(src, hub_core, t, n_flits)
        self.stats.hub_flit_traversals += n_flits
        return t + self.hub_delay

    # ------------------------------------------------------------------
    def _send_unicast(self, pkt: Packet, n_flits: int) -> list[tuple[int, int]]:
        topo = self.topology
        cache = self._use_onet_cache
        if cache is None:
            use_onet = self.routing.use_onet(topo, pkt.src, pkt.dst)
        else:
            key = pkt.src * self._n_cores + pkt.dst
            use_onet = cache.get(key)
            if use_onet is None:
                use_onet = cache[key] = self.routing.use_onet(
                    topo, pkt.src, pkt.dst
                )
        if not use_onet:
            arrival = self._traverse(pkt.src, pkt.dst, pkt.time, n_flits)
            return [(pkt.dst, arrival)]

        src_cluster = self._cluster_of_core[pkt.src]
        dst_cluster = self._cluster_of_core[pkt.dst]
        at_hub = self._to_hub(pkt.src, pkt.time, n_flits)
        _, hub_arrival = self.onet_links[src_cluster].transmit(
            at_hub, n_flits, broadcast=False
        )
        # receive-side hub crossing, then the cluster receive network
        self.stats.hub_flit_traversals += n_flits
        arrival = self.receive_nets[dst_cluster].deliver_unicast(
            hub_arrival + self.hub_delay, n_flits, self._local_index[pkt.dst]
        )
        return [(pkt.dst, arrival)]

    # ------------------------------------------------------------------
    def _deliver_clusters(
        self,
        src: int,
        src_cluster: int,
        at_hub: int,
        hub_arrival: int,
        n_flits: int,
    ) -> list[tuple[int, int]]:
        """Fan a broadcast out of the optical stage into every cluster's
        receive network (shared by the ATAC-family broadcast paths)."""
        topo = self.topology
        deliveries: list[tuple[int, int]] = []
        append = deliveries.append
        n_clusters = topo.n_clusters
        receive_nets = self.receive_nets
        remote_ready = hub_arrival + self.hub_delay
        # Every cluster but the sender's crosses its receive-side hub.
        self.stats.hub_flit_traversals += n_flits * (n_clusters - 1)
        for cluster in range(n_clusters):
            # The sender's own cluster is fed directly from the hub
            # (its own modulated light is not re-detected).
            ready = at_hub if cluster == src_cluster else remote_ready
            arrival = receive_nets[cluster].deliver_broadcast(ready, n_flits)
            for core in topo.cluster_cores(cluster):
                if core != src:
                    append((core, arrival))
        return deliveries

    def _send_broadcast(self, pkt: Packet, n_flits: int) -> list[tuple[int, int]]:
        src = pkt.src
        src_cluster = self._cluster_of_core[src]
        at_hub = self._to_hub(src, pkt.time, n_flits)
        _, hub_arrival = self.onet_links[src_cluster].transmit(
            at_hub, n_flits, broadcast=True
        )
        return self._deliver_clusters(
            src, src_cluster, at_hub, hub_arrival, n_flits
        )

    # ------------------------------------------------------------------
    def onet_utilization(self, total_cycles: int) -> float:
        """Mean adaptive-SWMR link utilization across hubs (Table V)."""
        if total_cycles <= 0:
            raise ValueError(f"total_cycles must be positive, got {total_cycles}")
        utils = [l.utilization(total_cycles) for l in self.onet_links]
        return sum(utils) / len(utils)
