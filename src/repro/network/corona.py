"""A Corona-style all-optical MWSR crossbar (Vantrease et al., ISCA'08).

Corona inverts ATAC's channel ownership: ATAC's ONet is SWMR (each
*sender* hub owns a wavelength channel that every other hub can tune
into), whereas Corona's crossbar is **MWSR** -- each *receiver* hub owns
a channel, and every hub that wants to talk to it modulates onto that
channel.  Writers therefore contend at the destination's channel, which
Corona arbitrates with an optical token; we model the token acquisition
as a fixed ``token_delay`` before the channel reservation (the
serialization itself falls out of the channel's ``free_at``, exactly
the single-server semantics of :class:`AdaptiveSWMRLink`).

Consequences relative to ATAC/ATAC+:

* **every** inter-cluster unicast is optical (there is no distance
  threshold -- the crossbar is the only inter-cluster path), so the
  electrical mesh carries only intra-cluster traffic and the
  core-to-hub hop;
* broadcasts use one dedicated all-to-all broadcast channel (Corona's
  power-guided broadcast ring) that all hubs arbitrate for, rather
  than per-sender channels.

The hub/receive-network stage is shared with ATAC: light terminates at
the destination hub, crosses it, and fans out on the cluster's receive
network.
"""

from __future__ import annotations

from repro.network.atac import AtacNetwork
from repro.network.cluster_nets import ReceiveNetTiming
from repro.network.engine import MeshTiming
from repro.network.onet import AdaptiveSWMRLink, OnetTiming
from repro.network.routing import ClusterRouting
from repro.network.topology import MeshTopology
from repro.network.types import Packet


class CoronaNetwork(AtacNetwork):
    """All-optical MWSR crossbar with token-slot channel arbitration."""

    def __init__(
        self,
        topology: MeshTopology,
        flit_bits: int = 64,
        receive_net: str = "starnet",
        mesh_timing: MeshTiming | None = None,
        onet_timing: OnetTiming | None = None,
        receive_timing: ReceiveNetTiming | None = None,
        starnets_per_cluster: int = 2,
        hub_delay: int = 1,
        token_delay: int = 2,
    ) -> None:
        # ClusterRouting sends every inter-cluster unicast optically --
        # on this fabric that is not a policy choice but the topology.
        super().__init__(
            topology,
            flit_bits,
            routing=ClusterRouting(),
            receive_net=receive_net,
            mesh_timing=mesh_timing,
            onet_timing=onet_timing,
            receive_timing=receive_timing,
            starnets_per_cluster=starnets_per_cluster,
            hub_delay=hub_delay,
        )
        if token_delay < 0:
            raise ValueError(
                f"token_delay must be non-negative, got {token_delay}"
            )
        self.token_delay = token_delay
        # The base class built one channel per hub; under MWSR semantics
        # onet_links[c] is the channel *read by* cluster c (writers
        # reserve it).  The broadcast ring is an extra shared channel
        # appended so port accounting and Table-V utilization cover it.
        self.broadcast_channel = AdaptiveSWMRLink(
            0, topology.n_clusters, self._onet_timing, self.stats
        )
        self.onet_links.append(self.broadcast_channel)

    @property
    def name(self) -> str:
        return "Corona"

    # ------------------------------------------------------------------
    def _send_unicast(self, pkt: Packet, n_flits: int) -> list[tuple[int, int]]:
        src_cluster = self._cluster_of_core[pkt.src]
        dst_cluster = self._cluster_of_core[pkt.dst]
        if src_cluster == dst_cluster:
            arrival = self._traverse(pkt.src, pkt.dst, pkt.time, n_flits)
            return [(pkt.dst, arrival)]
        at_hub = self._to_hub(pkt.src, pkt.time, n_flits)
        # MWSR: reserve the *destination's* channel; the token round
        # precedes the reservation, queueing behind other writers is
        # the channel's own serialization.
        _, hub_arrival = self.onet_links[dst_cluster].transmit(
            at_hub + self.token_delay, n_flits, broadcast=False
        )
        self.stats.hub_flit_traversals += n_flits
        arrival = self.receive_nets[dst_cluster].deliver_unicast(
            hub_arrival + self.hub_delay, n_flits, self._local_index[pkt.dst]
        )
        return [(pkt.dst, arrival)]

    # ------------------------------------------------------------------
    def _send_broadcast(self, pkt: Packet, n_flits: int) -> list[tuple[int, int]]:
        src = pkt.src
        src_cluster = self._cluster_of_core[src]
        at_hub = self._to_hub(src, pkt.time, n_flits)
        _, hub_arrival = self.broadcast_channel.transmit(
            at_hub + self.token_delay, n_flits, broadcast=True
        )
        return self._deliver_clusters(
            src, src_cluster, at_hub, hub_arrival, n_flits
        )
