"""Closed-form network latency/throughput estimates.

Graphite ships analytical network models alongside its simulated ones;
we do the same, for two purposes:

* **cross-validation** -- the event-driven engine's zero-load latencies
  must match these closed forms exactly (tests/benchmarks assert it);
* **fast design-space scans** -- a sweep over thousands of
  (topology, rthres, flit width) points costs microseconds per point
  instead of a simulation each.

Formulas (Table I timing):

* mesh unicast:   ``hops * (router + link) + flits``
* mesh broadcast (tree): worst leaf = diameter hops
* ATAC+ optical path: ``ENet(src->hub) + hub + select lag + ONet link
  + flits + hub + StarNet``
* saturation: a uniform-random mesh saturates when the bisection
  carries half the traffic: ``lambda_sat ~= 4 * W * B / N`` per-core
  flit rate for bisection bandwidth ``B`` flits/cycle per link row.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.engine import MeshTiming
from repro.network.onet import OnetTiming
from repro.network.routing import RoutingPolicy
from repro.network.topology import MeshTopology


@dataclass(frozen=True)
class AnalyticModel:
    """Closed-form latency/throughput for one chip geometry."""

    topology: MeshTopology
    flit_bits: int = 64
    mesh_timing: MeshTiming = field(default_factory=MeshTiming)
    onet_timing: OnetTiming = field(default_factory=OnetTiming)
    receive_net_delay: int = 1
    hub_delay: int = 1

    def _flits(self, size_bits: int) -> int:
        if size_bits <= 0:
            raise ValueError(f"size_bits must be positive, got {size_bits}")
        return max(1, -(-size_bits // self.flit_bits))

    # ------------------------------------------------------------------
    def mesh_unicast_latency(self, src: int, dst: int, size_bits: int = 88) -> int:
        """Zero-load wormhole latency over the electrical mesh (cycles)."""
        if src == dst:
            return 1
        hops = self.topology.manhattan(src, dst)
        return hops * self.mesh_timing.hop_latency + self._flits(size_bits)

    def mesh_broadcast_latency(self, src: int, size_bits: int = 88) -> int:
        """Zero-load worst-leaf latency of an XY multicast tree (cycles)."""
        x, y = self.topology.coords(src)
        w = self.topology.width
        worst_hops = max(x, w - 1 - x) + max(y, w - 1 - y)
        return worst_hops * self.mesh_timing.hop_latency + self._flits(size_bits)

    def optical_path_latency(self, src: int, size_bits: int = 88) -> int:
        """Zero-load latency of the hybrid ENet->ONet->StarNet path.

        The path length is independent of the destination -- that is
        the ONet's "uniform communication cost" property: ENet trip to
        the source's hub, hub ingress, select lead + 3-cycle optical
        link + serialization, receive-hub egress, one StarNet cycle.
        """
        topo = self.topology
        flits = self._flits(size_bits)
        hub = topo.hub_core(topo.cluster_of(src))
        enet = (
            0 if src == hub
            else topo.manhattan(src, hub) * self.mesh_timing.hop_latency + flits
        )
        onet = (
            self.onet_timing.select_data_lag
            + self.onet_timing.link_delay
            + flits
        )
        star = self.receive_net_delay + flits
        return enet + self.hub_delay + onet + self.hub_delay + star

    def optical_unicast_latency(self, src: int, dst: int, size_bits: int = 88) -> int:
        """Zero-load latency of an ONet unicast (destination-independent)."""
        del dst
        return self.optical_path_latency(src, size_bits)

    def optical_broadcast_latency(self, src: int, size_bits: int = 88) -> int:
        """Zero-load latency for an ONet broadcast to the farthest core."""
        return self.optical_path_latency(src, size_bits)

    def atac_unicast_latency(
        self, routing: RoutingPolicy, src: int, dst: int, size_bits: int = 88
    ) -> int:
        """Zero-load latency under a given unicast routing policy."""
        if src == dst:
            return 1
        if routing.use_onet(self.topology, src, dst):
            return self.optical_unicast_latency(src, dst, size_bits)
        return self.mesh_unicast_latency(src, dst, size_bits)

    # ------------------------------------------------------------------
    def mean_mesh_distance(self) -> float:
        """Mean Manhattan distance under uniform-random traffic: 2W/3."""
        w = self.topology.width
        return 2.0 * (w * w - 1) / (3.0 * w) if w > 1 else 0.0

    def crossover_distance(self, routing_break_even_hops: int = 8) -> int:
        """The data-dependent-energy crossover distance (Section IV-C:
        8 hops with the paper's device constants)."""
        return routing_break_even_hops

    def mesh_saturation_load(self) -> float:
        """Per-core injection rate (flits/cycle) at mesh saturation.

        Uniform random traffic: half of all traffic crosses the
        bisection of ``W`` links (each 1 flit/cycle/direction), so
        ``N/2 * lambda / 2`` <= ``W`` => ``lambda <= 8/(W^2) * W``.
        """
        w = self.topology.width
        if w < 2:
            return 1.0
        return 4.0 / w

    def onet_saturation_load(self) -> float:
        """Per-core ONet injection limit: each hub's channel carries one
        flit/cycle shared by its cluster."""
        return 1.0 / self.topology.cluster_size

    def hybrid_saturation_load(self, onet_fraction: float) -> float:
        """Combined saturation when ``onet_fraction`` of unicast traffic
        rides the ONet and the rest the ENet.

        The network saturates when either fabric saturates; the best
        oblivious rthres balances the two -- the Figure 3 reasoning.
        """
        if not 0.0 <= onet_fraction <= 1.0:
            raise ValueError(f"onet_fraction must be in [0,1], got {onet_fraction}")
        limits = []
        if onet_fraction > 0:
            limits.append(self.onet_saturation_load() / onet_fraction)
        if onet_fraction < 1:
            limits.append(self.mesh_saturation_load() / (1.0 - onet_fraction))
        return min(limits)

    def onet_traffic_fraction(self, routing: RoutingPolicy, samples: int = 2000,
                              seed: int = 3) -> float:
        """Fraction of uniform-random unicasts a policy sends optically."""
        import random

        rng = random.Random(seed)
        n = self.topology.n_cores
        onet = 0
        for _ in range(samples):
            src = rng.randrange(n)
            dst = rng.randrange(n - 1)
            if dst >= src:
                dst += 1
            if routing.use_onet(self.topology, src, dst):
                onet += 1
        return onet / samples
