"""Event-driven on-chip network models.

Implements the three networks the paper evaluates plus the original-ATAC
components needed for the ablations:

* :class:`repro.network.mesh.EMeshPure`   -- plain electrical mesh
  (broadcasts become N-1 serialized unicasts).
* :class:`repro.network.mesh.EMeshBCast`  -- electrical mesh with native
  router multicast (spanning-tree broadcast).
* :class:`repro.network.atac.AtacNetwork` -- the hybrid network: ENet
  electrical mesh + ONet adaptive-SWMR optical broadcast ring +
  per-cluster BNet or StarNet receive network, with cluster-based or
  distance-based unicast routing.

All networks share one timing methodology (packet-level wormhole
approximation with per-port resource reservation, see
:mod:`repro.network.engine`) and one counter vocabulary
(:mod:`repro.network.stats`) that the energy layer consumes.
"""

from repro.network.types import Packet, TrafficClass, BROADCAST
from repro.network.topology import MeshTopology
from repro.network.stats import NetworkStats
from repro.network.engine import PortResource, MultiPortResource, Network
from repro.network.routing import (
    RoutingPolicy,
    ClusterRouting,
    DistanceRouting,
    distance_all,
)
from repro.network.mesh import EMeshPure, EMeshBCast
from repro.network.onet import AdaptiveSWMRLink, LaserMode
from repro.network.cluster_nets import ReceiveNetwork
from repro.network.atac import AtacNetwork
from repro.network.analytic import AnalyticModel
from repro.network.queueing import AnalyticMesh

__all__ = [
    "Packet",
    "TrafficClass",
    "BROADCAST",
    "MeshTopology",
    "NetworkStats",
    "PortResource",
    "MultiPortResource",
    "Network",
    "RoutingPolicy",
    "ClusterRouting",
    "DistanceRouting",
    "distance_all",
    "EMeshPure",
    "EMeshBCast",
    "AdaptiveSWMRLink",
    "LaserMode",
    "ReceiveNetwork",
    "AtacNetwork",
    "AnalyticModel",
    "AnalyticMesh",
]
