"""Event-driven on-chip network models.

Implements the paper's three evaluated networks, the original-ATAC
components needed for the ablations, and two further registered
architectures that bracket the hybrid design:

* :class:`repro.network.mesh.EMeshPure`   -- plain electrical mesh
  (broadcasts become N-1 serialized unicasts).
* :class:`repro.network.mesh.EMeshBCast`  -- electrical mesh with native
  router multicast (spanning-tree broadcast).
* :class:`repro.network.atac.AtacNetwork` -- the hybrid network: ENet
  electrical mesh + ONet adaptive-SWMR optical broadcast ring +
  per-cluster BNet or StarNet receive network, with cluster-based or
  distance-based unicast routing.
* :class:`repro.network.corona.CoronaNetwork` -- all-optical MWSR
  crossbar (receiver-owned channels, token arbitration).
* :class:`repro.network.hermes.HermesNetwork` -- hierarchical two-level
  optical broadcast over an electrical unicast mesh.

Every architecture is bound to its energy/area models and experiment
axes by a :class:`repro.network.registry.NetworkDescriptor`; the rest
of the system resolves networks through :mod:`repro.network.registry`
rather than dispatching on name strings.

All networks share one timing methodology (packet-level wormhole
approximation with per-port resource reservation, see
:mod:`repro.network.engine`) and one counter vocabulary
(:mod:`repro.network.stats`) that the energy layer consumes.
"""

from repro.network.types import Packet, TrafficClass, BROADCAST
from repro.network.topology import MeshTopology
from repro.network.stats import NetworkStats
from repro.network.engine import PortResource, MultiPortResource, Network
from repro.network.routing import (
    RoutingPolicy,
    ClusterRouting,
    DistanceRouting,
    distance_all,
)
from repro.network.mesh import EMeshPure, EMeshBCast
from repro.network.onet import AdaptiveSWMRLink, LaserMode
from repro.network.cluster_nets import ReceiveNetwork
from repro.network.atac import AtacNetwork
from repro.network.corona import CoronaNetwork
from repro.network.hermes import HermesNetwork, hermes_regions
from repro.network.registry import (
    NETWORK_CHOICES,
    NetworkDescriptor,
    UnknownNetworkError,
    experiment_axis,
    get_network,
    network_names,
    receive_net_kind,
    register,
)
from repro.network.analytic import AnalyticModel
from repro.network.queueing import AnalyticMesh

__all__ = [
    "Packet",
    "TrafficClass",
    "BROADCAST",
    "MeshTopology",
    "NetworkStats",
    "PortResource",
    "MultiPortResource",
    "Network",
    "RoutingPolicy",
    "ClusterRouting",
    "DistanceRouting",
    "distance_all",
    "EMeshPure",
    "EMeshBCast",
    "AdaptiveSWMRLink",
    "LaserMode",
    "ReceiveNetwork",
    "AtacNetwork",
    "CoronaNetwork",
    "HermesNetwork",
    "hermes_regions",
    "NETWORK_CHOICES",
    "NetworkDescriptor",
    "UnknownNetworkError",
    "experiment_axis",
    "get_network",
    "network_names",
    "receive_net_kind",
    "register",
    "AnalyticModel",
    "AnalyticMesh",
]
