"""Shared network message types.

The paper's packet formats (Section IV-C1, "Network Traffic Overhead"):

* a *coherence* message is 88 bits (64 address + 20 sender/receiver IDs
  + 4 type) -> 2 flits at the 64-bit flit width;
* a *data* message is 600 bits (512 data + 64 address + 20 IDs + 4
  type) -> 10 flits;
* the 16-bit sequence number rides in existing slack, adding no flits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum


#: Destination sentinel meaning "every core on the chip".
BROADCAST = -1

#: Bits in a coherence (control) message.
CONTROL_MSG_BITS = 88
#: Bits in a data-carrying message (64 B cache line + header).
DATA_MSG_BITS = 600


class TrafficClass(Enum):
    """Unicast vs broadcast; determines routing and energy treatment."""

    UNICAST = "unicast"
    BROADCAST = "broadcast"


@dataclass(slots=True)
class Packet:
    """One network packet.

    Attributes
    ----------
    src:
        Source core id.
    dst:
        Destination core id, or :data:`BROADCAST`.
    size_bits:
        Payload + header size; converted to flits by each network.
    time:
        Injection time (cycles).
    payload:
        Opaque object carried to the receiver (coherence messages in the
        full-system simulator; ``None`` for synthetic traffic).
    """

    src: int
    dst: int
    size_bits: int = CONTROL_MSG_BITS
    time: int = 0
    payload: object = None

    def __post_init__(self) -> None:
        if self.src < 0:
            raise ValueError(f"src must be a core id >= 0, got {self.src}")
        if self.dst < 0 and self.dst != BROADCAST:
            raise ValueError(f"dst must be a core id or BROADCAST, got {self.dst}")
        if self.size_bits <= 0:
            raise ValueError(f"size_bits must be positive, got {self.size_bits}")
        if self.time < 0:
            raise ValueError(f"time must be non-negative, got {self.time}")

    @property
    def traffic_class(self) -> TrafficClass:
        return TrafficClass.BROADCAST if self.dst == BROADCAST else TrafficClass.UNICAST

    def n_flits(self, flit_bits: int) -> int:
        """Number of flits at the given flit width."""
        if flit_bits <= 0:
            raise ValueError(f"flit_bits must be positive, got {flit_bits}")
        return max(1, math.ceil(self.size_bits / flit_bits))


def control_packet(src: int, dst: int, time: int = 0, payload: object = None) -> Packet:
    """Convenience constructor for an 88-bit coherence packet."""
    return Packet(src=src, dst=dst, size_bits=CONTROL_MSG_BITS, time=time, payload=payload)


def data_packet(src: int, dst: int, time: int = 0, payload: object = None) -> Packet:
    """Convenience constructor for a 600-bit data packet."""
    return Packet(src=src, dst=dst, size_bits=DATA_MSG_BITS, time=time, payload=payload)
