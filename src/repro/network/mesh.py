"""The electrical baselines: EMesh-Pure and EMesh-BCast (Section V-A).

Both are 2-D packet-switched meshes with XY dimension-order (oblivious)
routing, wormhole flow control and a single virtual channel, 1-cycle
routers and 1-cycle links (Table I).  They differ only in broadcast
handling:

* **EMesh-Pure**: no multicast hardware -- a broadcast is the source
  injecting N-1 back-to-back unicasts, which serializes at the source
  router and "severely degrad[es] performance for broadcast-heavy
  applications".
* **EMesh-BCast**: routers replicate flits along an XY spanning tree,
  so a broadcast costs one tree traversal.

Hot-path note: ``_traverse`` is called once per mesh packet (and once
per EMesh-Pure broadcast destination).  Port state lives in two flat
``cores x 4`` integer arrays (``_free_at``, ``_busy``) indexed by
``core * 4 + direction``; a cached route is a tuple of such indices, so
the per-hop reservation is pure list arithmetic -- the same arithmetic
as ``PortResource.reserve``, without the object or the call.
"""

from __future__ import annotations

from collections import deque

from repro.network.engine import MeshTiming, Network
from repro.network.topology import MeshTopology
from repro.network.types import Packet

#: Output-port direction indices in the flat port array.
_EAST, _WEST, _SOUTH, _NORTH = 0, 1, 2, 3


class _MeshBase(Network):
    """Shared XY-routed mesh machinery."""

    def __init__(
        self,
        topology: MeshTopology,
        flit_bits: int = 64,
        timing: MeshTiming | None = None,
    ) -> None:
        super().__init__(topology, flit_bits)
        self.timing = timing if timing is not None else MeshTiming()
        self._n_cores = topology.n_cores
        # Flat port-state arrays: entry core*4 + direction is the output
        # port of that core's router facing that neighbour.  ``_free_at``
        # is the cycle the port next becomes free; ``_busy`` accumulates
        # occupied cycles (kept for symmetry with PortResource, though
        # nothing reads it back for the mesh ports today).
        self._free_at: list[int] = [0] * (topology.n_cores * 4)
        self._busy: list[int] = [0] * (topology.n_cores * 4)
        # Which port indices have been referenced by a route (the old
        # lazily-created-port count, kept observable for tests).
        self._port_seen = bytearray(topology.n_cores * 4)
        # (src, dst) -> tuple of port indices along the XY route, in hop
        # order.  Repeated sends between the same pair then reduce to a
        # walk over two flat arrays -- no coordinate math.
        self._route_ports: dict[int, tuple[int, ...]] = {}

    def _port_at(self, u: int, d: int) -> int:
        """Index of output port ``d`` of router ``u``."""
        idx = u * 4 + d
        self._port_seen[idx] = 1
        return idx

    def _port(self, u: int, v: int) -> int:
        """Index of the output port of router ``u`` facing neighbour ``v``."""
        delta = v - u
        if delta == 1:
            d = _EAST
        elif delta == -1:
            d = _WEST
        elif delta == self.topology.width:
            d = _SOUTH
        elif delta == -self.topology.width:
            d = _NORTH
        else:
            raise ValueError(f"cores {u} and {v} are not mesh neighbours")
        return self._port_at(u, d)

    def _route_ports_for(self, src: int, dst: int) -> tuple[int, ...]:
        """Port indices along the XY route src -> dst, in hop order."""
        w = self.topology.width
        x, y = src % w, src // w
        dx, dy = dst % w, dst // w
        ports: list[int] = []
        u = src
        if x != dx:
            step, d = (1, _EAST) if dx > x else (-1, _WEST)
            while x != dx:
                ports.append(self._port_at(u, d))
                x += step
                u += step
        if y != dy:
            d = _SOUTH if dy > y else _NORTH
            step = 1 if dy > y else -1
            ustep = w if dy > y else -w
            while y != dy:
                ports.append(self._port_at(u, d))
                y += step
                u += ustep
        return tuple(ports)

    def _traverse(self, src: int, dst: int, t: int, n_flits: int) -> int:
        """Route one packet src->dst starting at time t; returns arrival.

        Reserves each output port along the (cached) XY route; counts
        router/link flit traversals for the energy model.  Reservations
        are inlined (same arithmetic as ``PortResource.reserve``) --
        this loop runs once per hop of every mesh packet and the call
        and attribute overhead dominated it.
        """
        key = src * self._n_cores + dst
        route = self._route_ports.get(key)
        if route is None:
            route = self._route_ports[key] = self._route_ports_for(src, dst)
        hops = len(route)
        s = self.stats
        s.router_flit_traversals += n_flits * (hops + 1)  # incl. ejection router
        s.link_flit_traversals += n_flits * hops
        s.router_arbitrations += hops + 1
        head = t
        hop_latency = self.timing.hop_latency
        free_at = self._free_at
        busy = self._busy
        for i in route:
            free = free_at[i]
            start = head if head > free else free
            free_at[i] = start + n_flits
            busy[i] += n_flits
            head = start + hop_latency
        # head has arrived; the tail needs the serialization time.
        return head + n_flits

    def mesh_port_count(self) -> int:
        """Ports referenced by some route so far -- for tests."""
        return sum(self._port_seen)


class EMeshPure(_MeshBase):
    """Plain electrical mesh: broadcasts are N-1 serialized unicasts."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # src -> ((dst, route-ports), ...) for every dst, plus the total
        # hop count, built on a source's first broadcast.  A broadcast
        # here is N-1 unicast traversals, so the per-destination route
        # lookup is the dominant cost without this.
        self._bcast_plan: dict[int, tuple] = {}

    @property
    def name(self) -> str:
        return "EMesh-Pure"

    def _send_unicast(self, pkt: Packet, n_flits: int) -> list[tuple[int, int]]:
        arrival = self._traverse(pkt.src, pkt.dst, pkt.time, n_flits)
        return [(pkt.dst, arrival)]

    def _bcast_plan_for(self, src: int) -> tuple:
        routes = []
        total_hops = 0
        route_cache = self._route_ports
        n = self._n_cores
        for dst in range(n):
            if dst == src:
                continue
            key = src * n + dst
            route = route_cache.get(key)
            if route is None:
                route = route_cache[key] = self._route_ports_for(src, dst)
            routes.append((dst, route))
            total_hops += len(route)
        return tuple(routes), total_hops

    def _send_broadcast(self, pkt: Packet, n_flits: int) -> list[tuple[int, int]]:
        # The source's network interface injects one unicast per
        # destination; they contend for the source's output ports and
        # serialize there, which is exactly the EMesh-Pure penalty.
        # Same reservation math as _traverse, run over the precomputed
        # per-source plan (destinations in ascending order, as always).
        src = pkt.src
        plan = self._bcast_plan.get(src)
        if plan is None:
            plan = self._bcast_plan[src] = self._bcast_plan_for(src)
        routes, total_hops = plan
        s = self.stats
        n_dsts = len(routes)
        s.router_flit_traversals += n_flits * (total_hops + n_dsts)
        s.link_flit_traversals += n_flits * total_hops
        s.router_arbitrations += total_hops + n_dsts
        t = pkt.time
        hop_latency = self.timing.hop_latency
        free_at = self._free_at
        busy = self._busy
        deliveries = []
        append = deliveries.append
        for dst, route in routes:
            head = t
            for i in route:
                free = free_at[i]
                start = head if head > free else free
                free_at[i] = start + n_flits
                busy[i] += n_flits
                head = start + hop_latency
            append((dst, head + n_flits))
        return deliveries


class EMeshBCast(_MeshBase):
    """Electrical mesh with native multicast at each router."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # src -> (edges, order): the spanning tree flattened breadth-
        # first into (parent_slot, port) pairs plus the canonical
        # delivery order as (core, slot) pairs; built on a source's
        # first broadcast.
        self._bcast_plan: dict[int, tuple] = {}

    @property
    def name(self) -> str:
        return "EMesh-BCast"

    def _send_unicast(self, pkt: Packet, n_flits: int) -> list[tuple[int, int]]:
        arrival = self._traverse(pkt.src, pkt.dst, pkt.time, n_flits)
        return [(pkt.dst, arrival)]

    def _bcast_plan_for(self, src: int) -> tuple:
        """Flatten the XY spanning tree rooted at ``src`` for replay.

        Nodes get *slots* in breadth-first visitation order (root = 0);
        ``edges[i]`` is ``(parent_slot, port_index)`` for the node in
        slot ``i + 1``, so a single pass over ``edges`` computes every
        head time (a parent's slot always precedes its children's).
        """
        topo = self.topology
        tree = topo.broadcast_tree(src)
        slot_of = {src: 0}
        edges: list[tuple[int, int]] = []
        frontier = deque((src,))
        while frontier:
            node = frontier.popleft()
            parent_slot = slot_of[node]
            for child in tree[node]:
                slot_of[child] = len(edges) + 1
                edges.append((parent_slot, self._port(node, child)))
                frontier.append(child)
        order = tuple(
            (core, slot_of[core]) for core in topo.broadcast_order(src)
        )
        return tuple(edges), order

    def _send_broadcast(self, pkt: Packet, n_flits: int) -> list[tuple[int, int]]:
        # Breadth-first replay of the (precomputed) XY spanning tree.
        # Each tree edge is an independently reserved port, so
        # replication fans out in parallel (native hardware multicast).
        # Per-node timing is traversal-order-independent (each tree edge
        # is reserved exactly once and a child's head time depends only
        # on its parent's), so the flattened BFS replay computes the
        # same arrivals the engine always has.  Deliveries are emitted
        # in the topology's canonical ``broadcast_order``: that order
        # decides event-queue tie-breaks downstream and is frozen as
        # part of the determinism contract.
        src = pkt.src
        plan = self._bcast_plan.get(src)
        if plan is None:
            plan = self._bcast_plan[src] = self._bcast_plan_for(src)
        edges, order = plan
        n_edges = len(edges)
        s = self.stats
        s.router_flit_traversals += n_flits * (n_edges + 1)  # + source router
        s.link_flit_traversals += n_flits * n_edges
        s.router_arbitrations += n_edges + 1
        hop_latency = self.timing.hop_latency
        free_at = self._free_at
        busy = self._busy
        heads = [0] * (n_edges + 1)
        heads[0] = pkt.time
        slot = 1
        for parent_slot, i in edges:
            head = heads[parent_slot]
            free = free_at[i]
            start = head if head > free else free
            free_at[i] = start + n_flits
            busy[i] += n_flits
            heads[slot] = start + hop_latency
            slot += 1
        return [(core, heads[slot] + n_flits) for core, slot in order]
