"""The electrical baselines: EMesh-Pure and EMesh-BCast (Section V-A).

Both are 2-D packet-switched meshes with XY dimension-order (oblivious)
routing, wormhole flow control and a single virtual channel, 1-cycle
routers and 1-cycle links (Table I).  They differ only in broadcast
handling:

* **EMesh-Pure**: no multicast hardware -- a broadcast is the source
  injecting N-1 back-to-back unicasts, which serializes at the source
  router and "severely degrad[es] performance for broadcast-heavy
  applications".
* **EMesh-BCast**: routers replicate flits along an XY spanning tree,
  so a broadcast costs one tree traversal.
"""

from __future__ import annotations

from repro.network.engine import MeshTiming, Network, PortResource
from repro.network.topology import MeshTopology
from repro.network.types import Packet


class _MeshBase(Network):
    """Shared XY-routed mesh machinery."""

    def __init__(
        self,
        topology: MeshTopology,
        flit_bits: int = 64,
        timing: MeshTiming | None = None,
    ) -> None:
        super().__init__(topology, flit_bits)
        self.timing = timing if timing is not None else MeshTiming()
        self._ports: dict[tuple[int, int], PortResource] = {}

    def _port(self, u: int, v: int) -> PortResource:
        """The output port of router ``u`` facing neighbour ``v``."""
        key = (u, v)
        port = self._ports.get(key)
        if port is None:
            port = self._ports[key] = PortResource()
        return port

    def _traverse(self, src: int, dst: int, t: int, n_flits: int) -> int:
        """Route one packet src->dst starting at time t; returns arrival.

        Walks the XY path reserving each hop's output port; counts
        router/link flit traversals for the energy model.
        """
        path = self.topology.xy_route(src, dst)
        hops = len(path) - 1
        s = self.stats
        s.router_flit_traversals += n_flits * (hops + 1)  # incl. ejection router
        s.link_flit_traversals += n_flits * hops
        s.router_arbitrations += hops + 1
        head = t
        hop_latency = self.timing.hop_latency
        for i in range(hops):
            port = self._port(path[i], path[i + 1])
            head = port.reserve(head, n_flits) + hop_latency
        # head has arrived; the tail needs the serialization time.
        return head + n_flits

    def mesh_port_count(self) -> int:
        """Instantiated (lazily created) ports so far -- for tests."""
        return len(self._ports)


class EMeshPure(_MeshBase):
    """Plain electrical mesh: broadcasts are N-1 serialized unicasts."""

    @property
    def name(self) -> str:
        return "EMesh-Pure"

    def _send_unicast(self, pkt: Packet, n_flits: int) -> list[tuple[int, int]]:
        arrival = self._traverse(pkt.src, pkt.dst, pkt.time, n_flits)
        return [(pkt.dst, arrival)]

    def _send_broadcast(self, pkt: Packet, n_flits: int) -> list[tuple[int, int]]:
        # The source's network interface injects one unicast per
        # destination; they contend for the source's output ports and
        # serialize there, which is exactly the EMesh-Pure penalty.
        deliveries = []
        for dst in range(self.topology.n_cores):
            if dst == pkt.src:
                continue
            arrival = self._traverse(pkt.src, dst, pkt.time, n_flits)
            deliveries.append((dst, arrival))
        return deliveries


class EMeshBCast(_MeshBase):
    """Electrical mesh with native multicast at each router."""

    @property
    def name(self) -> str:
        return "EMesh-BCast"

    def _send_unicast(self, pkt: Packet, n_flits: int) -> list[tuple[int, int]]:
        arrival = self._traverse(pkt.src, pkt.dst, pkt.time, n_flits)
        return [(pkt.dst, arrival)]

    def _send_broadcast(self, pkt: Packet, n_flits: int) -> list[tuple[int, int]]:
        # Breadth-first traversal of the XY spanning tree.  Each tree
        # edge is an independently reserved port, so replication fans
        # out in parallel (native hardware multicast).
        tree = self.topology.broadcast_tree(pkt.src)
        hop_latency = self.timing.hop_latency
        s = self.stats
        deliveries: list[tuple[int, int]] = []
        frontier = [(pkt.src, pkt.time)]
        s.router_flit_traversals += n_flits  # source router
        s.router_arbitrations += 1
        while frontier:
            node, head = frontier.pop()
            for child in tree[node]:
                port = self._port(node, child)
                child_head = port.reserve(head, n_flits) + hop_latency
                s.router_flit_traversals += n_flits
                s.link_flit_traversals += n_flits
                s.router_arbitrations += 1
                deliveries.append((child, child_head + n_flits))
                frontier.append((child, child_head))
        return deliveries
