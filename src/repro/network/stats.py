"""Event counters shared by all network models.

These are the "event counters" of the paper's toolflow (Section V-A):
Graphite counts events, DSENT/McPAT supply per-event energies, and the
energy layer multiplies them together.  Every counter here has a
corresponding per-event energy in :mod:`repro.energy.accounting`.

Counters also feed the paper's traffic metrics directly:

* Figure 5 ("percentage of unicast and broadcast traffic *as measured
  at the receiver*") = ``received_unicast_flits`` vs
  ``received_broadcast_flits``.
* Figure 6 (offered load, flits/cycle/core) = ``injected_flits`` /
  (cycles x cores).
* Table V (adaptive SWMR link utilization, unicast-to-broadcast ratio)
  = the ``onet_*`` counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass(slots=True)
class NetworkStats:
    """Mutable counter bundle; one per network instance.

    ``slots=True``: these counters are read-modify-written on every
    packet hop, so instance-dict lookups were measurable.
    """

    # -- injection / delivery -----------------------------------------
    packets_sent: int = 0
    unicasts_sent: int = 0
    broadcasts_sent: int = 0
    injected_flits: int = 0
    received_unicast_flits: int = 0
    received_broadcast_flits: int = 0

    # -- electrical mesh (ENet or standalone mesh) ---------------------
    router_flit_traversals: int = 0   # flits x routers
    link_flit_traversals: int = 0     # flits x links
    router_arbitrations: int = 0      # per packet per router

    # -- optical ONet ---------------------------------------------------
    onet_unicasts: int = 0
    onet_broadcasts: int = 0
    onet_unicast_flits: int = 0       # flits modulated in unicast mode
    onet_broadcast_flits: int = 0     # flits modulated in broadcast mode
    onet_unicast_cycles: int = 0      # channel-cycles in unicast mode
    onet_broadcast_cycles: int = 0    # channel-cycles in broadcast mode
    onet_select_notifications: int = 0
    onet_mode_transitions: int = 0
    onet_receiver_flits: int = 0      # flits x receivers that detected them

    # -- hubs and cluster receive networks ------------------------------
    hub_flit_traversals: int = 0
    receive_net_unicast_flits: int = 0
    receive_net_broadcast_flits: int = 0

    # -- latency (for Fig 3 and diagnostics) -----------------------------
    latency_sum: int = 0
    latency_count: int = 0
    latency_max: int = 0

    def record_latency(self, latency: int) -> None:
        """Accumulate one packet's source-to-sink latency."""
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        self.latency_sum += latency
        self.latency_count += 1
        if latency > self.latency_max:
            self.latency_max = latency

    @property
    def mean_latency(self) -> float:
        """Average packet latency (cycles); NaN-free: 0.0 if no packets."""
        if self.latency_count == 0:
            return 0.0
        return self.latency_sum / self.latency_count

    @property
    def onet_busy_cycles(self) -> int:
        """Channel-cycles in either active laser mode (Table V numerator)."""
        return self.onet_unicast_cycles + self.onet_broadcast_cycles

    def onet_link_utilization(self, total_cycles: int, n_channels: int) -> float:
        """Fraction of time the adaptive SWMR links spend non-idle.

        Table V reports this per application: "the percentage of time in
        unicast or broadcast modes" -- 6 %-29 % for the studied apps.
        """
        if total_cycles <= 0 or n_channels <= 0:
            raise ValueError("total_cycles and n_channels must be positive")
        return min(1.0, self.onet_busy_cycles / (total_cycles * n_channels))

    def unicasts_per_broadcast(self) -> float:
        """Average unicast packets between successive ONet broadcasts.

        Table V's second column; ``inf`` when no broadcasts occurred.
        """
        if self.onet_broadcasts == 0:
            return float("inf")
        return self.onet_unicasts / self.onet_broadcasts

    def receiver_broadcast_fraction(self) -> float:
        """Fraction of receiver-side traffic that is broadcast (Fig 5)."""
        total = self.received_unicast_flits + self.received_broadcast_flits
        if total == 0:
            return 0.0
        return self.received_broadcast_flits / total

    def offered_load(self, cycles: int, n_cores: int) -> float:
        """Offered load in flits/cycle/core (Fig 6)."""
        if cycles <= 0 or n_cores <= 0:
            raise ValueError("cycles and n_cores must be positive")
        return self.injected_flits / (cycles * n_cores)

    def merged_with(self, other: "NetworkStats") -> "NetworkStats":
        """Sum of two counter bundles (latency max takes the max)."""
        out = NetworkStats()
        for f in fields(NetworkStats):
            setattr(out, f.name, getattr(self, f.name) + getattr(other, f.name))
        out.latency_max = max(self.latency_max, other.latency_max)
        return out

    def as_dict(self) -> dict[str, int]:
        """Plain-dict snapshot (for results serialization)."""
        return {f.name: getattr(self, f.name) for f in fields(NetworkStats)}

    @classmethod
    def from_dict(cls, d: dict) -> "NetworkStats":
        """Inverse of :meth:`as_dict`; unknown keys are ignored so old
        store entries with extra counters deserialize cleanly."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in d.items() if k in known})
