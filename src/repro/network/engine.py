"""Packet-level wormhole timing engine.

All networks in this package share one timing methodology: every
contended hardware resource (a router output port, an optical
wavelength channel, a StarNet ingress) is a :class:`PortResource` that
packets *reserve* in simulation-time order.  A packet's head reaches
hop *h* at ``t_h = max(t_{h-1} + hop_latency, port_h.free_at)`` and the
port then serializes the packet's flits.

This reproduces the two behaviours the paper's evaluations depend on:

* **zero-load latency** = ``hops * (router + link delay) + flits``
  (wormhole pipelining), and
* **saturation**: when offered load exceeds a port's service capacity
  its ``free_at`` runs away from wall-clock time and measured latency
  diverges -- the hockey-stick of Figure 3.

The approximation versus flit-accurate wormhole is that buffers are
unbounded (virtual-cut-through-like); DESIGN.md section 7 flags this
and ``benchmarks`` cross-validate zero-load latency analytically.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.network.stats import NetworkStats
from repro.network.topology import MeshTopology
from repro.network.types import BROADCAST, Packet


class PortResource:
    """A single-server resource serialized in reservation order."""

    __slots__ = ("free_at", "busy_cycles")

    def __init__(self) -> None:
        self.free_at = 0
        self.busy_cycles = 0

    def reserve(self, earliest: int, duration: int) -> int:
        """Reserve the port for ``duration`` cycles at or after ``earliest``.

        Returns the actual start time (>= ``earliest``).
        """
        if earliest < 0:
            raise ValueError(f"earliest must be non-negative, got {earliest}")
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        start = max(earliest, self.free_at)
        self.free_at = start + duration
        self.busy_cycles += duration
        return start


class MultiPortResource:
    """A k-server resource (e.g. the two StarNets per cluster, Table I)."""

    __slots__ = ("free_at", "busy_cycles")

    def __init__(self, n_servers: int) -> None:
        if n_servers < 1:
            raise ValueError(f"n_servers must be >= 1, got {n_servers}")
        self.free_at = [0] * n_servers
        self.busy_cycles = 0

    def reserve(self, earliest: int, duration: int) -> int:
        """Reserve the earliest-free server; returns the start time."""
        if earliest < 0:
            raise ValueError(f"earliest must be non-negative, got {earliest}")
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        idx = min(range(len(self.free_at)), key=self.free_at.__getitem__)
        start = max(earliest, self.free_at[idx])
        self.free_at[idx] = start + duration
        self.busy_cycles += duration
        return start


@dataclass(frozen=True)
class MeshTiming:
    """Electrical mesh timing (Table I)."""

    router_delay: int = 1
    link_delay: int = 1

    @property
    def hop_latency(self) -> int:
        return self.router_delay + self.link_delay


class Network(ABC):
    """Common interface of EMesh-Pure, EMesh-BCast and ATAC/ATAC+.

    ``send`` must be called with non-decreasing ``packet.time`` values
    (the event-driven simulator guarantees this); each call reserves
    resources and immediately returns the delivery schedule.
    """

    def __init__(self, topology: MeshTopology, flit_bits: int = 64) -> None:
        if flit_bits <= 0:
            raise ValueError(f"flit_bits must be positive, got {flit_bits}")
        self.topology = topology
        self.flit_bits = flit_bits
        self.stats = NetworkStats()
        self._last_send_time = 0
        # size_bits -> flit count; traffic uses a couple of distinct
        # message sizes, so the ceil-divide is paid once per size.
        self._n_flits_cache: dict[int, int] = {}

    @property
    @abstractmethod
    def name(self) -> str:
        """Architecture label as used in the paper's figures."""

    @abstractmethod
    def _send_unicast(self, pkt: Packet, n_flits: int) -> list[tuple[int, int]]:
        """Deliver a unicast; returns [(dst_core, arrival_time)]."""

    @abstractmethod
    def _send_broadcast(self, pkt: Packet, n_flits: int) -> list[tuple[int, int]]:
        """Deliver a broadcast; returns [(core, arrival_time), ...] for
        every core except the source."""

    def send(self, pkt: Packet) -> list[tuple[int, int]]:
        """Inject a packet; returns the delivery schedule.

        For unicasts the schedule has one entry; for broadcasts, one per
        core on the chip except the sender.
        """
        if pkt.time < self._last_send_time:
            raise ValueError(
                f"sends must be time-ordered: got t={pkt.time} after "
                f"t={self._last_send_time}"
            )
        self._last_send_time = pkt.time
        n_flits = self._n_flits_cache.get(pkt.size_bits)
        if n_flits is None:
            n_flits = self._n_flits_cache[pkt.size_bits] = pkt.n_flits(
                self.flit_bits
            )
        s = self.stats
        s.packets_sent += 1
        s.injected_flits += n_flits
        if pkt.dst == BROADCAST:
            s.broadcasts_sent += 1
            deliveries = self._send_broadcast(pkt, n_flits)
            s.received_broadcast_flits += n_flits * len(deliveries)
            # Accumulate latency inline (same arithmetic as
            # record_latency) rather than one method call per delivery
            # -- a broadcast has n_cores - 1 deliveries.
            t = pkt.time
            lat_sum = 0
            lat_max = s.latency_max
            for _, arrival in deliveries:
                lat = arrival - t
                if lat < 0:
                    raise ValueError(
                        f"latency must be non-negative, got {lat}"
                    )
                lat_sum += lat
                if lat > lat_max:
                    lat_max = lat
            s.latency_sum += lat_sum
            s.latency_count += len(deliveries)
            s.latency_max = lat_max
            return deliveries
        if pkt.dst == pkt.src:
            # Local delivery: no network resources involved.
            s.unicasts_sent += 1
            s.received_unicast_flits += n_flits
            s.record_latency(1)
            return [(pkt.dst, pkt.time + 1)]
        s.unicasts_sent += 1
        deliveries = self._send_unicast(pkt, n_flits)
        s.received_unicast_flits += n_flits
        lat = deliveries[0][1] - pkt.time
        if lat < 0:
            raise ValueError(f"latency must be non-negative, got {lat}")
        s.latency_sum += lat
        s.latency_count += 1
        if lat > s.latency_max:
            s.latency_max = lat
        return deliveries

    def reset_stats(self) -> NetworkStats:
        """Swap in a fresh counter bundle; returns the old one.

        Used to discard warm-up statistics in open-loop load sweeps.
        """
        old = self.stats
        self.stats = NetworkStats()
        return old
