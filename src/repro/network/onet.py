"""The ONet: a WDM optical broadcast ring of adaptive SWMR links.

Section III-A + IV-A.  Each of the 64 cluster hubs owns one wavelength
and modulates it onto the data waveguides; every other hub carries
filter rings for that wavelength.  A transmission is therefore
contention-free per sender -- the only queueing is at the sender's own
channel.

The **adaptive SWMR link** (Figure 2) adds a ``log2(C)``-bit select
link and an on-chip Ge laser that switches between three modes within
1 ns:

* ``IDLE``      -- laser off (if power-gating is available),
* ``UNICAST``   -- laser biased for exactly one receiver,
* ``BROADCAST`` -- laser biased for all C-1 receivers.

Before data is sent, the intended receiver(s) are notified on the
select link exactly one cycle early (Table I: "ONet Select - Data Link
Lag: 1 cycle") so their rings tune in; the data then takes 3 cycles of
link delay plus flit serialization.

This module records, per channel, the cycles spent in each mode and the
number of mode transitions -- the inputs to the laser-energy accounting
under the four Table IV technology scenarios and to Table V.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.network.stats import NetworkStats


class LaserMode(Enum):
    IDLE = "idle"
    UNICAST = "unicast"
    BROADCAST = "broadcast"


@dataclass(frozen=True)
class OnetTiming:
    """Optical network timing (Table I)."""

    link_delay: int = 3
    select_data_lag: int = 1


class AdaptiveSWMRLink:
    """One hub's SWMR channel: single writer, C-1 candidate readers."""

    __slots__ = (
        "hub",
        "n_hubs",
        "timing",
        "stats",
        "free_at",
        "last_mode",
        "unicast_cycles",
        "broadcast_cycles",
        "mode_transitions",
    )

    def __init__(
        self,
        hub: int,
        n_hubs: int,
        timing: OnetTiming | None = None,
        stats: NetworkStats | None = None,
    ) -> None:
        if n_hubs < 2:
            raise ValueError(f"n_hubs must be >= 2, got {n_hubs}")
        if not 0 <= hub < n_hubs:
            raise ValueError(f"hub {hub} outside [0, {n_hubs})")
        self.hub = hub
        self.n_hubs = n_hubs
        self.timing = timing if timing is not None else OnetTiming()
        self.stats = stats if stats is not None else NetworkStats()
        self.free_at = 0
        self.last_mode = LaserMode.IDLE
        self.unicast_cycles = 0
        self.broadcast_cycles = 0
        self.mode_transitions = 0

    # ------------------------------------------------------------------
    def transmit(
        self, time: int, n_flits: int, broadcast: bool
    ) -> tuple[int, int]:
        """Send one message on this channel.

        Parameters
        ----------
        time:
            Cycle at which the message is ready at the sending hub.
        n_flits:
            Message length.
        broadcast:
            Broadcast (all hubs tune in) vs unicast (one hub tunes in).

        Returns
        -------
        (data_start, hub_arrival):
            ``data_start`` is when the first flit hits the waveguide;
            ``hub_arrival`` is when the tail flit is available at the
            receiving hub(s) -- identical for every receiver, since all
            hubs see the ring simultaneously (modulo ps-scale flight
            time folded into the 3-cycle link delay).
        """
        if time < 0:
            raise ValueError(f"time must be non-negative, got {time}")
        if n_flits < 1:
            raise ValueError(f"n_flits must be >= 1, got {n_flits}")
        t = self.timing
        # The select-link notification goes out first; data follows one
        # cycle later.  The laser retarget/power-up also fits in that
        # cycle (both are 1 ns operations, Section IV-A).
        prev_free_at = self.free_at
        data_start = max(time + t.select_data_lag, self.free_at)
        self.free_at = data_start + n_flits
        hub_arrival = data_start + t.link_delay + n_flits

        mode = LaserMode.BROADCAST if broadcast else LaserMode.UNICAST
        if data_start > prev_free_at:
            # There was an idle gap: the laser dropped to IDLE after the
            # previous message (one transition, unless it was already
            # idle) and now powers back up (another).
            transitions = (0 if self.last_mode is LaserMode.IDLE else 1) + 1
        else:
            # Back-to-back messages: the laser re-biases only if the
            # mode actually changes.
            transitions = 0 if mode is self.last_mode else 1
        self.mode_transitions += transitions
        self.stats.onet_mode_transitions += transitions
        self.last_mode = mode

        s = self.stats
        s.onet_select_notifications += 1
        if broadcast:
            self.broadcast_cycles += n_flits
            s.onet_broadcasts += 1
            s.onet_broadcast_flits += n_flits
            s.onet_broadcast_cycles += n_flits
            s.onet_receiver_flits += n_flits * (self.n_hubs - 1)
        else:
            self.unicast_cycles += n_flits
            s.onet_unicasts += 1
            s.onet_unicast_flits += n_flits
            s.onet_unicast_cycles += n_flits
            s.onet_receiver_flits += n_flits
        return data_start, hub_arrival

    # ------------------------------------------------------------------
    def idle_cycles(self, total_cycles: int) -> int:
        """Cycles this channel spent dark over a run of ``total_cycles``."""
        if total_cycles < 0:
            raise ValueError(f"total_cycles must be non-negative, got {total_cycles}")
        busy = self.unicast_cycles + self.broadcast_cycles
        return max(0, total_cycles - busy)

    def utilization(self, total_cycles: int) -> float:
        """Fraction of time in unicast or broadcast mode (Table V)."""
        if total_cycles <= 0:
            raise ValueError(f"total_cycles must be positive, got {total_cycles}")
        busy = self.unicast_cycles + self.broadcast_cycles
        return min(1.0, busy / total_cycles)
