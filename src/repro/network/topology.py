"""Mesh/cluster geometry: coordinates, XY routes, clusters and hubs.

The 1024-core ATAC chip is a 32x32 mesh of cores grouped into 64
clusters of 4x4 cores (Section III-A).  All geometric questions --
"what is the Manhattan distance between cores 37 and 901?", "which hub
serves core 512?", "what is the XY route?" -- are answered here, for
any square mesh whose edge is a multiple of the cluster edge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache


@dataclass(frozen=True)
class MeshTopology:
    """A ``width x width`` core mesh with ``cluster_width``-square clusters.

    Attributes
    ----------
    width:
        Cores per mesh edge (32 for the paper's 1024-core chip).
    cluster_width:
        Cores per cluster edge (4 for the paper's 16-core clusters).
    """

    width: int = 32
    cluster_width: int = 4

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"width must be >= 1, got {self.width}")
        if self.cluster_width < 1:
            raise ValueError(f"cluster_width must be >= 1, got {self.cluster_width}")
        if self.width % self.cluster_width:
            raise ValueError(
                f"mesh width {self.width} not a multiple of cluster width "
                f"{self.cluster_width}"
            )

    # -- basic counts ---------------------------------------------------
    @property
    def n_cores(self) -> int:
        return self.width * self.width

    @property
    def cluster_size(self) -> int:
        """Cores per cluster (16 in the paper)."""
        return self.cluster_width * self.cluster_width

    @property
    def clusters_per_edge(self) -> int:
        return self.width // self.cluster_width

    @property
    def n_clusters(self) -> int:
        return self.clusters_per_edge * self.clusters_per_edge

    # -- coordinates ----------------------------------------------------
    def coords(self, core: int) -> tuple[int, int]:
        """(x, y) position of a core id (row-major)."""
        self._check_core(core)
        return core % self.width, core // self.width

    def core_at(self, x: int, y: int) -> int:
        """Core id at mesh position (x, y)."""
        if not (0 <= x < self.width and 0 <= y < self.width):
            raise ValueError(f"({x},{y}) outside {self.width}x{self.width} mesh")
        return y * self.width + x

    def manhattan(self, a: int, b: int) -> int:
        """Manhattan (mesh hop) distance between two cores.

        This is the distance metric of the distance-based routing
        protocol (Section IV-C): "distance is defined as the manhattan
        distance between the sender and receiver as measured over an
        electrical mesh network".
        """
        ax, ay = self.coords(a)
        bx, by = self.coords(b)
        return abs(ax - bx) + abs(ay - by)

    # -- clusters and hubs ------------------------------------------------
    def cluster_of(self, core: int) -> int:
        """Cluster id containing a core (row-major over the cluster grid)."""
        x, y = self.coords(core)
        cx, cy = x // self.cluster_width, y // self.cluster_width
        return cy * self.clusters_per_edge + cx

    def cluster_cores(self, cluster: int) -> list[int]:
        """All core ids in a cluster."""
        self._check_cluster(cluster)
        cx = (cluster % self.clusters_per_edge) * self.cluster_width
        cy = (cluster // self.clusters_per_edge) * self.cluster_width
        return [
            self.core_at(cx + dx, cy + dy)
            for dy in range(self.cluster_width)
            for dx in range(self.cluster_width)
        ]

    def hub_core(self, cluster: int) -> int:
        """Mesh position (as a core id) of the cluster's ONet hub.

        The hub sits near the cluster centre so ENet trips to it are
        short from every member core.
        """
        self._check_cluster(cluster)
        cx = (cluster % self.clusters_per_edge) * self.cluster_width
        cy = (cluster // self.clusters_per_edge) * self.cluster_width
        mid = self.cluster_width // 2
        return self.core_at(cx + mid, cy + mid)

    def memctrl_core(self, cluster: int) -> int:
        """Core position replaced by the cluster's memory controller.

        Section III-B: "Each cluster has one core replaced by a memory
        controller."  We place it at the cluster's origin corner.
        """
        self._check_cluster(cluster)
        cx = (cluster % self.clusters_per_edge) * self.cluster_width
        cy = (cluster // self.clusters_per_edge) * self.cluster_width
        return self.core_at(cx, cy)

    def memctrl_cores(self) -> list[int]:
        """All memory-controller positions, one per cluster."""
        return [self.memctrl_core(c) for c in range(self.n_clusters)]

    def compute_cores(self) -> list[int]:
        """Core ids that execute application threads (non-memctrl)."""
        mem = set(self.memctrl_cores())
        return [c for c in range(self.n_cores) if c not in mem]

    # -- routing ----------------------------------------------------------
    def xy_route(self, src: int, dst: int) -> list[int]:
        """Dimension-ordered (X then Y) route, inclusive of endpoints."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        path = [src]
        x, y = sx, sy
        step = 1 if dx > x else -1
        while x != dx:
            x += step
            path.append(self.core_at(x, y))
        step = 1 if dy > y else -1
        while y != dy:
            y += step
            path.append(self.core_at(x, y))
        return path

    def broadcast_tree(self, src: int) -> dict[int, list[int]]:
        """XY-dimension-ordered multicast tree rooted at ``src``.

        Returns ``{node: [children]}``.  The tree first spans the root's
        row (X dimension), then each row node spans its column (Y
        dimension) -- the standard mesh multicast used by routers with
        native broadcast support (EMesh-BCast).
        """
        children: dict[int, list[int]] = {src: []}
        sx, sy = self.coords(src)
        # span the row
        for direction in (-1, 1):
            prev = src
            x = sx + direction
            while 0 <= x < self.width:
                node = self.core_at(x, sy)
                children.setdefault(prev, []).append(node)
                children.setdefault(node, [])
                prev = node
                x += direction
        # each row node spans its column
        for x in range(self.width):
            row_node = self.core_at(x, sy)
            for direction in (-1, 1):
                prev = row_node
                y = sy + direction
                while 0 <= y < self.width:
                    node = self.core_at(x, y)
                    children.setdefault(prev, []).append(node)
                    children.setdefault(node, [])
                    prev = node
                    y += direction
        return children

    # -- link geometry ------------------------------------------------------
    def hop_length_mm(self, die_edge_mm: float = 20.0) -> float:
        """Physical length of one mesh hop for the energy models (mm)."""
        if die_edge_mm <= 0:
            raise ValueError(f"die_edge_mm must be positive, got {die_edge_mm}")
        return die_edge_mm / self.width

    # -- checks ---------------------------------------------------------
    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.n_cores:
            raise ValueError(f"core {core} outside [0, {self.n_cores})")

    def _check_cluster(self, cluster: int) -> None:
        if not 0 <= cluster < self.n_clusters:
            raise ValueError(f"cluster {cluster} outside [0, {self.n_clusters})")


#: The paper's chip: 32x32 cores, 4x4-core clusters, 64 hubs.
ATAC_1024 = MeshTopology(width=32, cluster_width=4)
