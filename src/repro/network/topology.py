"""Mesh/cluster geometry: coordinates, XY routes, clusters and hubs.

The 1024-core ATAC chip is a 32x32 mesh of cores grouped into 64
clusters of 4x4 cores (Section III-A).  All geometric questions --
"what is the Manhattan distance between cores 37 and 901?", "which hub
serves core 512?", "what is the XY route?" -- are answered here, for
any square mesh whose edge is a multiple of the cluster edge.

Geometry is pure and a :class:`MeshTopology` is immutable, so the
expensive accessors (``xy_route``, ``broadcast_tree``,
``cluster_cores``, ``compute_cores``) are memoized per instance: the
timing engines ask the same geometric questions once per *packet*, and
rebuilding a 30-node route list or a 1024-node spanning tree each time
dominated the simulator's profile.  Memoized accessors return
**tuples** (and tuple-valued tree dicts) so a cache hit can safely
hand out the same object without aliasing bugs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class MeshTopology:
    """A ``width x width`` core mesh with ``cluster_width``-square clusters.

    Attributes
    ----------
    width:
        Cores per mesh edge (32 for the paper's 1024-core chip).
    cluster_width:
        Cores per cluster edge (4 for the paper's 16-core clusters).
    """

    width: int = 32
    cluster_width: int = 4
    # Per-instance memo tables.  Excluded from __eq__/__hash__/__repr__
    # so two topologies with equal dimensions stay equal; ``hash=False``
    # plus ``compare=False`` keeps the frozen dataclass hashable.
    _route_cache: dict = field(
        default_factory=dict, init=False, repr=False, compare=False, hash=False
    )
    _tree_cache: dict = field(
        default_factory=dict, init=False, repr=False, compare=False, hash=False
    )
    _cluster_cache: dict = field(
        default_factory=dict, init=False, repr=False, compare=False, hash=False
    )
    _cluster_of_table: tuple = field(
        default=(), init=False, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"width must be >= 1, got {self.width}")
        if self.cluster_width < 1:
            raise ValueError(f"cluster_width must be >= 1, got {self.cluster_width}")
        if self.width % self.cluster_width:
            raise ValueError(
                f"mesh width {self.width} not a multiple of cluster width "
                f"{self.cluster_width}"
            )
        w, cw, cpe = self.width, self.cluster_width, self.clusters_per_edge
        object.__setattr__(
            self,
            "_cluster_of_table",
            tuple((c // w // cw) * cpe + (c % w) // cw for c in range(w * w)),
        )

    # -- basic counts ---------------------------------------------------
    @property
    def n_cores(self) -> int:
        return self.width * self.width

    @property
    def cluster_size(self) -> int:
        """Cores per cluster (16 in the paper)."""
        return self.cluster_width * self.cluster_width

    @property
    def clusters_per_edge(self) -> int:
        return self.width // self.cluster_width

    @property
    def n_clusters(self) -> int:
        return self.clusters_per_edge * self.clusters_per_edge

    # -- coordinates ----------------------------------------------------
    def coords(self, core: int) -> tuple[int, int]:
        """(x, y) position of a core id (row-major)."""
        self._check_core(core)
        return core % self.width, core // self.width

    def core_at(self, x: int, y: int) -> int:
        """Core id at mesh position (x, y)."""
        if not (0 <= x < self.width and 0 <= y < self.width):
            raise ValueError(f"({x},{y}) outside {self.width}x{self.width} mesh")
        return y * self.width + x

    def manhattan(self, a: int, b: int) -> int:
        """Manhattan (mesh hop) distance between two cores.

        This is the distance metric of the distance-based routing
        protocol (Section IV-C): "distance is defined as the manhattan
        distance between the sender and receiver as measured over an
        electrical mesh network".
        """
        self._check_core(a)
        self._check_core(b)
        w = self.width
        return abs(a % w - b % w) + abs(a // w - b // w)

    # -- clusters and hubs ------------------------------------------------
    def cluster_of(self, core: int) -> int:
        """Cluster id containing a core (row-major over the cluster grid)."""
        self._check_core(core)
        return self._cluster_of_table[core]

    def cluster_cores(self, cluster: int) -> tuple[int, ...]:
        """All core ids in a cluster (memoized; same tuple per cluster)."""
        cached = self._cluster_cache.get(cluster)
        if cached is not None:
            return cached
        self._check_cluster(cluster)
        cx = (cluster % self.clusters_per_edge) * self.cluster_width
        cy = (cluster // self.clusters_per_edge) * self.cluster_width
        cores = tuple(
            self.core_at(cx + dx, cy + dy)
            for dy in range(self.cluster_width)
            for dx in range(self.cluster_width)
        )
        self._cluster_cache[cluster] = cores
        return cores

    def hub_core(self, cluster: int) -> int:
        """Mesh position (as a core id) of the cluster's ONet hub.

        The hub sits near the cluster centre so ENet trips to it are
        short from every member core.
        """
        self._check_cluster(cluster)
        cx = (cluster % self.clusters_per_edge) * self.cluster_width
        cy = (cluster // self.clusters_per_edge) * self.cluster_width
        mid = self.cluster_width // 2
        return self.core_at(cx + mid, cy + mid)

    def memctrl_core(self, cluster: int) -> int:
        """Core position replaced by the cluster's memory controller.

        Section III-B: "Each cluster has one core replaced by a memory
        controller."  We place it at the cluster's origin corner.
        """
        self._check_cluster(cluster)
        cx = (cluster % self.clusters_per_edge) * self.cluster_width
        cy = (cluster // self.clusters_per_edge) * self.cluster_width
        return self.core_at(cx, cy)

    def memctrl_cores(self) -> tuple[int, ...]:
        """All memory-controller positions, one per cluster (memoized)."""
        cached = self._cluster_cache.get("memctrl")
        if cached is None:
            cached = tuple(
                self.memctrl_core(c) for c in range(self.n_clusters)
            )
            self._cluster_cache["memctrl"] = cached
        return cached

    def compute_cores(self) -> tuple[int, ...]:
        """Core ids that execute application threads (memoized)."""
        cached = self._cluster_cache.get("compute")
        if cached is None:
            mem = set(self.memctrl_cores())
            cached = tuple(c for c in range(self.n_cores) if c not in mem)
            self._cluster_cache["compute"] = cached
        return cached

    # -- routing ----------------------------------------------------------
    def xy_route(self, src: int, dst: int) -> tuple[int, ...]:
        """Dimension-ordered (X then Y) route, inclusive of endpoints.

        Memoized per (src, dst): repeated sends between the same pair --
        the common case under any locality-bearing workload -- return
        the identical tuple with no list building.
        """
        key = src * self.n_cores + dst
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        path = [src]
        x, y = sx, sy
        step = 1 if dx > x else -1
        while x != dx:
            x += step
            path.append(self.core_at(x, y))
        step = 1 if dy > y else -1
        while y != dy:
            y += step
            path.append(self.core_at(x, y))
        route = tuple(path)
        self._route_cache[key] = route
        return route

    def broadcast_tree(self, src: int) -> dict[int, tuple[int, ...]]:
        """XY-dimension-ordered multicast tree rooted at ``src``.

        Returns ``{node: (children...)}``, memoized per root (the same
        dict object on every hit -- treat it as read-only).  The tree
        first spans the root's row (X dimension), then each row node
        spans its column (Y dimension) -- the standard mesh multicast
        used by routers with native broadcast support (EMesh-BCast).
        """
        cached = self._tree_cache.get(src)
        if cached is not None:
            return cached
        children: dict[int, list[int]] = {src: []}
        sx, sy = self.coords(src)
        # span the row
        for direction in (-1, 1):
            prev = src
            x = sx + direction
            while 0 <= x < self.width:
                node = self.core_at(x, sy)
                children.setdefault(prev, []).append(node)
                children.setdefault(node, [])
                prev = node
                x += direction
        # each row node spans its column
        for x in range(self.width):
            row_node = self.core_at(x, sy)
            for direction in (-1, 1):
                prev = row_node
                y = sy + direction
                while 0 <= y < self.width:
                    node = self.core_at(x, y)
                    children.setdefault(prev, []).append(node)
                    children.setdefault(node, [])
                    prev = node
                    y += direction
        tree = {node: tuple(ch) for node, ch in children.items()}
        self._tree_cache[src] = tree
        return tree

    def broadcast_order(self, src: int) -> tuple[int, ...]:
        """Canonical delivery order of a broadcast from ``src`` (memoized).

        Every core except ``src``, in the order the EMesh-BCast engine
        has always emitted deliveries (the historical stack-order walk
        of :meth:`broadcast_tree`).  Delivery order is *observable*
        simulator behaviour -- it decides event-queue tie-breaks among
        same-cycle arrivals -- so it is pinned here as part of the
        determinism contract, independent of how the timing engine
        chooses to traverse the tree.
        """
        cached = self._tree_cache.get(("order", src))
        if cached is not None:
            return cached
        tree = self.broadcast_tree(src)
        order: list[int] = []
        stack = [src]
        while stack:
            node = stack.pop()
            for child in tree[node]:
                order.append(child)
                stack.append(child)
        result = tuple(order)
        self._tree_cache[("order", src)] = result
        return result

    # -- link geometry ------------------------------------------------------
    def hop_length_mm(self, die_edge_mm: float = 20.0) -> float:
        """Physical length of one mesh hop for the energy models (mm)."""
        if die_edge_mm <= 0:
            raise ValueError(f"die_edge_mm must be positive, got {die_edge_mm}")
        return die_edge_mm / self.width

    # -- checks ---------------------------------------------------------
    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.n_cores:
            raise ValueError(f"core {core} outside [0, {self.n_cores})")

    def _check_cluster(self, cluster: int) -> None:
        if not 0 <= cluster < self.n_clusters:
            raise ValueError(f"cluster {cluster} outside [0, {self.n_clusters})")


#: The paper's chip: 32x32 cores, 4x4-core clusters, 64 hubs.
ATAC_1024 = MeshTopology(width=32, cluster_width=4)
