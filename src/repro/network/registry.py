"""The network architecture registry: one typed descriptor per network.

The paper's central methodological point is *cross-layer*: a network
architecture is simultaneously a timing model (the event-driven
``Network``), an energy model (which Figure-7 wedges exist and how the
counters price out), an area model (Figure 10), and an experiment axis
(which figures sweep it).  This module binds all of those facets into a
single :class:`NetworkDescriptor` so that adding an architecture is one
registration here -- the config layer, the energy/area roll-ups, the
figure drivers, the CLI and the fuzzer all resolve through the registry
instead of string-matching ``config.network``.

``tests/test_no_string_dispatch.py`` enforces the invariant: this file
is the only place in ``src/repro`` where network names may be dispatched
on or enumerated.

Registered architectures
------------------------

=============  ============  ====================================================
name           display name  architecture
=============  ============  ====================================================
``atac+``      ATAC+         hybrid: ENet + adaptive-SWMR ONet + StarNet,
                             distance-based unicast routing (the paper's design)
``atac``       ATAC          original hybrid: BNet receive, cluster routing
``emesh-bcast``  EMesh-BCast electrical mesh with native router multicast
``emesh-pure``   EMesh-Pure  electrical mesh; broadcasts = N-1 unicasts
``corona``     Corona        all-optical MWSR crossbar (Vantrease et al.):
                             receivers own channels, writers arbitrate by token
``hermes``     HERMES        hierarchical broadcast network (Mohamed et al.):
                             global optical channel -> region heads -> clusters,
                             all unicasts electrical
=============  ============  ====================================================

How to add a network (one file)
-------------------------------

1. implement the timing model (a :class:`~repro.network.engine.Network`
   subclass, usually via :class:`~repro.network.atac.AtacNetwork` or
   :class:`~repro.network.mesh._MeshBase`);
2. call :func:`register` with a :class:`NetworkDescriptor` naming a
   ``build`` factory and (if the fabric has optical/cluster hardware)
   ``energy_components`` / ``area_components`` builders;
3. done: ``SystemConfig`` validation, ``repro run/sweep/fuzz``, the
   sweep grid and the sanitizer/fuzzer matrix pick it up automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.network.atac import AtacNetwork
from repro.network.corona import CoronaNetwork
from repro.network.engine import Network
from repro.network.hermes import HermesNetwork, hermes_regions
from repro.network.mesh import EMeshBCast, EMeshPure
from repro.network.routing import ClusterRouting, DistanceRouting
from repro.tech.photonics import OnetGeometry


class UnknownNetworkError(ValueError):
    """Raised for a network name with no registered descriptor."""

    def __init__(self, name: str) -> None:
        super().__init__(
            f"unknown network {name!r}: registered networks are "
            f"{tuple(REGISTRY)}"
        )
        self.name = name


@dataclass(frozen=True)
class NetworkDescriptor:
    """Everything the rest of the system needs to know about a network.

    ``build`` receives a ``SystemConfig`` (duck-typed here to keep this
    module import-light; ``repro.sim.config`` imports *us*) and returns
    the event-driven timing model.  ``energy_components`` /
    ``area_components`` return the extra component-key -> value entries
    beyond the electrical-mesh + cache baseline that every architecture
    shares; ``None`` means the baseline is the whole story.
    """

    #: configuration key (``SystemConfig.network``, CLI ``--networks``).
    name: str
    #: label used in the paper's figures (``RunResult.network``).
    display_name: str
    #: one-line architecture summary (shown by ``repro list``).
    summary: str
    #: ``SystemConfig -> Network`` factory.
    build: Callable[..., Network]
    #: carries traffic on photonic hardware (drives the optical energy
    #: wedges and the laser/ring accounting).
    optical: bool = False
    #: broadcasts are delivered natively (vs. N-1 serialized unicasts).
    native_broadcast: bool = True
    #: has cluster hubs + receive networks (hub/receive-net wedges).
    clustered: bool = False
    #: receive-net kinds the config may select for this network.
    valid_receive_nets: tuple[str, ...] = ("starnet", "bnet")
    #: fixed receive-net kind, overriding ``config.receive_net``
    #: (original ATAC is defined by its BNet).
    receive_net_override: str | None = None
    #: smallest cluster count the fabric can be instantiated with
    #: (optical SWMR links need >= 2 endpoints); the fuzzer uses this to
    #: gate networks per mesh width.
    min_clusters: int = 1
    #: experiment axes this network belongs to by default:
    #: ``runtime`` -- the Figure 4/7/8 architecture comparison;
    #: ``edp``     -- the Figure 9/10/14/17 ATAC+-vs-mesh pair;
    #: ``sweep``   -- the ``repro sweep`` default grid.
    axes: frozenset[str] = field(default_factory=frozenset)
    #: extra energy wedges: ``(EnergyModel, RunResult, TechScenario) ->
    #: {component: joules}``.
    energy_components: Callable[..., dict] | None = None
    #: extra area entries: ``AreaModel -> {component: mm^2}``.
    area_components: Callable[..., dict] | None = None

    def resolve_receive_net(self, requested: str) -> str:
        """The receive-net kind actually instantiated for this network."""
        if self.receive_net_override is not None:
            return self.receive_net_override
        return requested


#: name -> descriptor, in registration order (order is meaningful: it
#: fixes CLI listings, axis tuples and golden-pinned column order).
REGISTRY: dict[str, NetworkDescriptor] = {}


def register(descriptor: NetworkDescriptor) -> NetworkDescriptor:
    """Add a descriptor; duplicate names or display names are rejected."""
    if descriptor.name in REGISTRY:
        raise ValueError(f"network {descriptor.name!r} is already registered")
    for existing in REGISTRY.values():
        if existing.display_name == descriptor.display_name:
            raise ValueError(
                f"display name {descriptor.display_name!r} is already "
                f"registered (by {existing.name!r})"
            )
    REGISTRY[descriptor.name] = descriptor
    return descriptor


def get_network(name: str) -> NetworkDescriptor:
    """The descriptor for ``name``; raises :class:`UnknownNetworkError`."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise UnknownNetworkError(name) from None


def for_display_name(display_name: str) -> NetworkDescriptor:
    """The descriptor whose paper label is ``display_name``."""
    for descriptor in REGISTRY.values():
        if descriptor.display_name == display_name:
            return descriptor
    raise UnknownNetworkError(display_name)


def network_names() -> tuple[str, ...]:
    """All registered configuration keys, in registration order."""
    return tuple(REGISTRY)


def experiment_axis(axis: str) -> tuple[str, ...]:
    """Networks belonging to ``axis``, in registration order."""
    return tuple(d.name for d in REGISTRY.values() if axis in d.axes)


def electrical_networks() -> tuple[str, ...]:
    """The non-optical (pure electrical mesh) architectures."""
    return tuple(d.name for d in REGISTRY.values() if not d.optical)


def receive_net_kind(network: str, requested: str) -> str:
    """The receive-net kind a config with these fields instantiates."""
    return get_network(network).resolve_receive_net(requested)


def networks_for_fuzzing(
    mesh_width: int, cluster_width: int = 4
) -> tuple[str, ...]:
    """Networks instantiable at this mesh width (fuzzer case pool)."""
    n_clusters = (mesh_width // cluster_width) ** 2
    return tuple(
        d.name for d in REGISTRY.values() if d.min_clusters <= n_clusters
    )


# ----------------------------------------------------------------------
# energy / area component builders
# ----------------------------------------------------------------------
# These are the single implementations of the optical/cluster hardware
# accounting; descriptors share them (parameterized by channel count)
# so the arithmetic -- and therefore the golden-pinned figures -- stays
# identical for the paper networks.

def optical_energy_components(
    model, result, scenario, n_channels: int | None = None
) -> dict:
    """Laser / ring / Tx-Rx / hub / receive-net wedges (Figure 7).

    ``model`` is the :class:`~repro.energy.accounting.EnergyModel`
    evaluating ``result``; ``n_channels`` is the number of always-on
    optical channels for the non-power-gated laser scenario and the
    ring-tuning inventory (defaults to one channel per hub, the
    ATAC/ATAC+/Corona geometry).
    """
    ns = result.network_stats
    runtime = result.runtime_s
    cycle_s = 1.0 / result.freq_hz
    if n_channels is None:
        n_channels = model.n_hubs
    comp: dict[str, float] = {}
    photonics = scenario.photonic_params(model.base_photonics)
    geometry = OnetGeometry(
        n_hubs=n_channels,
        data_width_bits=model.config.flit_bits,
        params=photonics,
    )
    channel = geometry.data_link(on_chip_laser=scenario.laser_power_gated)
    # one hub "link" = flit_bits wavelength-channels in lockstep
    uni_w = channel.unicast_power_w() * model.config.flit_bits
    bcast_w = channel.broadcast_power_w() * model.config.flit_bits
    active = (
        ns.onet_unicast_cycles * uni_w
        + ns.onet_broadcast_cycles * bcast_w
    ) * cycle_s
    # laser settle/re-bias energy per mode transition (the 1 ns
    # power-up window of the on-chip Ge laser, Section II-A)
    active += (
        ns.onet_mode_transitions
        * channel.transition_energy_j()
        * model.config.flit_bits
    )
    if scenario.laser_power_gated:
        comp["laser"] = active
    else:
        # Laser stuck at worst-case broadcast power on every channel
        # for the whole run (ATAC+(Cons)).
        comp["laser"] = (
            bcast_w * n_channels * result.completion_cycles * cycle_s
        )
    comp["ring_tuning"] = (
        geometry.ring_tuning_power_w(athermal=scenario.athermal_rings)
        * runtime
    )
    bits = model.config.flit_bits
    mod_j = photonics.modulator_energy_fj_per_bit * 1e-15 * bits
    rx_j = photonics.receiver_energy_fj_per_bit * 1e-15 * bits
    comp["modulator_receiver"] = (
        (ns.onet_unicast_flits + ns.onet_broadcast_flits) * mod_j
        + ns.onet_receiver_flits * rx_j
        + ns.onet_select_notifications * mod_j * 0.1  # select link
    )
    comp["hub"] = (
        ns.hub_flit_traversals * model.hub.flit_energy_j()
        + runtime
        * model.n_hubs
        * (model.hub.clock_power_w(result.freq_hz) + model.hub.leakage_power_w())
    )
    comp["receive_net"] = (
        ns.receive_net_unicast_flits * model.receive_net.unicast_energy_j()
        + ns.receive_net_broadcast_flits * model.receive_net.broadcast_energy_j()
        + runtime * model.n_hubs * 2 * model.receive_net.leakage_power_w()
    )
    return comp


def clustered_area_components(model, n_channels: int | None = None) -> dict:
    """Hub / receive-net / photonics areas (Figure 10).

    ``model`` is the :class:`~repro.energy.area.AreaModel`;
    ``n_channels`` sizes the photonic inventory (default: one channel
    per cluster hub).
    """
    from repro.tech.dsent import HubModel, ReceiveNetModel

    cfg = model.config
    topo = cfg.topology
    kind = receive_net_kind(cfg.network, cfg.receive_net)
    if n_channels is None:
        n_channels = topo.n_clusters
    comp: dict[str, float] = {}
    comp["hubs"] = topo.n_clusters * HubModel(cfg.flit_bits).area_mm2()
    comp["receive_net"] = (
        topo.n_clusters
        * 2
        * ReceiveNetModel(
            kind=kind, width_bits=cfg.flit_bits,
            cluster_size=topo.cluster_size,
        ).area_mm2()
    )
    comp["photonics"] = OnetGeometry(
        n_hubs=n_channels,
        data_width_bits=cfg.flit_bits,
        params=model.photonics,
    ).photonics_area_mm2()
    return comp


def _hermes_channel_count(topology) -> int:
    """HERMES's optical inventory: one global channel plus one
    rebroadcast channel per multi-cluster region (far fewer than the
    per-hub crossbar channels of ATAC/Corona)."""
    regions = hermes_regions(topology)
    n = 1 + sum(1 for members in regions if len(members) >= 2)
    return max(2, n)  # OnetGeometry needs >= 2 endpoints


def _hermes_energy(model, result, scenario) -> dict:
    return optical_energy_components(
        model, result, scenario,
        n_channels=_hermes_channel_count(model.config.topology),
    )


def _hermes_area(model) -> dict:
    return clustered_area_components(
        model, n_channels=_hermes_channel_count(model.config.topology)
    )


# ----------------------------------------------------------------------
# network factories
# ----------------------------------------------------------------------

def _build_atac_plus(config) -> Network:
    return AtacNetwork(
        config.topology,
        flit_bits=config.flit_bits,
        routing=DistanceRouting(config.rthres),
        receive_net=receive_net_kind("atac+", config.receive_net),
        starnets_per_cluster=config.starnets_per_cluster,
    )


def _build_atac(config) -> Network:
    return AtacNetwork(
        config.topology,
        flit_bits=config.flit_bits,
        routing=ClusterRouting(),
        receive_net=receive_net_kind("atac", config.receive_net),
        starnets_per_cluster=config.starnets_per_cluster,
    )


def _build_emesh_bcast(config) -> Network:
    return EMeshBCast(config.topology, flit_bits=config.flit_bits)


def _build_emesh_pure(config) -> Network:
    return EMeshPure(config.topology, flit_bits=config.flit_bits)


def _build_corona(config) -> Network:
    return CoronaNetwork(
        config.topology,
        flit_bits=config.flit_bits,
        receive_net=receive_net_kind("corona", config.receive_net),
        starnets_per_cluster=config.starnets_per_cluster,
    )


def _build_hermes(config) -> Network:
    return HermesNetwork(
        config.topology,
        flit_bits=config.flit_bits,
        receive_net=receive_net_kind("hermes", config.receive_net),
        starnets_per_cluster=config.starnets_per_cluster,
    )


# ----------------------------------------------------------------------
# registrations (order fixes CLI/axis/column order -- do not reorder)
# ----------------------------------------------------------------------

register(NetworkDescriptor(
    name="atac+",
    display_name="ATAC+",
    summary="hybrid ENet + adaptive-SWMR ONet + StarNet, distance routing",
    build=_build_atac_plus,
    optical=True,
    clustered=True,
    min_clusters=2,
    axes=frozenset({"runtime", "edp", "sweep"}),
    energy_components=optical_energy_components,
    area_components=clustered_area_components,
))

register(NetworkDescriptor(
    name="atac",
    display_name="ATAC",
    summary="original hybrid: BNet receive network, cluster routing",
    build=_build_atac,
    optical=True,
    clustered=True,
    receive_net_override="bnet",
    min_clusters=2,
    axes=frozenset(),
    energy_components=optical_energy_components,
    area_components=clustered_area_components,
))

register(NetworkDescriptor(
    name="emesh-bcast",
    display_name="EMesh-BCast",
    summary="electrical mesh with native router multicast",
    build=_build_emesh_bcast,
    axes=frozenset({"runtime", "edp", "sweep"}),
))

register(NetworkDescriptor(
    name="emesh-pure",
    display_name="EMesh-Pure",
    summary="electrical mesh; broadcasts become N-1 serialized unicasts",
    build=_build_emesh_pure,
    native_broadcast=False,
    axes=frozenset({"runtime"}),
))

register(NetworkDescriptor(
    name="corona",
    display_name="Corona",
    summary="all-optical MWSR crossbar: writers arbitrate at the "
            "receiver's channel, token-slot arbitration",
    build=_build_corona,
    optical=True,
    clustered=True,
    min_clusters=2,
    axes=frozenset({"sweep"}),
    energy_components=optical_energy_components,
    area_components=clustered_area_components,
))

register(NetworkDescriptor(
    name="hermes",
    display_name="HERMES",
    summary="hierarchical broadcast: global optical channel -> region "
            "heads -> cluster receive nets; unicasts stay electrical",
    build=_build_hermes,
    optical=True,
    clustered=True,
    min_clusters=2,
    axes=frozenset({"sweep"}),
    energy_components=_hermes_energy,
    area_components=_hermes_area,
))


#: Back-compat alias: the tuple the config layer historically exported.
NETWORK_CHOICES: tuple[str, ...] = network_names()

#: The paper's headline architecture (``repro run`` default).
DEFAULT_NETWORK = "atac+"
