"""Cluster receive networks: the BNet fanout tree and the StarNet.

Both deliver flits from a cluster's hub to its cores with single-cycle
latency (Section IV-B: "The performance of the StarNet is exactly the
same as the BNet. Both ... have single-cycle latencies").  Performance-
wise they are interchangeable; they differ only in the energy counters
they feed (see :class:`repro.tech.dsent.ReceiveNetModel`).

Each cluster has **two** parallel receive networks (Table I: "Total
StarNets per Cluster: 2").  The hub statically partitions the cluster's
cores between them (each network serves half the cores); this doubles
hub egress bandwidth -- the contention-relief discussed around Figure
15 -- while keeping messages to any given core in FIFO order, which the
coherence protocol relies on for unicast streams.  Broadcasts occupy
both networks (every core must hear them).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.engine import PortResource
from repro.network.stats import NetworkStats


@dataclass(frozen=True)
class ReceiveNetTiming:
    """Hub-to-core delivery timing (Table I: 1 cycle)."""

    link_delay: int = 1


class ReceiveNetwork:
    """The per-cluster hub-to-cores delivery stage (BNet or StarNet)."""

    __slots__ = ("kind", "cluster", "cluster_size", "timing", "stats", "_ports")

    def __init__(
        self,
        cluster: int,
        cluster_size: int,
        kind: str = "starnet",
        n_parallel: int = 2,
        timing: ReceiveNetTiming | None = None,
        stats: NetworkStats | None = None,
    ) -> None:
        if kind not in ("starnet", "bnet"):
            raise ValueError(f"kind must be 'starnet' or 'bnet', got {kind!r}")
        if cluster_size < 1:
            raise ValueError(f"cluster_size must be >= 1, got {cluster_size}")
        if n_parallel < 1:
            raise ValueError(f"n_parallel must be >= 1, got {n_parallel}")
        self.kind = kind
        self.cluster = cluster
        self.cluster_size = cluster_size
        self.timing = timing if timing is not None else ReceiveNetTiming()
        self.stats = stats if stats is not None else NetworkStats()
        self._ports = [PortResource() for _ in range(n_parallel)]

    def _port_for(self, local_index: int) -> PortResource:
        """Static core-to-network assignment (preserves per-core FIFO)."""
        if not 0 <= local_index < self.cluster_size:
            raise ValueError(
                f"local core index {local_index} outside cluster of "
                f"{self.cluster_size}"
            )
        return self._ports[local_index % len(self._ports)]

    def deliver_unicast(self, time: int, n_flits: int, local_index: int = 0) -> int:
        """Deliver a message to one core; returns arrival time.

        ``local_index`` is the target core's index within the cluster,
        used to pick its statically-assigned receive network.
        """
        start = self._port_for(local_index).reserve(time, n_flits)
        self.stats.receive_net_unicast_flits += n_flits
        return start + self.timing.link_delay + n_flits

    def deliver_broadcast(self, time: int, n_flits: int) -> int:
        """Deliver a message to every core in the cluster.

        Both receive networks replicate the message (each serves half
        the cores); delivery completes when the later one finishes.
        """
        tail = self.timing.link_delay + n_flits
        done = 0
        for p in self._ports:
            arrival = p.reserve(time, n_flits) + tail
            if arrival > done:
                done = arrival
        self.stats.receive_net_broadcast_flits += n_flits
        return done

    @property
    def backlog_at(self) -> int:
        """Earliest time a new message could start (for adaptive routing)."""
        return min(p.free_at for p in self._ports)
