"""Home directories: the ACKwise_k and Dir_kB protocols.

Each core is home for a statically-assigned set of cache lines (Section
III-B).  A :class:`DirectoryController` serializes transactions per
line: while one request is in flight the line is *busy* and later
requests queue behind it, which is how sequential consistency is
maintained at the directory.

Protocol summary (paper Sections III-B and V-F):

* **ACKwise_k** -- up to ``k`` sharer pointers; past ``k`` the *global*
  bit is set and only the sharer **count** is tracked.  Exclusive
  requests to an overflowed line broadcast the invalidation, but only
  the true sharers acknowledge (the count says how many to expect).
  Clean evictions must therefore be announced (``EVICT_NOTIFY``) to
  keep the count exact -- ACKwise "cannot support silent evictions".
* **Dir_kB** -- ``k`` pointers; past ``k`` a broadcast bit is set.
  Exclusive requests then broadcast and wait for acknowledgements from
  *every* core in the system (the 1024-ack storm that hurts
  broadcast-heavy applications in Figure 14).  Silent evictions are
  allowed.

Race handling (documented in DESIGN.md):

* evictions of modified lines park the data in the evicting core's
  writeback buffer until the home sends ``WB_ACK``; flush/writeback
  requests that race with the eviction are served from that buffer;
* an ``EVICT_NOTIFY`` that races with an in-flight broadcast
  invalidation counts as that core's acknowledgement (the core itself
  no longer holds the line and will stay silent);
* an ``EVICT_NOTIFY`` racing with in-flight *unicast* invalidations is
  ignored for the targeted cores (they always acknowledge unicast
  invalidates, present or not).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum

from repro.coherence.messages import CoherenceMsg, MsgType
from repro.coherence.sequencing import DirectorySequencer


class Protocol(Enum):
    ACKWISE = "ackwise"
    DIRKB = "dirkb"


class DirState(Enum):
    UNCACHED = "U"
    SHARED = "S"
    MODIFIED = "M"


@dataclass(slots=True)
class DirectoryEntry:
    """One directory line's stable state."""

    state: DirState = DirState.UNCACHED
    sharers: list[int] = field(default_factory=list)  # up to k pointers
    global_bit: bool = False   # ACKwise: count-only mode / DirkB: bcast bit
    count: int = 0             # ACKwise global mode: number of sharers
    owner: int | None = None

    def reset(self) -> None:
        self.state = DirState.UNCACHED
        self.sharers.clear()
        self.global_bit = False
        self.count = 0
        self.owner = None


@dataclass(slots=True)
class _Transaction:
    """In-flight request state for a busy line."""

    mtype: MsgType               # SH_REQ or EX_REQ
    requester: int
    pending_acks: int = 0
    waiting_mem: bool = False
    waiting_owner: bool = False  # FLUSH_REP / WB_REP outstanding
    inv_targets: frozenset[int] = frozenset()
    broadcast: bool = False

    @property
    def complete(self) -> bool:
        return (
            self.pending_acks == 0
            and not self.waiting_mem
            and not self.waiting_owner
        )


@dataclass(slots=True)
class DirectoryStats:
    """Per-directory event counters for the energy model."""

    lookups: int = 0
    updates: int = 0
    invalidations_unicast: int = 0
    invalidations_broadcast: int = 0
    acks_received: int = 0
    mem_reads: int = 0
    mem_writes: int = 0


class DirectoryController:
    """The directory slice homed at one core."""

    def __init__(
        self,
        core: int,
        fabric,
        protocol: Protocol = Protocol.ACKWISE,
        hardware_sharers: int = 4,
        sequencer: DirectorySequencer | None = None,
        slice_id: int = 0,
        dir_latency: int = 3,
    ) -> None:
        if hardware_sharers < 2:
            raise ValueError(
                f"hardware_sharers must be >= 2 (read-after-write needs two "
                f"pointers), got {hardware_sharers}"
            )
        if dir_latency < 0:
            raise ValueError(f"dir_latency must be non-negative, got {dir_latency}")
        self.core = core
        self.fabric = fabric
        self.protocol = protocol
        self.k = hardware_sharers
        self.sequencer = sequencer
        self.slice_id = slice_id
        self.dir_latency = dir_latency
        self.entries: dict[int, DirectoryEntry] = {}
        self.busy: dict[int, _Transaction] = {}
        self.queues: dict[int, deque[CoherenceMsg]] = {}
        self.stats = DirectoryStats()

    # ------------------------------------------------------------------
    def _entry(self, address: int) -> DirectoryEntry:
        e = self.entries.get(address)
        if e is None:
            e = self.entries[address] = DirectoryEntry()
        return e

    def _seq_for_unicast(self) -> int | None:
        if self.sequencer is None:
            return None
        return self.sequencer.current_seq(self.slice_id)

    def _send(self, mtype: MsgType, address: int, dest: int, now: int,
              requester: int | None = None, seq: int | None = None) -> None:
        if seq is None:
            seq = self._seq_for_unicast()
        self.fabric.send_msg(
            CoherenceMsg(
                mtype=mtype, address=address, sender=self.core, dest=dest,
                seq=seq, requester=requester,
            ),
            now,
        )

    # ------------------------------------------------------------------
    def handle(self, msg: CoherenceMsg, now: int) -> None:
        """Entry point for every message addressed to this directory."""
        mt = msg.mtype
        if mt in (MsgType.SH_REQ, MsgType.EX_REQ, MsgType.DIRTY_WB):
            if msg.address in self.busy:
                self.queues.setdefault(msg.address, deque()).append(msg)
                return
            self._start(msg, now + self.dir_latency)
        elif mt is MsgType.EVICT_NOTIFY:
            self._evict_notify(msg, now)
        elif mt is MsgType.INV_ACK:
            self._ack(msg, now)
        elif mt in (MsgType.FLUSH_REP, MsgType.WB_REP):
            self._owner_reply(msg, now)
        elif mt is MsgType.MEM_DATA:
            self._mem_data(msg, now)
        elif mt is MsgType.MEM_WRITE_ACK:
            pass  # fire-and-forget memory updates
        else:
            raise ValueError(f"directory at core {self.core} got {mt}")

    # ------------------------------------------------------------------
    def _start(self, msg: CoherenceMsg, now: int) -> None:
        """Begin a serialized transaction for a line."""
        self.stats.lookups += 1
        if msg.mtype is MsgType.DIRTY_WB:
            self._dirty_wb(msg, now)
            return
        entry = self._entry(msg.address)
        txn = _Transaction(mtype=msg.mtype, requester=msg.sender)
        self.busy[msg.address] = txn
        if msg.mtype is MsgType.SH_REQ:
            self._start_shared(entry, txn, msg.address, now)
        else:
            self._start_exclusive(entry, txn, msg.address, now)
        if txn.complete:  # degenerate: nothing to wait for
            self._finish(msg.address, now)

    # -- shared (read) requests ----------------------------------------
    def _start_shared(
        self, entry: DirectoryEntry, txn: _Transaction, address: int, now: int
    ) -> None:
        if entry.state is DirState.MODIFIED:
            # Owner must write back and demote; data comes via home.
            txn.waiting_owner = True
            self._send(MsgType.WB_REQ, address, entry.owner, now,
                       requester=txn.requester)
        else:
            # Clean data comes from memory (UNCACHED or SHARED).
            txn.waiting_mem = True
            self.stats.mem_reads += 1
            self._send(MsgType.MEM_READ, address,
                       self.fabric.memctrl_for(self.core), now,
                       requester=txn.requester)

    # -- exclusive (write) requests --------------------------------------
    def _start_exclusive(
        self, entry: DirectoryEntry, txn: _Transaction, address: int, now: int
    ) -> None:
        if entry.state is DirState.MODIFIED:
            txn.waiting_owner = True
            self._send(MsgType.FLUSH_REQ, address, entry.owner, now,
                       requester=txn.requester)
            return
        if entry.state is DirState.UNCACHED:
            txn.waiting_mem = True
            self.stats.mem_reads += 1
            self._send(MsgType.MEM_READ, address,
                       self.fabric.memctrl_for(self.core), now,
                       requester=txn.requester)
            return
        # SHARED: invalidate the other sharers.
        overflowed = entry.global_bit
        if overflowed:
            txn.broadcast = True
            seq = None
            if self.sequencer is not None:
                seq = self.sequencer.next_broadcast_seq(self.slice_id)
            self.stats.invalidations_broadcast += 1
            self.fabric.send_msg(
                CoherenceMsg(
                    mtype=MsgType.INV_BCAST, address=address,
                    sender=self.core, dest=-1, seq=seq,
                    requester=txn.requester,
                ),
                now,
            )
            if self.protocol is Protocol.ACKWISE:
                # Only true sharers respond; the count says how many.
                txn.pending_acks = entry.count
            else:
                # Dir_kB: every core in the system acknowledges.
                txn.pending_acks = self.fabric.n_broadcast_ackers(self.core)
        else:
            targets = [s for s in entry.sharers if s != txn.requester]
            txn.inv_targets = frozenset(targets)
            txn.pending_acks = len(targets)
            for t in targets:
                self.stats.invalidations_unicast += 1
                self._send(MsgType.INV_REQ, address, t, now,
                           requester=txn.requester)
        # Data: upgrades (requester already a sharer) have the line;
        # otherwise fetch from memory in parallel with the invalidations.
        requester_has_data = (
            not overflowed and txn.requester in entry.sharers
        )
        if not requester_has_data:
            txn.waiting_mem = True
            self.stats.mem_reads += 1
            self._send(MsgType.MEM_READ, address,
                       self.fabric.memctrl_for(self.core), now,
                       requester=txn.requester)

    # -- modified-line eviction -------------------------------------------
    def _dirty_wb(self, msg: CoherenceMsg, now: int) -> None:
        entry = self._entry(msg.address)
        if entry.state is DirState.MODIFIED and entry.owner == msg.sender:
            entry.reset()
            self.stats.updates += 1
            self.stats.mem_writes += 1
            self._send(MsgType.MEM_WRITE, msg.address,
                       self.fabric.memctrl_for(self.core), now)
        # else: stale (a flush beat the writeback); just free the buffer.
        self._send(MsgType.WB_ACK, msg.address, msg.sender, now)
        self._drain_queue(msg.address, now)

    # -- clean-line eviction notices ----------------------------------------
    def _evict_notify(self, msg: CoherenceMsg, now: int) -> None:
        if self.protocol is Protocol.DIRKB:
            raise ValueError("Dir_kB uses silent evictions; EVICT_NOTIFY invalid")
        entry = self._entry(msg.address)
        txn = self.busy.get(msg.address)
        if txn is not None and txn.pending_acks > 0:
            if txn.broadcast:
                # The evicted core will not answer the broadcast: this
                # notice *is* its acknowledgement.
                self._remove_sharer(entry, msg.sender)
                txn.pending_acks -= 1
                self.stats.acks_received += 1
                if txn.complete:
                    self._finish(msg.address, now)
                return
            if msg.sender in txn.inv_targets:
                # The core will still acknowledge the unicast INV; drop
                # the notice to avoid double-counting.
                return
        self._remove_sharer(entry, msg.sender)
        self.stats.updates += 1

    def _remove_sharer(self, entry: DirectoryEntry, core: int) -> None:
        if core in entry.sharers:
            entry.sharers.remove(core)
        if entry.global_bit and entry.count > 0:
            entry.count -= 1
        if entry.state is DirState.SHARED:
            remaining = entry.count if entry.global_bit else len(entry.sharers)
            if remaining == 0:
                entry.reset()

    # -- responses ---------------------------------------------------------
    def _ack(self, msg: CoherenceMsg, now: int) -> None:
        txn = self.busy.get(msg.address)
        if txn is None or txn.pending_acks == 0:
            return  # late ack for an already-satisfied broadcast (Dir_kB drift)
        txn.pending_acks -= 1
        self.stats.acks_received += 1
        if txn.complete:
            self._finish(msg.address, now)

    def _owner_reply(self, msg: CoherenceMsg, now: int) -> None:
        txn = self.busy.get(msg.address)
        if txn is None or not txn.waiting_owner:
            raise RuntimeError(
                f"unexpected owner reply {msg.mtype} for line {msg.address}"
            )
        txn.waiting_owner = False
        if msg.mtype is MsgType.WB_REP:
            # The line is now clean: update memory.
            self.stats.mem_writes += 1
            self._send(MsgType.MEM_WRITE, msg.address,
                       self.fabric.memctrl_for(self.core), now)
            entry = self._entry(msg.address)
            if not msg.retained:
                # Owner evicted concurrently; it is no longer a sharer.
                entry.owner = None
        if txn.complete:
            self._finish(msg.address, now)

    def _mem_data(self, msg: CoherenceMsg, now: int) -> None:
        txn = self.busy.get(msg.address)
        if txn is None or not txn.waiting_mem:
            raise RuntimeError(f"unexpected MEM_DATA for line {msg.address}")
        txn.waiting_mem = False
        if txn.complete:
            self._finish(msg.address, now)

    # -- transaction completion ---------------------------------------------
    def _finish(self, address: int, now: int) -> None:
        txn = self.busy.pop(address)
        entry = self._entry(address)
        self.stats.updates += 1
        if txn.mtype is MsgType.SH_REQ:
            old_owner = entry.owner if entry.state is DirState.MODIFIED else None
            if entry.state is DirState.MODIFIED:
                # WB_REQ path: owner demoted to S (if it kept the line).
                entry.state = DirState.SHARED
                entry.sharers = [old_owner] if old_owner is not None else []
                entry.owner = None
            if entry.state is DirState.UNCACHED:
                entry.state = DirState.SHARED
            self._add_sharer(entry, txn.requester)
            self._send(MsgType.SH_REP, address, txn.requester, now)
        else:
            entry.reset()
            entry.state = DirState.MODIFIED
            entry.owner = txn.requester
            self._send(MsgType.EX_REP, address, txn.requester, now)
        self._drain_queue(address, now)

    def _add_sharer(self, entry: DirectoryEntry, core: int) -> None:
        if entry.global_bit:
            entry.count += 1
            return
        if core in entry.sharers:
            return
        if len(entry.sharers) < self.k:
            entry.sharers.append(core)
            return
        # Pointer overflow.
        entry.global_bit = True
        if self.protocol is Protocol.ACKWISE:
            # Switch to count-only tracking: known sharers + the new one.
            entry.count = len(entry.sharers) + 1
        # Dir_kB keeps its k stale pointers and just marks the bcast bit.

    def _drain_queue(self, address: int, now: int) -> None:
        q = self.queues.get(address)
        if not q or address in self.busy:
            return
        nxt = q.popleft()
        if not q:
            del self.queues[address]
        self._start(nxt, now + self.dir_latency)
