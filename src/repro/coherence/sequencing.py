"""Sequence-number ordering for mixed broadcast/unicast routes.

Section IV-C1: ATAC+'s distance-based routing lets a directory's
broadcast invalidations (always on the ONet) and its unicast messages
(possibly on the ENet) take different physical routes, so they can
arrive out of order.  The fix:

* each **directory slice** (one per cluster, 64 total) keeps a 16-bit
  counter incremented on every broadcast invalidate it sends;
* broadcasts carry their (new) sequence number; directory unicasts
  carry the number of the *most recent* broadcast;
* a receiver that gets a unicast whose ``seq`` is ahead of the last
  broadcast it processed from that slice knows broadcasts are missing
  and buffers the unicast;
* a broadcast arriving while the receiver has an outstanding SH_REQ for
  the same address is *potentially* early and is buffered until the
  SH_REP arrives, then dropped (if the reply already reflects it) or
  processed one cycle later (paper's exact rule).

Counters wrap at 2^16 like TCP sequence numbers; ordering uses modular
comparison, safe while fewer than 2^15 broadcasts are in flight from
one slice (paper: "theoretically impossible due to the buffering limits
of the interconnection network").
"""

from __future__ import annotations

from dataclasses import dataclass, field

SEQ_BITS = 16
SEQ_MOD = 1 << SEQ_BITS
_HALF = 1 << (SEQ_BITS - 1)


def seq_after(a: int, b: int) -> bool:
    """True if sequence number ``a`` is logically after ``b`` (mod 2^16)."""
    d = (a - b) % SEQ_MOD
    return 0 < d < _HALF


class DirectorySequencer:
    """The sending side: one counter per directory slice.

    Storage cost matches the paper: 2 bytes x 64 slices kept at each
    core for the receive side, and one counter per slice here.
    """

    __slots__ = ("_counters",)

    def __init__(self, n_slices: int) -> None:
        if n_slices < 1:
            raise ValueError(f"n_slices must be >= 1, got {n_slices}")
        self._counters = [0] * n_slices

    def next_broadcast_seq(self, slice_id: int) -> int:
        """Increment and return the slice counter (called per broadcast)."""
        c = (self._counters[slice_id] + 1) % SEQ_MOD
        self._counters[slice_id] = c
        return c

    def current_seq(self, slice_id: int) -> int:
        """Sequence number stamped on directory unicasts."""
        return self._counters[slice_id]


class SequenceTracker:
    """The receiving side: last processed broadcast seq per slice."""

    __slots__ = ("_last_seen",)

    def __init__(self, n_slices: int) -> None:
        if n_slices < 1:
            raise ValueError(f"n_slices must be >= 1, got {n_slices}")
        self._last_seen = [0] * n_slices

    def last_seen(self, slice_id: int) -> int:
        return self._last_seen[slice_id]

    def note_broadcast(self, slice_id: int, seq: int) -> None:
        """Record that a broadcast with ``seq`` has been processed."""
        if seq_after(seq, self._last_seen[slice_id]):
            self._last_seen[slice_id] = seq

    def unicast_is_early(self, slice_id: int, seq: int | None) -> bool:
        """True if a directory unicast overtook an unprocessed broadcast.

        A unicast stamped with ``seq`` asserts "the directory had sent
        broadcasts up to ``seq`` before me"; if we have not processed
        that broadcast yet, the unicast must be buffered.
        """
        if seq is None:
            return False
        return seq_after(seq, self._last_seen[slice_id])

    def broadcast_is_stale(self, slice_id: int, bcast_seq: int, reply_seq: int) -> bool:
        """Paper's SH_REP-vs-buffered-INV_BCAST comparison.

        The buffered broadcast is *stale* (already reflected in the
        shared reply, so it must be dropped) iff the reply carries a
        sequence number at or beyond the broadcast's.
        """
        return not seq_after(bcast_seq, reply_seq)
