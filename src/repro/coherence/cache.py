"""Set-associative cache state with LRU replacement.

The simulator tracks caches at line granularity: a line id is the
"address".  Each line has an MSI state; timing and energy live in the
controllers, this class is pure state.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from enum import Enum


class CacheState(Enum):
    INVALID = "I"
    SHARED = "S"
    MODIFIED = "M"

    # Identity hash (see MsgType): members are singletons and states are
    # hashed on the simulator's hottest paths.
    __hash__ = object.__hash__


class SetAssocCache:
    """An LRU set-associative cache of line ids.

    Parameters
    ----------
    n_sets / associativity:
        Geometry; capacity = ``n_sets * associativity`` lines.
    """

    __slots__ = ("n_sets", "associativity", "_sets")

    def __init__(self, n_sets: int, associativity: int) -> None:
        if n_sets < 1:
            raise ValueError(f"n_sets must be >= 1, got {n_sets}")
        if associativity < 1:
            raise ValueError(f"associativity must be >= 1, got {associativity}")
        self.n_sets = n_sets
        self.associativity = associativity
        # per-set OrderedDict: line -> CacheState, LRU order (oldest first)
        self._sets: list[OrderedDict[int, CacheState]] = [
            OrderedDict() for _ in range(n_sets)
        ]

    @property
    def capacity_lines(self) -> int:
        return self.n_sets * self.associativity

    def _set_of(self, line: int) -> OrderedDict[int, CacheState]:
        return self._sets[line % self.n_sets]

    # ------------------------------------------------------------------
    def lookup(self, line: int, touch: bool = True) -> CacheState:
        """State of a line (``INVALID`` if absent); updates LRU on hit."""
        s = self._sets[line % self.n_sets]
        state = s.get(line)
        if state is None:
            return CacheState.INVALID
        if touch:
            s.move_to_end(line)
        return state

    def install(self, line: int, state: CacheState) -> tuple[int, CacheState] | None:
        """Insert/overwrite a line; returns the evicted ``(line, state)``
        if the set overflowed, else ``None``."""
        if state is CacheState.INVALID:
            raise ValueError("cannot install a line in INVALID state")
        s = self._sets[line % self.n_sets]
        if line in s:
            s[line] = state
            s.move_to_end(line)
            return None
        victim = None
        if len(s) >= self.associativity:
            victim = s.popitem(last=False)  # LRU
        s[line] = state
        return victim

    def set_state(self, line: int, state: CacheState) -> None:
        """Change the state of a resident line (or drop it via INVALID)."""
        s = self._sets[line % self.n_sets]
        if state is CacheState.INVALID:
            s.pop(line, None)
            return
        if line not in s:
            raise KeyError(f"line {line} not resident")
        s[line] = state

    def invalidate(self, line: int) -> CacheState:
        """Drop a line; returns its previous state (INVALID if absent)."""
        s = self._sets[line % self.n_sets]
        return s.pop(line, CacheState.INVALID)

    def occupancy(self) -> int:
        """Total resident lines."""
        return sum(len(s) for s in self._sets)

    def resident_lines(self) -> list[int]:
        """All resident line ids (test helper)."""
        return [line for s in self._sets for line in s]
