"""Cache hierarchy and directory-based coherence.

Implements the paper's memory subsystem (Section III-B):

* private, inclusive L1-I/L1-D (32 KB) and L2 (256 KB) per core,
* a directory distributed across all cores (static home per line),
* the **ACKwise_k** limited-directory protocol: up to ``k`` hardware
  sharer pointers; past ``k`` a global bit is set and only the *number*
  of sharers is tracked; invalidations then broadcast, but only true
  sharers acknowledge.  Requires explicit (non-silent) evictions.
* the **Dir_kB** protocol (Section V-F): ``k`` pointers, broadcast on
  overflow, acknowledgements from *every* core, silent evictions
  allowed.
* the sequence-number mechanism (Section IV-C1) restoring order when
  ATAC+'s distance routing lets unicasts and broadcasts take different
  physical routes.
* 64 memory controllers (one per cluster, 5 GB/s, 100 ns).
"""

from repro.coherence.messages import MsgType, CoherenceMsg
from repro.coherence.cache import CacheState, SetAssocCache
from repro.coherence.sequencing import SequenceTracker, DirectorySequencer
from repro.coherence.memory import MemoryController
from repro.coherence.directory import DirectoryController, DirectoryEntry, Protocol
from repro.coherence.l2controller import L2Controller, CacheCounters

__all__ = [
    "MsgType",
    "CoherenceMsg",
    "CacheState",
    "SetAssocCache",
    "SequenceTracker",
    "DirectorySequencer",
    "MemoryController",
    "DirectoryController",
    "DirectoryEntry",
    "Protocol",
    "L2Controller",
    "CacheCounters",
]
