"""Coherence protocol message vocabulary.

Message sizes follow Section IV-C1: coherence (control) messages are 88
bits, data-carrying messages 600 bits; the 16-bit sequence number rides
in packet slack and adds no flits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto

from repro.network.types import CONTROL_MSG_BITS, DATA_MSG_BITS


class MsgType(Enum):
    # Identity hash: Enum.__hash__ is a Python-level function (it hashes
    # the member name) and message types key frozenset/dict lookups on
    # every delivery.  Members are singletons, so identity hashing is
    # consistent with the (identity) equality semantics.
    __hash__ = object.__hash__

    # requests from an L2 controller to a home directory
    SH_REQ = auto()        # read miss: want a shared copy
    EX_REQ = auto()        # write miss/upgrade: want an exclusive copy
    EVICT_NOTIFY = auto()  # clean (S) eviction notice (ACKwise only)
    DIRTY_WB = auto()      # modified eviction: data back to home

    # requests from a home directory to remote L2 controllers
    INV_REQ = auto()       # unicast invalidate
    INV_BCAST = auto()     # broadcast invalidate (the protocol's only bcast)
    FLUSH_REQ = auto()     # owner must give up M copy + data
    WB_REQ = auto()        # owner must write back data, demote M -> S
    FWD_REQ = auto()       # sharer asked to forward data to the requester

    # responses
    INV_ACK = auto()
    FLUSH_REP = auto()     # data (owner -> home)
    WB_REP = auto()        # data (owner -> home)
    FWD_DATA = auto()      # data (sharer -> requester)
    SH_REP = auto()        # data (home -> requester), grants S
    EX_REP = auto()        # data (home -> requester), grants M
    WB_ACK = auto()        # home acknowledges a DIRTY_WB

    # memory-controller traffic
    MEM_READ = auto()
    MEM_WRITE = auto()
    MEM_DATA = auto()
    MEM_WRITE_ACK = auto()


#: message types that carry a cache line (600-bit packets)
DATA_BEARING = frozenset(
    {
        MsgType.DIRTY_WB,
        MsgType.FLUSH_REP,
        MsgType.WB_REP,
        MsgType.FWD_DATA,
        MsgType.SH_REP,
        MsgType.EX_REP,
        MsgType.MEM_WRITE,
        MsgType.MEM_DATA,
    }
)


@dataclass(slots=True)
class CoherenceMsg:
    """One protocol message.

    Attributes
    ----------
    mtype:
        The message type.
    address:
        Cache-line id.
    sender / dest:
        Core ids (``dest`` ignored for broadcasts).
    seq:
        Directory-slice sequence number (Section IV-C1); carried by
        broadcasts and by directory->core unicasts so receivers can
        detect reordering.  ``None`` when sequencing is disabled.
    requester:
        For forwarded/invalidation flows: the core the transaction is
        ultimately serving.
    """

    mtype: MsgType
    address: int
    sender: int
    dest: int
    seq: int | None = None
    requester: int | None = None
    #: WB_REP only: False when the demoted owner had already evicted the
    #: line (served from its writeback buffer) and keeps no shared copy.
    retained: bool = True
    #: Telemetry-only transaction correlation id, stamped by
    #: :class:`repro.telemetry.collector.TelemetryCollector` on the
    #: request/reply pair of a miss transaction.  Never read by the
    #: protocol; always ``None`` when telemetry is off.
    txn: int | None = None

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"address must be non-negative, got {self.address}")

    @property
    def size_bits(self) -> int:
        return DATA_MSG_BITS if self.mtype in DATA_BEARING else CONTROL_MSG_BITS

    @property
    def is_broadcast(self) -> bool:
        return self.mtype is MsgType.INV_BCAST
