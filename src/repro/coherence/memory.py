"""Memory controllers (Table I: 64 controllers, 5 GB/s each, 100 ns).

One controller per cluster, occupying a core slot on the mesh (Section
III-B).  A request serializes on the controller's bandwidth (5 bytes
per cycle at 1 GHz -> 13 cycles per 64 B line), then waits the DRAM
latency, then the reply is sent back over the on-chip network.  The
connection to external DRAM is optical in the paper's design, but its
technology is explicitly "independent of the on-chip network
architecture" -- we model it as latency + bandwidth only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.coherence.messages import CoherenceMsg, MsgType
from repro.network.engine import PortResource


@dataclass(frozen=True)
class MemoryTiming:
    """DRAM access parameters (Table I)."""

    latency_cycles: int = 100          # 100 ns at 1 GHz
    bytes_per_cycle: float = 5.0       # 5 GB/s at 1 GHz
    line_bytes: int = 64

    @property
    def serialization_cycles(self) -> int:
        return max(1, math.ceil(self.line_bytes / self.bytes_per_cycle))


class MemoryController:
    """One cluster's memory controller."""

    __slots__ = ("core", "timing", "_channel", "reads", "writes", "fabric")

    def __init__(self, core: int, fabric, timing: MemoryTiming | None = None) -> None:
        self.core = core
        self.fabric = fabric
        self.timing = timing if timing is not None else MemoryTiming()
        self._channel = PortResource()
        self.reads = 0
        self.writes = 0

    def handle(self, msg: CoherenceMsg, now: int) -> None:
        """Process MEM_READ / MEM_WRITE; replies go back over the network."""
        if msg.mtype is MsgType.MEM_READ:
            self.reads += 1
            reply_type = MsgType.MEM_DATA
        elif msg.mtype is MsgType.MEM_WRITE:
            self.writes += 1
            reply_type = MsgType.MEM_WRITE_ACK
        else:
            raise ValueError(f"memory controller got {msg.mtype}")
        start = self._channel.reserve(now, self.timing.serialization_cycles)
        done = start + self.timing.serialization_cycles + self.timing.latency_cycles
        reply = CoherenceMsg(
            mtype=reply_type,
            address=msg.address,
            sender=self.core,
            dest=msg.sender,
            requester=msg.requester,
        )
        self.fabric.send_msg(reply, done)

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def busy_cycles(self) -> int:
        return self._channel.busy_cycles
