"""Per-core cache controller: private L1-D/L1-I + L2, protocol client side.

The controller owns the core's private hierarchy (Table I: 32 KB L1-I,
32 KB L1-D, 256 KB L2, all private) and speaks the coherence protocol
toward home directories:

* an access that hits in L1 completes in 1 cycle; an L1 miss that hits
  L2 in ``l2_hit_latency``; an L2 miss allocates the (single) MSHR and
  issues SH_REQ / EX_REQ -- the in-order core blocks until the reply;
* incoming invalidations, flushes and writeback requests are served at
  any time (the core being blocked does not stop its cache controller);
* modified evictions park data in a writeback buffer until the home
  acknowledges, so flush/writeback requests racing with the eviction
  can still be served (DESIGN.md race table);
* ATAC+ sequence-number ordering (Section IV-C1) is enforced here:
  early directory *requests* are buffered until the broadcasts they
  trail have been processed, and broadcasts that race with an
  outstanding SH_REQ are buffered and reconciled against the reply's
  sequence number.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Callable

from repro.coherence.cache import CacheState, SetAssocCache
from repro.coherence.messages import CoherenceMsg, MsgType
from repro.coherence.sequencing import SequenceTracker


@dataclass(slots=True)
class CacheCounters:
    """Per-core cache event counters for the energy model.

    ``slots=True``: the L1-I counter alone is bumped once per retired
    instruction.
    """

    l1i_accesses: int = 0
    l1d_reads: int = 0
    l1d_writes: int = 0
    l2_reads: int = 0
    l2_writes: int = 0
    l2_tag_probes: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    invalidations_received: int = 0
    evictions_clean: int = 0
    evictions_dirty: int = 0
    bcast_invs_buffered: int = 0
    bcast_invs_stale_dropped: int = 0
    unicasts_buffered_early: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict snapshot (for results serialization)."""
        return {f.name: getattr(self, f.name) for f in fields(CacheCounters)}

    @classmethod
    def from_dict(cls, d: dict) -> "CacheCounters":
        """Inverse of :meth:`as_dict`; unknown keys are ignored."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in d.items() if k in known})


@dataclass
class _Mshr:
    """The single outstanding miss of an in-order core."""

    address: int
    is_write: bool
    issued_at: int
    callback: Callable[[int], None]
    reply_seq: int | None = None


class L2Controller:
    """Cache hierarchy + protocol engine for one core."""

    def __init__(
        self,
        core: int,
        fabric,
        l1_sets: int = 128,
        l1_ways: int = 4,
        l2_sets: int = 512,
        l2_ways: int = 8,
        l1_hit_latency: int = 1,
        l2_hit_latency: int = 8,
        fill_latency: int = 2,
        n_slices: int = 64,
        silent_clean_evictions: bool = False,
        sequencing: bool = True,
    ) -> None:
        self.core = core
        self.fabric = fabric
        # Protocol-constant, read on every broadcast delivery: resolved
        # once instead of through the fabric property per message.
        self._all_ack: bool = bool(fabric.all_cores_ack_broadcasts)
        self.l1d = SetAssocCache(l1_sets, l1_ways)
        self.l2 = SetAssocCache(l2_sets, l2_ways)
        self.l1_hit_latency = l1_hit_latency
        self.l2_hit_latency = l2_hit_latency
        self.fill_latency = fill_latency
        #: Dir_kB may evict clean lines silently; ACKwise must announce.
        self.silent_clean_evictions = silent_clean_evictions
        self.sequencing = sequencing
        self.tracker = SequenceTracker(n_slices)
        self.mshr: _Mshr | None = None
        self.wb_buffer: set[int] = set()
        #: address -> buffered INV_BCAST messages racing an SH_REQ
        self._pending_bcasts: dict[int, list[CoherenceMsg]] = {}
        #: directory requests that overtook an unprocessed broadcast
        self._early_unicasts: list[CoherenceMsg] = []
        self.counters = CacheCounters()

    # ------------------------------------------------------------------
    # Core-facing access path
    # ------------------------------------------------------------------
    def access(
        self, address: int, is_write: bool, now: int,
        callback: Callable[[int], None],
    ) -> int | None:
        """One memory reference.

        Returns the completion time for hits; returns ``None`` for
        misses (the controller calls ``callback(done_time)`` when the
        line arrives).
        """
        if self.mshr is not None:
            raise RuntimeError(
                f"core {self.core}: in-order core issued a second outstanding miss"
            )
        c = self.counters
        l2_state = self.l2.lookup(address)
        l1_state = self.l1d.lookup(address)
        if is_write:
            c.l1d_writes += 1
        else:
            c.l1d_reads += 1

        if not is_write and l2_state in (CacheState.SHARED, CacheState.MODIFIED):
            if l1_state is not CacheState.INVALID:
                c.l1_hits += 1
                return now + self.l1_hit_latency
            c.l2_reads += 1
            c.l2_hits += 1
            self._l1_fill(address, l2_state)
            return now + self.l2_hit_latency

        if is_write and l2_state is CacheState.MODIFIED:
            c.l2_writes += 1
            if l1_state is not CacheState.INVALID:
                c.l1_hits += 1
                return now + self.l1_hit_latency
            c.l2_hits += 1
            self._l1_fill(address, l2_state)
            return now + self.l2_hit_latency

        # L2 miss (or S->M upgrade).
        c.l2_tag_probes += 1
        c.l2_misses += 1
        self.mshr = _Mshr(address, is_write, now, callback)
        req = MsgType.EX_REQ if is_write else MsgType.SH_REQ
        self.fabric.send_msg(
            CoherenceMsg(
                mtype=req, address=address, sender=self.core,
                dest=self.fabric.home_of(address),
            ),
            now + self.l2_hit_latency,  # miss detected after lookup
        )
        return None

    def fetch_instruction(self) -> None:
        """Account one L1-I access (instruction fetches always hit; the
        SPLASH kernels fit in the 32 KB L1-I, see DESIGN.md)."""
        self.counters.l1i_accesses += 1

    def _l1_fill(self, address: int, state: CacheState) -> None:
        victim = self.l1d.install(address, state)
        # L1 is write-through into L2, so L1 victims drop silently.
        del victim

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def handle(self, msg: CoherenceMsg, now: int) -> None:
        mt = msg.mtype
        # slice_of_home is only needed for sequencing decisions, so it is
        # computed inside the branches that use it -- replies and acks
        # (the bulk of traffic) skip it entirely.
        if mt is MsgType.INV_BCAST:
            self.handle_broadcast(msg, now)
            return
        if mt in (MsgType.INV_REQ, MsgType.FLUSH_REQ, MsgType.WB_REQ):
            if self.sequencing and self.tracker.unicast_is_early(
                self.fabric.slice_of_home(msg.sender), msg.seq
            ):
                # The directory sent a broadcast we have not seen yet:
                # hold this request to preserve per-address FIFO order.
                self.counters.unicasts_buffered_early += 1
                self._early_unicasts.append(msg)
                return
            self._handle_dir_request(msg, now)
            return
        if mt is MsgType.SH_REP:
            self._handle_sh_rep(msg, now)
            return
        if mt is MsgType.EX_REP:
            self._handle_ex_rep(msg, now)
            return
        if mt is MsgType.WB_ACK:
            self.wb_buffer.discard(msg.address)
            return
        raise ValueError(f"L2 controller at core {self.core} got {mt}")

    # -- broadcast invalidations ------------------------------------------
    def handle_broadcast(self, msg: CoherenceMsg, now: int) -> None:
        """Entry point for INV_BCAST deliveries.

        Identical to ``handle`` for broadcast messages; public so the
        batched fan-out path can skip the message-type dispatch it has
        already done once for the whole group.
        """
        if (
            self.sequencing
            and self.mshr is not None
            and self.mshr.address == msg.address
            and not self.mshr.is_write
        ):
            # Potentially overtook the SH_REP we are waiting for
            # (paper's exact buffered case).  Reconciled on reply.
            self.counters.bcast_invs_buffered += 1
            self._pending_bcasts.setdefault(msg.address, []).append(msg)
            if self._all_ack:
                # Dir_kB counts an ack from every core; ours cannot wait
                # for the reply (the directory's broadcast transaction
                # may be what our queued SH_REQ is blocked behind).  We
                # hold no copy, so acknowledging now is safe.
                self.fabric.send_msg(
                    CoherenceMsg(
                        mtype=MsgType.INV_ACK, address=msg.address,
                        sender=self.core, dest=msg.sender,
                    ),
                    now + 1,
                )
            return
        self._process_bcast(msg, now, note=True)

    def _process_bcast(
        self, msg: CoherenceMsg, now: int, note: bool, may_ack: bool = True
    ) -> None:
        c = self.counters
        c.invalidations_received += 1
        c.l2_tag_probes += 1
        had_line = self.l2.lookup(msg.address, touch=False) is not CacheState.INVALID
        if had_line:
            self.l2.set_state(msg.address, CacheState.INVALID)
            self.l1d.invalidate(msg.address)
        # ACKwise: only true sharers respond.  Dir_kB: everyone does.
        must_ack = may_ack and (had_line or self._all_ack)
        if must_ack:
            self.fabric.send_msg(
                CoherenceMsg(
                    mtype=MsgType.INV_ACK, address=msg.address,
                    sender=self.core, dest=msg.sender,
                ),
                now + 1,
            )
        if note and self.sequencing and msg.seq is not None:
            self._note_broadcast(self.fabric.slice_of_home(msg.sender), msg.seq, now)

    def _note_broadcast(self, slice_id: int, seq: int, now: int) -> None:
        """Advance the slice tracker and release unblocked early unicasts."""
        self.tracker.note_broadcast(slice_id, seq)
        if not self._early_unicasts:
            return  # common case: nothing buffered
        still_early = []
        for m in self._early_unicasts:
            s = self.fabric.slice_of_home(m.sender)
            if self.tracker.unicast_is_early(s, m.seq):
                still_early.append(m)
            else:
                self._handle_dir_request(m, now)
        self._early_unicasts = still_early

    # -- directory requests -------------------------------------------------
    def _handle_dir_request(self, msg: CoherenceMsg, now: int) -> None:
        c = self.counters
        mt = msg.mtype
        if mt is MsgType.INV_REQ:
            c.invalidations_received += 1
            c.l2_tag_probes += 1
            if self.l2.lookup(msg.address, touch=False) is not CacheState.INVALID:
                self.l2.set_state(msg.address, CacheState.INVALID)
                self.l1d.invalidate(msg.address)
            # Unicast invalidates are always acknowledged, present or not
            # (the home counted us; an eviction notice may still be in
            # flight).
            self.fabric.send_msg(
                CoherenceMsg(
                    mtype=MsgType.INV_ACK, address=msg.address,
                    sender=self.core, dest=msg.sender,
                ),
                now + 1,
            )
            return
        if mt is MsgType.FLUSH_REQ:
            c.l2_tag_probes += 1
            if self.l2.lookup(msg.address, touch=False) is CacheState.MODIFIED:
                c.l2_reads += 1
                self.l2.set_state(msg.address, CacheState.INVALID)
                self.l1d.invalidate(msg.address)
            elif msg.address in self.wb_buffer:
                # Raced with our eviction: serve from the WB buffer.
                self.wb_buffer.discard(msg.address)
            else:
                raise RuntimeError(
                    f"core {self.core}: FLUSH_REQ for line {msg.address} "
                    "that is neither modified nor buffered"
                )
            self.fabric.send_msg(
                CoherenceMsg(
                    mtype=MsgType.FLUSH_REP, address=msg.address,
                    sender=self.core, dest=msg.sender,
                ),
                now + self.l2_hit_latency,
            )
            return
        if mt is MsgType.WB_REQ:
            c.l2_tag_probes += 1
            retained = True
            if self.l2.lookup(msg.address, touch=False) is CacheState.MODIFIED:
                c.l2_reads += 1
                self.l2.set_state(msg.address, CacheState.SHARED)
                l1 = self.l1d.lookup(msg.address, touch=False)
                if l1 is not CacheState.INVALID:
                    self.l1d.set_state(msg.address, CacheState.SHARED)
            elif msg.address in self.wb_buffer:
                self.wb_buffer.discard(msg.address)
                retained = False
            else:
                raise RuntimeError(
                    f"core {self.core}: WB_REQ for line {msg.address} "
                    "that is neither modified nor buffered"
                )
            self.fabric.send_msg(
                CoherenceMsg(
                    mtype=MsgType.WB_REP, address=msg.address,
                    sender=self.core, dest=msg.sender, retained=retained,
                ),
                now + self.l2_hit_latency,
            )
            return
        raise ValueError(f"not a directory request: {mt}")

    # -- replies --------------------------------------------------------------
    def _complete_mshr(self, now: int) -> None:
        mshr = self.mshr
        self.mshr = None
        done = now + self.fill_latency
        mshr.callback(done)

    def _handle_sh_rep(self, msg: CoherenceMsg, now: int) -> None:
        mshr = self.mshr
        if mshr is None or mshr.address != msg.address or mshr.is_write:
            raise RuntimeError(
                f"core {self.core}: SH_REP without matching SH_REQ "
                f"(line {msg.address})"
            )
        self._install(msg.address, CacheState.SHARED, now)
        # Reconcile any broadcast invalidations that overtook this reply
        # (Section IV-C1): stale ones are dropped; genuinely newer ones
        # are processed one cycle after the reply.
        pending = self._pending_bcasts.pop(msg.address, [])
        for b in pending:
            slice_id = self.fabric.slice_of_home(b.sender)
            if msg.seq is not None and b.seq is not None and (
                self.tracker.broadcast_is_stale(slice_id, b.seq, msg.seq)
            ):
                self.counters.bcast_invs_stale_dropped += 1
                self._note_broadcast(slice_id, b.seq, now)
            else:
                # Dir_kB already acknowledged at buffer time; ACKwise
                # acks now (this core was a counted sharer).
                self._process_bcast(
                    b, now + 1, note=True,
                    may_ack=not self._all_ack,
                )
        self._complete_mshr(now)

    def _handle_ex_rep(self, msg: CoherenceMsg, now: int) -> None:
        mshr = self.mshr
        if mshr is None or mshr.address != msg.address or not mshr.is_write:
            raise RuntimeError(
                f"core {self.core}: EX_REP without matching EX_REQ "
                f"(line {msg.address})"
            )
        self._install(msg.address, CacheState.MODIFIED, now)
        self._complete_mshr(now)

    # -- fills and evictions ------------------------------------------------
    def _install(self, address: int, state: CacheState, now: int) -> None:
        self.counters.l2_writes += 1
        victim = self.l2.install(address, state)
        self._l1_fill(address, state)
        if victim is None:
            return
        v_line, v_state = victim
        self.l1d.invalidate(v_line)
        if v_state is CacheState.MODIFIED:
            self.counters.evictions_dirty += 1
            self.counters.l2_reads += 1
            self.wb_buffer.add(v_line)
            self.fabric.send_msg(
                CoherenceMsg(
                    mtype=MsgType.DIRTY_WB, address=v_line,
                    sender=self.core, dest=self.fabric.home_of(v_line),
                ),
                now,
            )
        else:
            self.counters.evictions_clean += 1
            if not self.silent_clean_evictions:
                self.fabric.send_msg(
                    CoherenceMsg(
                        mtype=MsgType.EVICT_NOTIFY, address=v_line,
                        sender=self.core, dest=self.fabric.home_of(v_line),
                    ),
                    now,
                )
