"""In-order single-issue core model (Table I).

Each core replays its :class:`repro.workloads.trace.CoreTrace`:

* compute ops retire one instruction per cycle,
* memory ops go through the cache controller and **block** the core on
  a miss until the coherence protocol delivers the line -- network
  latency (and the back-pressure it implies) directly stretches the
  core's execution, which is the property the paper's methodology
  exists to capture,
* barrier ops park the core at the barrier manager.

The core drives itself: ``start()`` begins execution and the core
re-schedules its own continuations through the event queue as replies
arrive.
"""

from __future__ import annotations

from repro.coherence.l2controller import L2Controller
from repro.sim.barrier import BarrierManager
from repro.sim.eventq import EventQueue
from repro.workloads.trace import BarrierOp, ComputeOp, CoreTrace, MemoryOp


class CoreModel:
    """One in-order core executing a trace."""

    __slots__ = (
        "core", "trace", "cache", "barriers", "eventq",
        "_pc", "instructions", "done_at", "stalled_cycles", "_issue_time",
    )

    def __init__(
        self,
        core: int,
        trace: CoreTrace,
        cache: L2Controller,
        barriers: BarrierManager,
        eventq: EventQueue,
    ) -> None:
        if trace.core != core:
            raise ValueError(
                f"trace for core {trace.core} assigned to core {core}"
            )
        self.core = core
        self.trace = trace
        self.cache = cache
        self.barriers = barriers
        self.eventq = eventq
        self._pc = 0
        self.instructions = 0
        self.done_at: int | None = None
        self.stalled_cycles = 0
        self._issue_time = 0

    @property
    def done(self) -> bool:
        return self.done_at is not None

    def start(self) -> None:
        """Schedule the core's first instruction at t=0."""
        self.eventq.schedule(0, self._run)

    # ------------------------------------------------------------------
    def _run(self, now: int) -> None:
        """Execute ops until the next blocking point.

        The loop keeps the program counter and instruction count in
        locals (written back before any call that can block or
        re-enter) -- this is the single hottest non-network loop in the
        simulator, retiring every compute op of every trace.
        """
        ops = self.trace.ops
        n_ops = len(ops)
        pc = self._pc
        inst = self.instructions
        cache = self.cache
        counters = cache.counters
        while pc < n_ops:
            op = ops[pc]
            pc += 1
            cls = type(op)
            if cls is ComputeOp:
                inst += op.cycles
                counters.l1i_accesses += 1
                now += op.cycles
                continue
            if cls is MemoryOp:
                inst += 1
                counters.l1i_accesses += 1
                self._issue_time = now
                self._pc = pc
                self.instructions = inst
                done = cache.access(op.address, op.is_write, now, self._resume)
                if done is None:
                    return  # blocked on a miss; _resume() continues
                now = done
                continue
            # BarrierOp
            self._pc = pc
            self.instructions = inst + 1
            self.barriers.arrive(op.barrier_id, now, self._run)
            return
        self._pc = pc
        self.instructions = inst
        self.done_at = now

    def _resume(self, now: int) -> None:
        """Miss completed: account the stall and continue."""
        self.stalled_cycles += now - self._issue_time
        self._run(now)

    # ------------------------------------------------------------------
    def ipc(self) -> float:
        """Retired instructions per cycle over the core's own runtime."""
        if self.done_at is None or self.done_at == 0:
            return 0.0
        return self.instructions / self.done_at
