"""The manycore chip: cores + caches + directories + network, one clock.

:class:`ManycoreSystem` is the "fabric" the coherence controllers talk
through.  Every protocol message is scheduled onto the event queue at
its logical send time, so the (stateful, reservation-based) network
model always sees time-ordered sends even though cores sprint through
compute phases inline -- the same loose-synchronization trick Graphite
uses, with the network as the serialization point.
"""

from __future__ import annotations

import os
from dataclasses import fields

from repro.coherence.directory import DirectoryController, Protocol
from repro.coherence.l2controller import CacheCounters, L2Controller
from repro.coherence.memory import MemoryController, MemoryTiming
from repro.coherence.messages import CoherenceMsg, MsgType
from repro.coherence.sequencing import DirectorySequencer
from repro.network.atac import AtacNetwork
from repro.network.types import BROADCAST, Packet
from repro.sim.barrier import BarrierManager
from repro.sim.config import SystemConfig, make_network
from repro.sim.core_model import CoreModel
from repro.sim.eventq import EventQueue
from repro.sim.results import RunResult
from repro.workloads.trace import CoreTrace

#: Message-type partitions for handler dispatch (set membership beats a
#: linear scan of a 9-tuple on every unicast delivery).
_MEMCTRL_TYPES = frozenset((MsgType.MEM_READ, MsgType.MEM_WRITE))
_DIRECTORY_TYPES = frozenset((
    MsgType.SH_REQ, MsgType.EX_REQ, MsgType.EVICT_NOTIFY,
    MsgType.DIRTY_WB, MsgType.INV_ACK, MsgType.FLUSH_REP,
    MsgType.WB_REP, MsgType.MEM_DATA, MsgType.MEM_WRITE_ACK,
))


class ManycoreSystem:
    """One configured chip, ready to run one workload.

    ``batch_broadcasts`` selects the broadcast delivery path: batched
    (default -- one event per distinct arrival time, dispatching to the
    member caches inline) or the reference one-event-per-core path.
    Both produce identical simulations (see DESIGN.md section 9 and
    ``tests/integration/test_fastpath_equivalence.py``); the reference
    path exists as the oracle the equivalence tests compare against.

    ``sanitize`` attaches the runtime invariant checker
    (:mod:`repro.sanitizer`, DESIGN.md section 10): every event is then
    audited for cross-layer consistency -- SWMR, directory/cache
    agreement, sequencing order, flit conservation -- at roughly 2-3x
    simulation cost, raising :class:`InvariantViolation` on failure.
    ``None`` (the default) defers to the ``REPRO_SANITIZE`` environment
    variable; ``False`` is a hard off that perf-sensitive callers
    should pass explicitly.

    ``telemetry`` attaches the observability collector
    (:mod:`repro.telemetry`, DESIGN.md section 12): windowed counter
    snapshots plus a bounded event trace, simulation byte-identical.
    Accepts ``True``/``False``, a
    :class:`~repro.telemetry.collector.TelemetryConfig` (to control the
    window length and output directory), or ``None`` to defer to the
    ``REPRO_TELEMETRY`` environment variable.  Like the sanitizer it
    costs exactly nothing -- not even an import -- when off.
    """

    def __init__(self, config: SystemConfig, batch_broadcasts: bool = True,
                 sanitize: bool | None = None,
                 telemetry=None) -> None:
        self.config = config
        self.batch_broadcasts = batch_broadcasts
        self.topology = config.topology
        self.network = make_network(config)
        self.eventq = EventQueue()

        topo = self.topology
        self.compute_cores = topo.compute_cores()
        if not self.compute_cores:
            raise ValueError(
                "degenerate topology: every core slot is a memory "
                "controller (cluster_width=1); use clusters of >= 4 cores"
            )
        self._compute_set = set(self.compute_cores)
        self._n_compute = len(self.compute_cores)
        self.memctrl_positions = topo.memctrl_cores()
        self._cluster_memctrl = {
            c: topo.memctrl_core(c) for c in range(topo.n_clusters)
        }
        # Flat per-core tables: home_of / slice_of_home / memctrl_for run
        # once per coherence message, so they must be plain indexed
        # lookups rather than repeated topology arithmetic.
        self._slice_of_core = tuple(
            topo.cluster_of(c) for c in range(topo.n_cores)
        )
        self._memctrl_of_core = tuple(
            self._cluster_memctrl[s] for s in self._slice_of_core
        )

        mem_timing = MemoryTiming(
            latency_cycles=config.mem_latency,
            bytes_per_cycle=config.mem_bytes_per_cycle,
        )
        self.memctrls = {
            pos: MemoryController(pos, self, mem_timing)
            for pos in self.memctrl_positions
        }

        self.sequencer = DirectorySequencer(topo.n_clusters)
        silent = config.protocol is Protocol.DIRKB
        self.caches: dict[int, L2Controller] = {}
        self.directories: dict[int, DirectoryController] = {}
        for core in self.compute_cores:
            self.caches[core] = L2Controller(
                core,
                self,
                l1_sets=config.l1_sets,
                l1_ways=config.l1_ways,
                l2_sets=config.l2_sets,
                l2_ways=config.l2_ways,
                l1_hit_latency=config.l1_hit_latency,
                l2_hit_latency=config.l2_hit_latency,
                fill_latency=config.fill_latency,
                n_slices=topo.n_clusters,
                silent_clean_evictions=silent,
                sequencing=config.sequencing,
            )
            self.directories[core] = DirectoryController(
                core,
                self,
                protocol=config.protocol,
                hardware_sharers=config.hardware_sharers,
                sequencer=self.sequencer if config.sequencing else None,
                slice_id=topo.cluster_of(core),
                dir_latency=config.dir_latency,
            )
        self.cores: dict[int, CoreModel] = {}
        self.barriers: BarrierManager | None = None
        # Reused injection packet (see _inject).
        self._pkt = Packet(src=0, dst=0, size_bits=1, time=0)

        if sanitize is None:
            sanitize = os.environ.get(
                "REPRO_SANITIZE", "0"
            ).lower() in ("1", "true", "on")
        self.sanitize = sanitize
        self.sanitizer = None
        if sanitize:
            # Imported only when enabled: the sanitizer costs nothing --
            # not even an import -- on unsanitized runs.
            from repro.sanitizer.core import Sanitizer

            self.sanitizer = Sanitizer(self)
            self.sanitizer.attach()

        if telemetry is None:
            telemetry = os.environ.get(
                "REPRO_TELEMETRY", "0"
            ).lower() in ("1", "true", "on")
        self.telemetry = None
        if telemetry:
            # Imported only when enabled (same zero-cost-off contract as
            # the sanitizer).  Attached *after* the sanitizer so the
            # telemetry hooks wrap -- and observe -- the sanitized
            # fabric rather than being audited by it.
            from repro.telemetry.collector import (
                TelemetryCollector, TelemetryConfig,
            )

            cfg = (
                telemetry if isinstance(telemetry, TelemetryConfig)
                else TelemetryConfig()
            )
            self.telemetry = TelemetryCollector(self, cfg)
            self.telemetry.attach()

    # ------------------------------------------------------------------
    # Fabric interface used by the coherence controllers
    # ------------------------------------------------------------------
    def home_of(self, address: int) -> int:
        """Static home core for a line (directory distributed over all
        compute cores, Section III-B)."""
        return self.compute_cores[address % self._n_compute]

    def memctrl_for(self, core: int) -> int:
        """The memory controller nearest a home core: its own cluster's."""
        return self._memctrl_of_core[core]

    def slice_of_home(self, core: int) -> int:
        """Directory slice (= cluster) of a home core, for seq numbers."""
        return self._slice_of_core[core]

    @property
    def all_cores_ack_broadcasts(self) -> bool:
        """Dir_kB collects acknowledgements from every core."""
        return self.config.protocol is Protocol.DIRKB

    def n_broadcast_ackers(self, home: int) -> int:
        """Cores that will acknowledge a Dir_kB broadcast from ``home``:
        every compute core (including the home itself, whose own L2
        receives the invalidation by local loopback)."""
        return len(self.compute_cores)

    # ------------------------------------------------------------------
    def send_msg(self, msg: CoherenceMsg, time: int) -> None:
        """Queue a protocol message for network injection at ``time``."""
        eventq = self.eventq
        now = eventq.now
        eventq.schedule(time if time > now else now, self._inject, msg)

    def _inject(self, msg: CoherenceMsg, now: int) -> None:
        # One pooled Packet, refilled per injection: Network.send reads
        # the packet synchronously and never retains it, and _inject
        # runs once per protocol message, so the per-message dataclass
        # construction (and its validation) was pure overhead.
        pkt = self._pkt
        pkt.src = msg.sender
        pkt.size_bits = msg.size_bits
        pkt.time = now
        if msg.mtype is MsgType.INV_BCAST:
            pkt.dst = BROADCAST
            deliveries = self.network.send(pkt)
            if self.batch_broadcasts:
                # Batched fan-out: one heap event per distinct arrival
                # time instead of one per core.  Within one arrival the
                # member caches are dispatched inline in delivery-list
                # order -- exactly the order the per-core path would
                # process them, since all per-core events are scheduled
                # consecutively here (their seqs are contiguous, so no
                # foreign event can interleave; see DESIGN.md sec. 9).
                compute = self._compute_set
                schedule = self.eventq.schedule
                groups: dict[int, list[int]] = {}
                for core, arrival in deliveries:
                    if core in compute:
                        group = groups.get(arrival)
                        if group is None:
                            groups[arrival] = [core]
                        else:
                            group.append(core)
                deliver = self._deliver_broadcast_group
                for arrival, cores in groups.items():
                    schedule(arrival, deliver, (msg, cores))
            else:
                for core, arrival in deliveries:
                    if core in self._compute_set:
                        self.eventq.schedule(
                            arrival, self.caches[core].handle, msg
                        )
            # Local loopback: the home's own L2 must also see the
            # invalidation (the network never delivers to the sender).
            if msg.sender in self._compute_set:
                self.eventq.schedule(
                    now + 1, self.caches[msg.sender].handle, msg
                )
            return
        pkt.dst = msg.dest
        [(core, arrival)] = self.network.send(pkt)
        handler = self._handler_for(core, msg)
        self.eventq.schedule(arrival, handler.handle, msg)

    def _deliver_broadcast_group(
        self, batch: tuple[CoherenceMsg, list[int]], now: int
    ) -> None:
        """Dispatch one broadcast to every member cache of one arrival
        group, inline, in delivery order."""
        msg, cores = batch
        caches = self.caches
        for core in cores:
            caches[core].handle_broadcast(msg, now)

    def _handler_for(self, core: int, msg: CoherenceMsg):
        mt = msg.mtype
        if mt in _MEMCTRL_TYPES:
            return self.memctrls[core]
        if mt in _DIRECTORY_TYPES:
            return self.directories[core]
        return self.caches[core]

    # ------------------------------------------------------------------
    # Running workloads
    # ------------------------------------------------------------------
    def run(self, traces: dict[int, CoreTrace], app: str = "workload",
            max_events: int | None = None) -> RunResult:
        """Execute one trace per compute core to completion."""
        missing = self._compute_set - set(traces)
        if missing:
            raise ValueError(
                f"{len(missing)} compute cores have no trace "
                f"(e.g. core {min(missing)})"
            )
        extra = set(traces) - self._compute_set
        if extra:
            raise ValueError(
                f"traces supplied for non-compute cores: {sorted(extra)[:4]}"
            )
        self.barriers = BarrierManager(len(self.compute_cores), self.eventq)
        for core in self.compute_cores:
            cm = CoreModel(
                core, traces[core], self.caches[core], self.barriers, self.eventq
            )
            self.cores[core] = cm
            cm.start()
        telemetry = self.telemetry
        if telemetry is not None:
            # Explicit notification (not a wrapper around run): the
            # barrier manager and core models only exist from here on.
            telemetry.on_run_start()
        self.eventq.run(max_events=max_events)
        not_done = [c for c, cm in self.cores.items() if not cm.done]
        if not_done:
            raise RuntimeError(
                f"deadlock: {len(not_done)} cores never finished "
                f"(e.g. core {not_done[0]}); event queue drained"
            )
        result = self._collect(app)
        if telemetry is not None:
            telemetry.on_run_end(result)
        return result

    def _collect(self, app: str) -> RunResult:
        completion = max(cm.done_at for cm in self.cores.values())
        counters = CacheCounters()
        for cc in self.caches.values():
            for f in fields(CacheCounters):
                setattr(
                    counters, f.name,
                    getattr(counters, f.name) + getattr(cc.counters, f.name),
                )
        dir_lookups = sum(d.stats.lookups for d in self.directories.values())
        dir_updates = sum(d.stats.updates for d in self.directories.values())
        dir_inv_u = sum(
            d.stats.invalidations_unicast for d in self.directories.values()
        )
        dir_inv_b = sum(
            d.stats.invalidations_broadcast for d in self.directories.values()
        )
        onet_util = 0.0
        if isinstance(self.network, AtacNetwork) and completion > 0:
            onet_util = self.network.onet_utilization(completion)
        per_core = [self.cores[c].instructions for c in self.compute_cores]
        return RunResult(
            app=app,
            network=self.network.name,
            completion_cycles=completion,
            n_cores=self.topology.n_cores,
            n_compute_cores=len(self.compute_cores),
            total_instructions=sum(per_core),
            per_core_instructions=per_core,
            stalled_cycles=sum(cm.stalled_cycles for cm in self.cores.values()),
            network_stats=self.network.stats,
            cache_counters=counters,
            dir_lookups=dir_lookups,
            dir_updates=dir_updates,
            dir_inv_unicast=dir_inv_u,
            dir_inv_broadcast=dir_inv_b,
            mem_reads=sum(m.reads for m in self.memctrls.values()),
            mem_writes=sum(m.writes for m in self.memctrls.values()),
            barriers_completed=self.barriers.barriers_completed,
            freq_hz=self.config.freq_hz,
            onet_utilization=onet_util,
            flit_bits=self.config.flit_bits,
            hardware_sharers=self.config.hardware_sharers,
            protocol=self.config.protocol.value,
        )
