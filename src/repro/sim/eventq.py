"""Deterministic discrete-event engine.

A single binary-heap event queue drives cores, cache controllers,
directories and memory controllers.  Ties are broken by insertion
order, so runs are bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
from typing import Callable


class EventQueue:
    """Min-heap of ``(time, seq, callback)`` events."""

    __slots__ = ("_heap", "_seq", "now", "events_processed")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Callable[[int], None]]] = []
        self._seq = 0
        self.now = 0
        self.events_processed = 0

    def schedule(self, time: int, callback: Callable[[int], None]) -> None:
        """Run ``callback(time)`` at the given simulation time.

        Scheduling in the past is an error -- it would mean a causality
        violation in a model.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule event at t={time}, current time is {self.now}"
            )
        heapq.heappush(self._heap, (time, self._seq, callback))
        self._seq += 1

    def __len__(self) -> int:
        return len(self._heap)

    def run(self, max_events: int | None = None) -> int:
        """Drain the queue; returns the final simulation time.

        ``max_events`` is a safety valve for tests; exceeding it raises
        ``RuntimeError`` (likely a protocol livelock).
        """
        processed = 0
        while self._heap:
            time, _, callback = heapq.heappop(self._heap)
            self.now = time
            callback(time)
            processed += 1
            self.events_processed += 1
            if max_events is not None and processed > max_events:
                raise RuntimeError(
                    f"event budget exceeded ({max_events}); "
                    "possible protocol livelock"
                )
        return self.now
