"""Deterministic discrete-event engine.

A single binary-heap event queue drives cores, cache controllers,
directories and memory controllers.  Ties are broken by insertion
order, so runs are bit-for-bit reproducible.

Hot-path note: the queue accepts an optional ``arg`` alongside the
callback, so callers can schedule a *bound method plus payload* --
``schedule(t, handler.handle, msg)`` -- instead of allocating a fresh
closure per event (``lambda t: handler.handle(msg, t)``).  Coherence
traffic schedules one event per protocol message, so that closure was
one of the two dominant allocations of the simulator (see DESIGN.md
section 9).  The heap entry is ``(time, seq, callback, arg)``; ``seq``
is unique, so comparisons never reach the callback and the
``(time, seq)`` tie-break is exactly what it always was.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

#: Sentinel distinguishing "no arg" from "arg=None" (None is a valid payload).
_NO_ARG = object()


class EventQueue:
    """Min-heap of ``(time, seq, callback, arg)`` events."""

    __slots__ = ("_heap", "_seq", "now", "events_processed")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Callable, Any]] = []
        self._seq = 0
        self.now = 0
        self.events_processed = 0

    def schedule(
        self, time: int, callback: Callable, arg: Any = _NO_ARG
    ) -> None:
        """Run ``callback(time)`` -- or ``callback(arg, time)`` when an
        ``arg`` is supplied -- at the given simulation time.

        Scheduling in the past is an error -- it would mean a causality
        violation in a model.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule event at t={time}, current time is {self.now}"
            )
        heapq.heappush(self._heap, (time, self._seq, callback, arg))
        self._seq += 1

    def __len__(self) -> int:
        return len(self._heap)

    def run(self, max_events: int | None = None) -> int:
        """Drain the queue; returns the final simulation time.

        ``max_events`` is a safety valve for tests; exceeding it raises
        ``RuntimeError`` (likely a protocol livelock).
        """
        processed = 0
        heap = self._heap
        no_arg = _NO_ARG
        heappop = heapq.heappop
        try:
            if max_events is None:
                # Unbudgeted drain: the common (production) path, with
                # no per-event budget check.
                while heap:
                    time, _, callback, arg = heappop(heap)
                    self.now = time
                    if arg is no_arg:
                        callback(time)
                    else:
                        callback(arg, time)
                    processed += 1
            else:
                while heap:
                    time, _, callback, arg = heappop(heap)
                    self.now = time
                    if arg is no_arg:
                        callback(time)
                    else:
                        callback(arg, time)
                    processed += 1
                    if processed > max_events:
                        raise RuntimeError(
                            f"event budget exceeded ({max_events}); "
                            "possible protocol livelock"
                        )
        finally:
            # Folded into the counter once per run() rather than per
            # event; nothing observes the counter mid-drain.
            self.events_processed += processed
        return self.now
