"""Full-system configuration (paper Table I) and network factory.

Network architectures are resolved through
:mod:`repro.network.registry`: validation, the factory and the
energy/area bindings all read one :class:`NetworkDescriptor` per
network, so adding an architecture is a single registration there.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace

from repro.coherence.directory import Protocol
from repro.network.engine import Network
from repro.network.registry import NETWORK_CHOICES, get_network
from repro.network.topology import MeshTopology

__all__ = ["NETWORK_CHOICES", "SystemConfig", "make_network"]


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to instantiate a :class:`ManycoreSystem`.

    Defaults are the paper's Table I at full 1024-core scale; tests use
    ``scaled()`` to shrink the chip and the caches proportionally.
    """

    # -- chip geometry ---------------------------------------------------
    mesh_width: int = 32
    cluster_width: int = 4

    # -- network ----------------------------------------------------------
    network: str = "atac+"
    flit_bits: int = 64
    rthres: int = 15                  # distance-routing threshold (ATAC+)
    receive_net: str = "starnet"      # "starnet" (ATAC+) | "bnet" (ATAC)
    starnets_per_cluster: int = 2

    # -- memory hierarchy --------------------------------------------------
    l1_sets: int = 128                # 32 KB, 4-way, 64 B lines
    l1_ways: int = 4
    l2_sets: int = 512                # 256 KB, 8-way
    l2_ways: int = 8
    l1_hit_latency: int = 1
    l2_hit_latency: int = 8
    fill_latency: int = 2
    dir_latency: int = 3
    mem_latency: int = 100            # 100 ns at 1 GHz
    mem_bytes_per_cycle: float = 5.0  # 5 GB/s per controller

    # -- coherence ----------------------------------------------------------
    protocol: Protocol = Protocol.ACKWISE
    hardware_sharers: int = 4         # ACKwise_4 unless stated otherwise
    sequencing: bool = True

    freq_hz: float = 1e9

    def __post_init__(self) -> None:
        descriptor = get_network(self.network)  # raises UnknownNetworkError
        if self.receive_net not in descriptor.valid_receive_nets:
            raise ValueError(f"bad receive_net {self.receive_net!r}")
        if self.flit_bits <= 0:
            raise ValueError("flit_bits must be positive")

    @property
    def topology(self) -> MeshTopology:
        return MeshTopology(width=self.mesh_width, cluster_width=self.cluster_width)

    @property
    def n_cores(self) -> int:
        return self.mesh_width * self.mesh_width

    def to_dict(self) -> dict:
        """JSON-serializable snapshot (enum fields become their values)."""
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["protocol"] = self.protocol.value
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "SystemConfig":
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in d.items() if k in known}
        if isinstance(kwargs.get("protocol"), str):
            kwargs["protocol"] = Protocol(kwargs["protocol"])
        return cls(**kwargs)

    def content_hash(self) -> str:
        """Deterministic digest of every field; two configs with equal
        hashes instantiate behaviourally identical systems."""
        blob = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:24]

    def scaled(self, mesh_width: int, cluster_width: int = 4, **overrides) -> "SystemConfig":
        """A smaller chip with caches shrunk in proportion, for tests.

        Keeping cache capacity per core fixed while shrinking the core
        count (and trace lengths) would make everything fit and no
        traffic flow; scaling keeps miss behaviour representative.
        """
        scale = max(1, (32 * 32) // (mesh_width * mesh_width))
        return replace(
            self,
            mesh_width=mesh_width,
            cluster_width=cluster_width,
            l1_sets=max(4, self.l1_sets // scale),
            l2_sets=max(8, self.l2_sets // scale),
            **overrides,
        )


def make_network(config: SystemConfig) -> Network:
    """Instantiate the configured network architecture."""
    return get_network(config.network).build(config)
