"""Run results: the bundle the energy/analysis layers consume."""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.coherence.l2controller import CacheCounters
from repro.network.stats import NetworkStats


@dataclass
class RunResult:
    """Outcome of one full-system simulation.

    This mirrors the paper's toolflow interface: "Event counters and
    completion time output from Graphite are then combined with
    per-event energies and static power to obtain the overall energy
    usage of the benchmark."
    """

    app: str
    network: str
    completion_cycles: int
    n_cores: int
    n_compute_cores: int
    total_instructions: int
    per_core_instructions: list[int]
    stalled_cycles: int
    network_stats: NetworkStats
    cache_counters: CacheCounters
    dir_lookups: int
    dir_updates: int
    dir_inv_unicast: int
    dir_inv_broadcast: int
    mem_reads: int
    mem_writes: int
    barriers_completed: int
    freq_hz: float = 1e9
    #: mean adaptive-SWMR link utilization (hybrid networks only)
    onet_utilization: float = 0.0
    flit_bits: int = 64
    hardware_sharers: int = 4
    protocol: str = "ackwise"

    def __post_init__(self) -> None:
        if self.completion_cycles < 0:
            raise ValueError("completion_cycles must be non-negative")

    # ------------------------------------------------------------------
    @property
    def runtime_s(self) -> float:
        """Wall-clock completion time."""
        return self.completion_cycles / self.freq_hz

    @property
    def ipc(self) -> float:
        """Chip-average retired IPC per compute core."""
        if self.completion_cycles == 0 or self.n_compute_cores == 0:
            return 0.0
        return self.total_instructions / (
            self.completion_cycles * self.n_compute_cores
        )

    @property
    def offered_load(self) -> float:
        """Flits/cycle/core injected over the run (Fig 6's metric)."""
        if self.completion_cycles == 0:
            return 0.0
        return self.network_stats.injected_flits / (
            self.completion_cycles * self.n_cores
        )

    @property
    def receiver_broadcast_fraction(self) -> float:
        """Fig 5's metric: broadcast share of receiver-side traffic."""
        return self.network_stats.receiver_broadcast_fraction()

    @property
    def unicasts_per_broadcast(self) -> float:
        """Table V's metric (ONet traffic only)."""
        return self.network_stats.unicasts_per_broadcast()

    def to_dict(self) -> dict:
        """JSON-serializable snapshot (the result store's payload).

        Nested counter bundles flatten to plain dicts; ``from_dict``
        reverses the conversion exactly, so a store round trip is
        byte-identical under ``json.dumps(..., sort_keys=True)``.
        """
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "network_stats":
                value = value.as_dict()
            elif f.name == "cache_counters":
                value = value.as_dict()
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "RunResult":
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in d.items() if k in known}
        kwargs["network_stats"] = NetworkStats.from_dict(kwargs["network_stats"])
        kwargs["cache_counters"] = CacheCounters.from_dict(kwargs["cache_counters"])
        return cls(**kwargs)

    def summary(self) -> dict[str, float]:
        """Compact numeric snapshot for experiment tables."""
        return {
            "app": self.app,
            "network": self.network,
            "cycles": self.completion_cycles,
            "ipc": round(self.ipc, 4),
            "offered_load": round(self.offered_load, 6),
            "bcast_rx_frac": round(self.receiver_broadcast_fraction, 4),
            "onet_utilization": round(self.onet_utilization, 4),
        }
