"""The Graphite-like full-system simulator.

Ties together per-core traces (:mod:`repro.workloads`), private cache
hierarchies and directory coherence (:mod:`repro.coherence`) and a
network model (:mod:`repro.network`) over one discrete-event engine.

The defining property -- the reason the paper built this instead of
replaying traces -- is **back-pressure**: cores block on cache misses,
misses become coherence messages whose latency is set by the simulated
network (including contention), and barriers couple per-core slowdowns
into whole-application completion time.  Network behaviour therefore
feeds back into runtime, and runtime feeds into every non-data-dependent
energy term.
"""

from repro.sim.eventq import EventQueue
from repro.sim.config import SystemConfig, NETWORK_CHOICES, make_network
from repro.sim.system import ManycoreSystem
from repro.sim.results import RunResult

__all__ = [
    "EventQueue",
    "SystemConfig",
    "NETWORK_CHOICES",
    "make_network",
    "ManycoreSystem",
    "RunResult",
]
