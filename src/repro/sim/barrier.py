"""Global barrier synchronization for barrier-phased workloads.

SPLASH-2 applications alternate compute/communicate phases separated by
barriers; a barrier is what turns one slow core (e.g. one suffering
network contention) into whole-application slowdown.  The paper's
runtime differences between networks are amplified exactly this way.

The implementation models a centralized barrier with a fixed
notification cost; the traffic for barrier arrival/release is assumed
to ride the same network as everything else but is small (2 messages
per core per barrier) and is folded into a constant latency here to
keep the protocol engine focused on coherence traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.sim.eventq import EventQueue


class BarrierManager:
    """Counts arrivals per barrier id and releases everyone at once."""

    def __init__(
        self,
        participants: int,
        eventq: EventQueue,
        release_latency: int = 4,
    ) -> None:
        if participants < 1:
            raise ValueError(f"participants must be >= 1, got {participants}")
        if release_latency < 0:
            raise ValueError(f"release_latency must be >= 0, got {release_latency}")
        self.participants = participants
        self.eventq = eventq
        self.release_latency = release_latency
        self._waiting: dict[int, list[Callable[[int], None]]] = {}
        self._arrived: dict[int, int] = {}
        self._latest: dict[int, int] = {}
        self.barriers_completed = 0

    def arrive(self, barrier_id: int, now: int, resume: Callable[[int], None]) -> None:
        """A core reached ``barrier_id`` at time ``now``; ``resume(t)``
        fires on release.

        Release happens at the *latest* arrival time plus the release
        latency -- arrivals are not reported in time order (cores sprint
        through compute phases inline), so the maximum must be tracked
        explicitly.
        """
        waiters = self._waiting.setdefault(barrier_id, [])
        waiters.append(resume)
        self._arrived[barrier_id] = self._arrived.get(barrier_id, 0) + 1
        self._latest[barrier_id] = max(self._latest.get(barrier_id, 0), now)
        if self._arrived[barrier_id] > self.participants:
            raise RuntimeError(
                f"barrier {barrier_id}: more arrivals than participants"
            )
        if self._arrived[barrier_id] == self.participants:
            release_at = self._latest[barrier_id] + self.release_latency
            for cb in self._waiting.pop(barrier_id):
                self.eventq.schedule(max(release_at, self.eventq.now), cb)
            del self._arrived[barrier_id]
            del self._latest[barrier_id]
            self.barriers_completed += 1

    @property
    def open_barriers(self) -> int:
        """Barriers with at least one waiter (diagnostic)."""
        return len(self._waiting)
